//! A vanilla tanh RNN cell with truncated backpropagation through time —
//! the substrate for the tNE baseline (§5.1.2), which "exploits the
//! temporal dependence among all available static node embeddings using
//! Recurrent Neural Networks".

use crate::matrix::Matrix;
use rand::Rng;

/// A single-layer Elman RNN: `h_t = tanh(W_x x_t + W_h h_{t-1} + b)`,
/// with a linear readout `y = W_o h_T`.
#[derive(Debug, Clone)]
pub struct Rnn {
    /// Input→hidden weights (`hidden × input`).
    pub wx: Matrix,
    /// Hidden→hidden weights (`hidden × hidden`).
    pub wh: Matrix,
    /// Hidden bias.
    pub b: Vec<f64>,
    /// Hidden→output weights (`output × hidden`).
    pub wo: Matrix,
}

impl Rnn {
    /// Initialise with small random weights.
    pub fn new(input: usize, hidden: usize, output: usize, rng: &mut impl Rng) -> Self {
        let sx = (1.0 / input as f64).sqrt();
        let sh = (1.0 / hidden as f64).sqrt();
        Rnn {
            wx: Matrix::random(hidden, input, sx, rng),
            wh: Matrix::random(hidden, hidden, sh, rng),
            b: vec![0.0; hidden],
            wo: Matrix::random(output, hidden, sh, rng),
        }
    }

    fn step(&self, x: &[f64], h_prev: &[f64]) -> Vec<f64> {
        let hidden = self.b.len();
        (0..hidden)
            .map(|i| {
                let zx: f64 = self.wx.row(i).iter().zip(x).map(|(a, b)| a * b).sum();
                let zh: f64 = self.wh.row(i).iter().zip(h_prev).map(|(a, b)| a * b).sum();
                (zx + zh + self.b[i]).tanh()
            })
            .collect()
    }

    /// Run the sequence and return the readout of the final hidden state.
    pub fn forward(&self, sequence: &[Vec<f64>]) -> Vec<f64> {
        let mut h = vec![0.0; self.b.len()];
        for x in sequence {
            h = self.step(x, &h);
        }
        self.wo.matvec(&h)
    }

    /// One SGD step on squared error between `forward(sequence)` and
    /// `target`, backpropagating through (at most) the full sequence.
    /// Returns the loss before the update.
    pub fn train_step(&mut self, sequence: &[Vec<f64>], target: &[f64], lr: f64) -> f64 {
        let hidden = self.b.len();
        // Forward, retaining hidden states.
        let mut hs: Vec<Vec<f64>> = Vec::with_capacity(sequence.len() + 1);
        hs.push(vec![0.0; hidden]);
        for x in sequence {
            let h = self.step(x, hs.last().unwrap());
            hs.push(h);
        }
        let h_final = hs.last().unwrap().clone();
        let y = self.wo.matvec(&h_final);
        let err: Vec<f64> = y.iter().zip(target).map(|(a, b)| a - b).collect();
        let loss: f64 = err.iter().map(|e| e * e).sum();

        // Readout gradient and initial hidden delta.
        let mut dh: Vec<f64> = (0..hidden)
            .map(|i| (0..err.len()).map(|o| err[o] * self.wo[(o, i)]).sum())
            .collect();
        for o in 0..err.len() {
            let row = self.wo.row_mut(o);
            for (wi, &hi) in row.iter_mut().zip(&h_final) {
                *wi -= lr * err[o] * hi;
            }
        }

        // BPTT.
        for t in (0..sequence.len()).rev() {
            let h_t = &hs[t + 1];
            let h_prev = &hs[t];
            let x_t = &sequence[t];
            // dz = dh ⊙ (1 − h²)
            let dz: Vec<f64> = dh
                .iter()
                .zip(h_t)
                .map(|(&d, &h)| d * (1.0 - h * h))
                .collect();
            // Next dh (through W_h), computed before the update.
            let dh_prev: Vec<f64> = (0..hidden)
                .map(|j| (0..hidden).map(|i| dz[i] * self.wh[(i, j)]).sum())
                .collect();
            for i in 0..hidden {
                let d = dz[i];
                let rx = self.wx.row_mut(i);
                for (wi, &xi) in rx.iter_mut().zip(x_t) {
                    *wi -= lr * d * xi;
                }
                let rh = self.wh.row_mut(i);
                for (wi, &hi) in rh.iter_mut().zip(h_prev) {
                    *wi -= lr * d * hi;
                }
                self.b[i] -= lr * d;
            }
            dh = dh_prev;
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn learns_to_output_last_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut rnn = Rnn::new(2, 8, 2, &mut rng);
        let seqs = [
            vec![vec![0.2, -0.1], vec![0.9, 0.3]],
            vec![vec![-0.4, 0.5], vec![-0.2, -0.8]],
            vec![vec![0.0, 0.0], vec![0.5, 0.5]],
        ];
        let mut last_loss = f64::INFINITY;
        for epoch in 0..3000 {
            let mut total = 0.0;
            for seq in &seqs {
                let target = seq.last().unwrap().clone();
                total += rnn.train_step(seq, &target, 0.05);
            }
            if epoch == 0 {
                last_loss = total;
            }
        }
        let mut final_total = 0.0;
        for seq in &seqs {
            let target = seq.last().unwrap().clone();
            let out = rnn.forward(seq);
            final_total += out
                .iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        assert!(
            final_total < last_loss * 0.2,
            "loss {final_total} vs initial {last_loss}"
        );
    }

    #[test]
    fn forward_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rnn = Rnn::new(3, 4, 2, &mut rng);
        let seq = vec![vec![0.1, 0.2, 0.3], vec![-0.1, 0.0, 0.4]];
        assert_eq!(rnn.forward(&seq), rnn.forward(&seq));
    }

    #[test]
    fn hidden_state_depends_on_history() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rnn = Rnn::new(1, 4, 1, &mut rng);
        let a = rnn.forward(&[vec![1.0], vec![0.0]]);
        let b = rnn.forward(&[vec![-1.0], vec![0.0]]);
        assert_ne!(a, b, "different histories must lead to different outputs");
    }

    #[test]
    fn empty_sequence_gives_zero_state_readout() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let rnn = Rnn::new(2, 3, 2, &mut rng);
        let y = rnn.forward(&[]);
        assert_eq!(y, vec![0.0, 0.0]);
    }
}
