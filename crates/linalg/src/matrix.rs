//! Dense row-major `f64` matrix.

use rand::Rng;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Uniform random matrix in `[-scale, scale]` (Xavier-ish init).
    pub fn random(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let v = vec![2.0, 1.0, 0.0];
        assert_eq!(a.matvec(&v), vec![2.0, 1.0]);
    }

    #[test]
    fn sigmoid_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
