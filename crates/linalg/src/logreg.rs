//! One-vs-rest L2-regularised logistic regression.
//!
//! The node-classification task (§5.2.3) trains "a one-vs-rest logistic
//! regression classifier based on their embeddings and labels". Trained
//! with mini-batch-free SGD over shuffled epochs; good enough for the
//! 128-dimensional inputs the protocol uses.

use crate::matrix::{sigmoid, Matrix};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct LogRegConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 10%).
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Shuffle / init seed.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            epochs: 60,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// A trained one-vs-rest classifier over `num_classes` labels.
#[derive(Debug, Clone)]
pub struct OneVsRest {
    /// Per-class weight vectors (`num_classes × d`).
    weights: Matrix,
    /// Per-class biases.
    biases: Vec<f64>,
}

impl OneVsRest {
    /// Train on `x` (`n × d`) with integer labels `y` in `0..num_classes`.
    pub fn train(x: &Matrix, y: &[usize], num_classes: usize, cfg: &LogRegConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(num_classes >= 2, "need at least two classes");
        let n = x.rows();
        let d = x.cols();
        let mut weights = Matrix::zeros(num_classes, d);
        let mut biases = vec![0.0; num_classes];
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..n).collect();

        for class in 0..num_classes {
            for epoch in 0..cfg.epochs {
                let lr = cfg.learning_rate * (1.0 - 0.9 * epoch as f64 / cfg.epochs.max(1) as f64);
                order.shuffle(&mut rng);
                for &i in &order {
                    let target = if y[i] == class { 1.0 } else { 0.0 };
                    let xi = x.row(i);
                    let w = weights.row(class);
                    let z: f64 = w.iter().zip(xi).map(|(a, b)| a * b).sum::<f64>() + biases[class];
                    let p = sigmoid(z);
                    let err = p - target;
                    let wm = weights.row_mut(class);
                    for (wj, &xj) in wm.iter_mut().zip(xi) {
                        *wj -= lr * (err * xj + cfg.l2 * *wj);
                    }
                    biases[class] -= lr * err;
                }
            }
        }
        OneVsRest { weights, biases }
    }

    /// Per-class scores (pre-sigmoid logits) for one sample.
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        (0..self.weights.rows())
            .map(|c| {
                self.weights
                    .row(c)
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    + self.biases[c]
            })
            .collect()
    }

    /// Most likely class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        let s = self.scores(x);
        s.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    /// Predict a batch.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|i| self.predict(x.row(i))).collect()
    }
}

/// Micro-F1: global precision==recall==accuracy in single-label
/// multi-class settings.
pub fn micro_f1(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Macro-F1: unweighted mean of per-class F1 over classes present in the
/// ground truth.
pub fn macro_f1(truth: &[usize], pred: &[usize], num_classes: usize) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        if t == p {
            tp[t] += 1;
        } else {
            fp[p] += 1;
            fnn[t] += 1;
        }
    }
    let mut sum = 0.0;
    let mut present = 0;
    for c in 0..num_classes {
        if tp[c] + fnn[c] == 0 {
            continue; // class absent from ground truth
        }
        present += 1;
        let denom = 2 * tp[c] + fp[c] + fnn[c];
        if denom > 0 {
            sum += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    if present == 0 {
        0.0
    } else {
        sum / present as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two well-separated Gaussian-ish blobs.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2 {
            let cx = if class == 0 { -2.0 } else { 2.0 };
            for _ in 0..n_per {
                data.push(cx + rng.gen_range(-0.5..0.5));
                data.push(cx + rng.gen_range(-0.5..0.5));
                labels.push(class);
            }
        }
        (Matrix::from_vec(2 * n_per, 2, data), labels)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let (x, y) = blobs(40, 1);
        let model = OneVsRest::train(&x, &y, 2, &LogRegConfig::default());
        let pred = model.predict_batch(&x);
        assert!(
            micro_f1(&y, &pred) > 0.98,
            "micro f1 {}",
            micro_f1(&y, &pred)
        );
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 3.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                data.push(cx + rng.gen_range(-0.4..0.4));
                data.push(cy + rng.gen_range(-0.4..0.4));
                labels.push(c);
            }
        }
        let x = Matrix::from_vec(90, 2, data);
        let model = OneVsRest::train(&x, &labels, 3, &LogRegConfig::default());
        let pred = model.predict_batch(&x);
        assert!(macro_f1(&labels, &pred, 3) > 0.95);
    }

    #[test]
    fn micro_f1_is_accuracy() {
        assert_eq!(micro_f1(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(micro_f1(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_hand_computed() {
        // truth: [0,0,1], pred: [0,1,1]
        // class 0: tp=1 fp=0 fn=1 -> F1 = 2/3
        // class 1: tp=1 fp=1 fn=0 -> F1 = 2/3
        let m = macro_f1(&[0, 0, 1], &[0, 1, 1], 2);
        assert!((m - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        // class 2 never in truth: it must not dilute the mean
        let m = macro_f1(&[0, 1], &[0, 1], 3);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn macro_le_micro_under_imbalance() {
        // Heavily imbalanced truth with errors on the minority class.
        let truth = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        assert!(macro_f1(&truth, &pred, 2) < micro_f1(&truth, &pred));
    }
}
