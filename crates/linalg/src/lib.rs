//! Minimal dense linear algebra and classical-ML substrates.
//!
//! The GloDyNE evaluation protocol needs several numerical tools beyond
//! the embedding itself, and two baselines need small neural components:
//!
//! - [`matrix`] — dense row-major `f64` matrices with the handful of
//!   operations the rest of the workspace uses.
//! - [`pca`] — principal component analysis via power iteration with
//!   deflation (Figure 5's 128→2-D projection).
//! - [`logreg`] — one-vs-rest L2-regularised logistic regression (the
//!   node-classification downstream task, §5.2.3).
//! - [`mlp`] — a small fully-connected autoencoder with SGD (substrate
//!   for the DynGEM baseline).
//! - [`rnn`] — a vanilla tanh RNN cell with truncated BPTT (substrate
//!   for the tNE baseline).
//!
//! Everything is implemented from scratch on `std`; no BLAS.

pub mod logreg;
pub mod matrix;
pub mod mlp;
pub mod pca;
pub mod rnn;

pub use matrix::Matrix;
