//! A small fully-connected network with SGD — the substrate for the
//! DynGEM baseline (§5.1.2), which is "a deep auto-encoder model ...
//! initialized by its previous model" at each time step.
//!
//! Layers are dense with sigmoid activations (as in SDNE/DynGEM);
//! training is plain backprop + SGD. Sizes stay small (d ≤ a few
//! hundred), so naive loops are fine.

use crate::matrix::{sigmoid, Matrix};
use rand::Rng;

/// One dense layer: `out = σ(W x + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, `out_dim × in_dim`.
    pub w: Matrix,
    /// Biases, `out_dim`.
    pub b: Vec<f64>,
}

impl Dense {
    /// Xavier-initialised dense layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let scale = (6.0 / (in_dim + out_dim) as f64).sqrt();
        Dense {
            w: Matrix::random(out_dim, in_dim, scale, rng),
            b: vec![0.0; out_dim],
        }
    }

    /// Forward pass returning the post-activation output.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.w.rows())
            .map(|o| {
                let z: f64 =
                    self.w.row(o).iter().zip(x).map(|(a, b)| a * b).sum::<f64>() + self.b[o];
                sigmoid(z)
            })
            .collect()
    }
}

/// A multilayer perceptron (sequence of sigmoid dense layers).
#[derive(Debug, Clone)]
pub struct Mlp {
    /// The layers in forward order.
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[n, 256, 128]`
    /// builds two layers n→256→128.
    pub fn new(sizes: &[usize], rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Forward pass through all layers.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut h = x.to_vec();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Forward pass retaining every layer's activation (input first).
    fn forward_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let next = layer.forward(acts.last().unwrap());
            acts.push(next);
        }
        acts
    }

    /// One SGD step on squared-error loss `||forward(x) − target||²`,
    /// with optional per-element loss weights (DynGEM's β-reweighting of
    /// non-zero adjacency entries). Returns the (unweighted) loss.
    pub fn train_step(
        &mut self,
        x: &[f64],
        target: &[f64],
        loss_weight: Option<&[f64]>,
        lr: f64,
    ) -> f64 {
        let acts = self.forward_trace(x);
        let out = acts.last().unwrap();
        assert_eq!(out.len(), target.len());

        // Output delta: dL/dz = (ŷ − y) ⊙ w ⊙ σ'(z), σ' = ŷ(1−ŷ).
        let mut delta: Vec<f64> = out
            .iter()
            .zip(target)
            .enumerate()
            .map(|(i, (&o, &t))| {
                let w = loss_weight.map(|lw| lw[i]).unwrap_or(1.0);
                (o - t) * w * o * (1.0 - o)
            })
            .collect();
        let loss: f64 = out
            .iter()
            .zip(target)
            .map(|(&o, &t)| (o - t) * (o - t))
            .sum();

        for li in (0..self.layers.len()).rev() {
            let input = &acts[li];
            // Delta for the previous layer, computed before weights move.
            let prev_delta: Vec<f64> = if li > 0 {
                (0..input.len())
                    .map(|i| {
                        let back: f64 = (0..delta.len())
                            .map(|o| delta[o] * self.layers[li].w[(o, i)])
                            .sum();
                        back * input[i] * (1.0 - input[i])
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let layer = &mut self.layers[li];
            for o in 0..delta.len() {
                let d = delta[o];
                let row = layer.w.row_mut(o);
                for (wi, &xi) in row.iter_mut().zip(input) {
                    *wi -= lr * d * xi;
                }
                layer.b[o] -= lr * d;
            }
            delta = prev_delta;
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn autoencoder_memorises_patterns() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Mlp::new(&[4, 6, 2, 6, 4], &mut rng);
        let patterns = [vec![1.0, 0.0, 0.0, 1.0], vec![0.0, 1.0, 1.0, 0.0]];
        let mut last = f64::INFINITY;
        for epoch in 0..4000 {
            let mut total = 0.0;
            for p in &patterns {
                total += net.train_step(p, p, None, 0.8);
            }
            if epoch % 1000 == 999 {
                assert!(total <= last + 1e-9, "loss should not explode");
                last = total;
            }
        }
        for p in &patterns {
            let out = net.forward(p);
            for (o, t) in out.iter().zip(p) {
                assert!((o - t).abs() < 0.25, "out {out:?} vs {p:?}");
            }
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Mlp::new(&[3, 2], &mut rng);
        let x = [0.3, -0.2, 0.8];
        let t = [1.0, 0.0];
        // Analytic gradient for w[0][(0,0)] via one train step with tiny lr.
        let mut stepped = net.clone();
        let lr = 1e-6;
        stepped.train_step(&x, &t, None, lr);
        let analytic = (net.layers[0].w[(0, 0)] - stepped.layers[0].w[(0, 0)]) / lr;
        // Numeric gradient.
        let eps = 1e-6;
        let loss_of = |n: &Mlp| {
            let o = n.forward(&x);
            o.iter()
                .zip(&t)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        };
        let mut plus = net.clone();
        plus.layers[0].w[(0, 0)] += eps;
        let mut minus = net.clone();
        minus.layers[0].w[(0, 0)] -= eps;
        let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
        // train_step's gradient includes the 0.5 factor? no: d/dw (o-t)^2 = 2(o-t)o'(..)
        // our delta uses (o-t) not 2(o-t), so analytic ≈ numeric / 2.
        assert!(
            (2.0 * analytic - numeric).abs() < 1e-4,
            "analytic*2 {} vs numeric {}",
            2.0 * analytic,
            numeric
        );
    }

    #[test]
    fn loss_weights_scale_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = Mlp::new(&[2, 2], &mut rng);
        let x = [0.5, -0.5];
        let t = [1.0, 0.0];
        let mut a = base.clone();
        let mut b = base.clone();
        a.train_step(&x, &t, None, 0.1);
        b.train_step(&x, &t, Some(&[2.0, 2.0]), 0.1);
        // doubled weights => larger parameter movement
        let da = (base.layers[0].w[(0, 0)] - a.layers[0].w[(0, 0)]).abs();
        let db = (base.layers[0].w[(0, 0)] - b.layers[0].w[(0, 0)]).abs();
        assert!(db > da);
    }

    #[test]
    fn forward_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let net = Mlp::new(&[5, 3, 2], &mut rng);
        assert_eq!(net.forward(&[0.0; 5]).len(), 2);
    }
}
