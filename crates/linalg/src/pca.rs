//! Principal component analysis via power iteration with deflation.
//!
//! Figure 5 of the paper projects 128-dimensional embeddings to 2-D with
//! PCA to visualise how embeddings drift across consecutive time steps.

use crate::matrix::{axpy, dot, norm, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a PCA fit: the top-`k` components and data mean.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Component matrix, `k × d`, rows are unit-norm principal axes.
    pub components: Matrix,
    /// Column means of the training data, length `d`.
    pub mean: Vec<f64>,
    /// Eigenvalues (variances) of the retained components.
    pub explained_variance: Vec<f64>,
}

/// Fit a `k`-component PCA on `data` (`n × d`) using power iteration
/// with Hotelling deflation on the covariance matrix.
pub fn fit(data: &Matrix, k: usize, seed: u64) -> Pca {
    let n = data.rows();
    let d = data.cols();
    assert!(n > 0 && d > 0, "PCA needs non-empty data");
    let k = k.min(d);

    // Column means.
    let mut mean = vec![0.0; d];
    for i in 0..n {
        axpy(1.0, data.row(i), &mut mean);
    }
    for m in mean.iter_mut() {
        *m /= n as f64;
    }

    // Covariance (d × d). d is small (<= a few hundred) in our usage.
    let mut cov = Matrix::zeros(d, d);
    let mut centered = vec![0.0; d];
    for i in 0..n {
        for (j, &x) in data.row(i).iter().enumerate() {
            centered[j] = x - mean[j];
        }
        for a in 0..d {
            let ca = centered[a];
            if ca == 0.0 {
                continue;
            }
            let row = cov.row_mut(a);
            for b in 0..d {
                row[b] += ca * centered[b];
            }
        }
    }
    let denom = (n.max(2) - 1) as f64;
    for a in 0..d {
        for b in 0..d {
            cov[(a, b)] /= denom;
        }
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut components = Matrix::zeros(k, d);
    let mut explained = Vec::with_capacity(k);
    for comp in 0..k {
        let mut v: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut lambda = 0.0;
        for _ in 0..200 {
            let mut w = cov.matvec(&v);
            let nw = norm(&w);
            if nw < 1e-12 {
                // Degenerate direction: restart with a fresh random vector.
                w = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
            }
            let nw = norm(&w).max(1e-12);
            for x in w.iter_mut() {
                *x /= nw;
            }
            let new_lambda = dot(&w, &cov.matvec(&w));
            let delta = (new_lambda - lambda).abs();
            v = w;
            lambda = new_lambda;
            if delta < 1e-10 {
                break;
            }
        }
        components.row_mut(comp).copy_from_slice(&v);
        explained.push(lambda.max(0.0));
        // Deflate: cov -= λ v vᵀ
        for a in 0..d {
            for b in 0..d {
                cov[(a, b)] -= lambda * v[a] * v[b];
            }
        }
    }

    Pca {
        components,
        mean,
        explained_variance: explained,
    }
}

impl Pca {
    /// Project `data` (`n × d`) onto the fitted components (`n × k`).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let d = data.cols();
        assert_eq!(d, self.mean.len(), "dimension mismatch");
        let k = self.components.rows();
        let mut out = Matrix::zeros(n, k);
        let mut centered = vec![0.0; d];
        for i in 0..n {
            for (j, &x) in data.row(i).iter().enumerate() {
                centered[j] = x - self.mean[j];
            }
            for c in 0..k {
                out[(i, c)] = dot(&centered, self.components.row(c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data along the direction (1,1)/√2 with small orthogonal noise.
    fn line_data() -> Matrix {
        let mut data = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 5.0 - 5.0;
            let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
            data.push(t + noise);
            data.push(t - noise);
        }
        Matrix::from_vec(50, 2, data)
    }

    #[test]
    fn first_component_follows_dominant_direction() {
        let pca = fit(&line_data(), 1, 0);
        let c = pca.components.row(0);
        let expected = 1.0 / 2f64.sqrt();
        assert!(
            (c[0].abs() - expected).abs() < 0.05 && (c[1].abs() - expected).abs() < 0.05,
            "component {c:?} not along (1,1)"
        );
        // both coordinates share a sign (direction (1,1) or (-1,-1))
        assert!(c[0] * c[1] > 0.0);
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = fit(&line_data(), 2, 1);
        let c0 = pca.components.row(0);
        let c1 = pca.components.row(1);
        assert!((norm(c0) - 1.0).abs() < 1e-6);
        assert!((norm(c1) - 1.0).abs() < 1e-6);
        assert!(dot(c0, c1).abs() < 1e-4, "components not orthogonal");
    }

    #[test]
    fn explained_variance_is_sorted() {
        let pca = fit(&line_data(), 2, 2);
        assert!(pca.explained_variance[0] >= pca.explained_variance[1]);
        assert!(
            pca.explained_variance[0] > 1.0,
            "dominant direction has real variance"
        );
        assert!(pca.explained_variance[1] < 0.1, "noise direction is tiny");
    }

    #[test]
    fn transform_centers_data() {
        let data = line_data();
        let pca = fit(&data, 2, 3);
        let proj = pca.transform(&data);
        // projected data should have ~zero mean per component
        for c in 0..2 {
            let mean: f64 =
                (0..proj.rows()).map(|i| proj[(i, c)]).sum::<f64>() / proj.rows() as f64;
            assert!(mean.abs() < 1e-8, "component {c} mean {mean}");
        }
    }

    #[test]
    fn k_clamped_to_dimension() {
        let pca = fit(&line_data(), 10, 4);
        assert_eq!(pca.components.rows(), 2);
    }
}
