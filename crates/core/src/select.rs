//! Node-selection strategies (Step 2, Eq. 4, and the S1–S4 comparison
//! of §5.3.4).
//!
//! All strategies select (about) `K = α·|V^t|` nodes. Ranked by the
//! diversity of the selected nodes: S1 < S2 < S3 < S4.
//!
//! - **S1** — random *with* replacement from the reservoir (most-affected
//!   nodes only; unaware of inactive sub-networks; duplicates collapse).
//! - **S2** — random *without* replacement from the reservoir, topping up
//!   from all nodes when the reservoir is smaller than `K`.
//! - **S3** — random without replacement from all nodes of the snapshot.
//! - **S4** — GloDyNE's strategy: partition into `K` balanced
//!   sub-networks and sample one representative per sub-network from the
//!   softmax of accumulated-change scores (Eq. 4).

use crate::reservoir::Reservoir;
use glodyne_graph::Snapshot;
use glodyne_partition::{partition, PartitionConfig};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which node-selection strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Random with replacement from the reservoir.
    S1,
    /// Random without replacement from the reservoir, topped up from all
    /// nodes.
    S2,
    /// Random without replacement from all nodes.
    S3,
    /// Partition + per-sub-network softmax selection (the paper's
    /// method).
    S4,
}

impl Strategy {
    /// Table-row label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::S1 => "S1",
            Strategy::S2 => "S2",
            Strategy::S3 => "S3",
            Strategy::S4 => "S4",
        }
    }
}

/// Select (about) `k` node *local indices* of `curr` according to the
/// strategy. `prev` supplies the inertia denominators of Eq. 3.
///
/// The returned list is deduplicated; S1 may therefore return fewer than
/// `k` nodes, which is inherent to sampling with replacement.
pub fn select_nodes(
    strategy: Strategy,
    curr: &Snapshot,
    prev: &Snapshot,
    reservoir: &Reservoir,
    k: usize,
    epsilon: f64,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let n = curr.num_nodes();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    match strategy {
        Strategy::S1 => {
            let pool: Vec<u32> = reservoir
                .touched_nodes()
                .filter_map(|id| curr.local_of(id).map(|l| l as u32))
                .collect();
            if pool.is_empty() {
                return Vec::new();
            }
            let mut picked: Vec<u32> = (0..k).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            picked.sort_unstable();
            picked.dedup();
            picked
        }
        Strategy::S2 => {
            let mut pool: Vec<u32> = reservoir
                .touched_nodes()
                .filter_map(|id| curr.local_of(id).map(|l| l as u32))
                .collect();
            pool.sort_unstable(); // determinism: HashMap order varies
            pool.shuffle(rng);
            let mut picked: Vec<u32> = pool.into_iter().take(k).collect();
            if picked.len() < k {
                let mut rest: Vec<u32> = (0..n as u32).filter(|l| !picked.contains(l)).collect();
                rest.shuffle(rng);
                picked.extend(rest.into_iter().take(k - picked.len()));
            }
            picked
        }
        Strategy::S3 => {
            let mut all: Vec<u32> = (0..n as u32).collect();
            all.shuffle(rng);
            all.truncate(k);
            all
        }
        Strategy::S4 => {
            let cfg = PartitionConfig {
                k,
                epsilon,
                seed: rng.gen(),
                ..Default::default()
            };
            let parts = partition(curr, &cfg).parts();
            let mut picked = Vec::with_capacity(parts.len());
            for members in &parts {
                if members.is_empty() {
                    continue;
                }
                picked.push(softmax_pick(members, curr, prev, reservoir, rng));
            }
            picked
        }
    }
}

/// Sample one representative from a sub-network via the softmax of
/// Eq. 4: `P(v) = e^{S(v)} / Σ e^{S(u)}`. Max-shifted for numerical
/// stability; an all-zero-score (inactive) sub-network degenerates to
/// the uniform distribution, exactly the `e^0 = 1` property the paper
/// relies on.
fn softmax_pick(
    members: &[u32],
    curr: &Snapshot,
    prev: &Snapshot,
    reservoir: &Reservoir,
    rng: &mut impl Rng,
) -> u32 {
    debug_assert!(!members.is_empty());
    let scores: Vec<f64> = members
        .iter()
        .map(|&l| reservoir.score(curr.node_id(l as usize), prev))
        .collect();
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let total: f64 = exps.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (i, &e) in exps.iter().enumerate() {
        draw -= e;
        if draw <= 0.0 {
            return members[i];
        }
    }
    *members.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};
    use glodyne_graph::SnapshotDiff;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ring(n: u32) -> Snapshot {
        let edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        Snapshot::from_edges(&edges, &[])
    }

    fn setup() -> (Snapshot, Snapshot, Reservoir) {
        let prev = ring(30);
        // current adds a chord at node 3
        let mut edges: Vec<Edge> = prev.edges().collect();
        edges.push(Edge::new(NodeId(3), NodeId(20)));
        let curr = Snapshot::from_edges(&edges, &[]);
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(&prev, &curr));
        (prev, curr, r)
    }

    #[test]
    fn s3_and_s4_select_exactly_k() {
        let (prev, curr, r) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for strat in [Strategy::S3, Strategy::S4] {
            let sel = select_nodes(strat, &curr, &prev, &r, 6, 0.1, &mut rng);
            assert_eq!(sel.len(), 6, "{:?}", strat);
            let mut uniq = sel.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 6, "{:?} produced duplicates", strat);
        }
    }

    #[test]
    fn s1_only_draws_from_reservoir() {
        let (prev, curr, r) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sel = select_nodes(Strategy::S1, &curr, &prev, &r, 10, 0.1, &mut rng);
        let touched: std::collections::HashSet<u32> = r
            .touched_nodes()
            .filter_map(|id| curr.local_of(id).map(|l| l as u32))
            .collect();
        assert!(!sel.is_empty());
        for s in sel {
            assert!(touched.contains(&s), "S1 picked untouched node {s}");
        }
    }

    #[test]
    fn s2_tops_up_beyond_reservoir() {
        let (prev, curr, r) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // reservoir only has 2 nodes; ask for 8
        let sel = select_nodes(Strategy::S2, &curr, &prev, &r, 8, 0.1, &mut rng);
        assert_eq!(sel.len(), 8);
    }

    #[test]
    fn s1_empty_reservoir_selects_nothing() {
        let g = ring(10);
        let r = Reservoir::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(select_nodes(Strategy::S1, &g, &g, &r, 4, 0.1, &mut rng).is_empty());
    }

    #[test]
    fn s4_diversity_beats_s1() {
        // Diversity measure: number of distinct partition cells hit.
        // S4 hits every cell by construction; S1 concentrates on the
        // single active region.
        let (prev, curr, r) = setup();
        let k = 6;
        let cfg = PartitionConfig::with_k(k);
        let parts = partition(&curr, &cfg);
        let cells = |sel: &[u32]| {
            let mut cs: Vec<u32> = sel.iter().map(|&l| parts.assignment[l as usize]).collect();
            cs.sort_unstable();
            cs.dedup();
            cs.len()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s4 = select_nodes(Strategy::S4, &curr, &prev, &r, k, 0.1, &mut rng);
        let s1 = select_nodes(Strategy::S1, &curr, &prev, &r, k, 0.1, &mut rng);
        assert!(
            cells(&s4) >= cells(&s1),
            "S4 cells {} < S1 cells {}",
            cells(&s4),
            cells(&s1)
        );
        assert!(cells(&s4) >= k - 1, "S4 should cover nearly all cells");
    }

    #[test]
    fn softmax_biases_toward_high_scores() {
        // Within one sub-network of two nodes where one has a large
        // accumulated change, that node should be picked most of the time.
        let prev = ring(10);
        let mut edges: Vec<Edge> = prev.edges().collect();
        for j in 3..8 {
            edges.push(Edge::new(NodeId(0), NodeId(j)));
        }
        let curr = Snapshot::from_edges(&edges, &[]);
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(&prev, &curr));
        let members: Vec<u32> = vec![
            curr.local_of(NodeId(0)).unwrap() as u32,
            curr.local_of(NodeId(9)).unwrap() as u32,
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut hot = 0;
        for _ in 0..500 {
            if softmax_pick(&members, &curr, &prev, &r, &mut rng) == members[0] {
                hot += 1;
            }
        }
        assert!(hot > 350, "high-score node picked only {hot}/500 times");
    }

    #[test]
    fn inactive_subnetwork_uniform_pick() {
        let g = ring(10);
        let r = Reservoir::new(); // all scores zero
        let members: Vec<u32> = (0..5).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut counts = [0usize; 5];
        for _ in 0..2000 {
            counts[softmax_pick(&members, &g, &g, &r, &mut rng) as usize] += 1;
        }
        for c in counts {
            assert!(
                (c as f64 - 400.0).abs() < 100.0,
                "uniform fallback broken: {counts:?}"
            );
        }
    }

    #[test]
    fn k_clamped_to_n() {
        let (prev, curr, r) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sel = select_nodes(Strategy::S3, &curr, &prev, &r, 1000, 0.1, &mut rng);
        assert_eq!(sel.len(), curr.num_nodes());
    }
}
