//! GloDyNE: Global Topology Preserving Dynamic Network Embedding.
//!
//! The paper's contribution (Algorithm 1), built on the workspace
//! substrates:
//!
//! - [`reservoir`] — the accumulated-topological-change reservoir `R`
//!   and the inertia-based scoring function of Eq. 3.
//! - [`select`] — the four node-selection strategies of §5.3.4 (S1–S3
//!   baselines and S4, the paper's partition-plus-softmax selection of
//!   Eq. 4).
//! - [`model`] — the [`GloDyNE`] embedder: offline stage at `t = 0`,
//!   online incremental stage for `t ≥ 1`, with the free hyper-parameter
//!   `α` controlling the effectiveness/efficiency trade-off (§5.3.5).
//! - [`variants`] — the ablation baselines of §5.3.1–5.3.2:
//!   SGNS-static, SGNS-retrain, SGNS-increment.
//! - [`session`] — the streaming entry point: [`EmbedderSession`] wraps
//!   any step-style embedder plus a mutable graph state and an
//!   [`EpochPolicy`], turning an edge-event stream into embedding steps
//!   and answering queries at any moment.
//!
//! # Quick start (batch)
//!
//! ```
//! use glodyne::{GloDyNE, GloDyNEConfig};
//! use glodyne_embed::traits::run_over;
//! use glodyne_graph::id::{Edge, NodeId};
//! use glodyne_graph::Snapshot;
//!
//! let g0 = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1)),
//!                                 Edge::new(NodeId(1), NodeId(2))], &[]);
//! let g1 = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1)),
//!                                 Edge::new(NodeId(1), NodeId(2)),
//!                                 Edge::new(NodeId(2), NodeId(3))], &[]);
//! let mut cfg = GloDyNEConfig::default();
//! cfg.sgns.dim = 16;
//! cfg.walk.walk_length = 10;
//! let mut method = GloDyNE::new(cfg).expect("valid config");
//! let embeddings = run_over(&mut method, &[g0, g1]);
//! assert_eq!(embeddings.len(), 2);
//! assert!(embeddings[1].get(NodeId(3)).is_some());
//! ```
//!
//! # Quick start (streaming)
//!
//! ```
//! use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
//! use glodyne_graph::id::{NodeId, TimedEdge};
//!
//! let mut cfg = GloDyNEConfig::builder().alpha(0.5).build().unwrap();
//! cfg.sgns.dim = 16;
//! let mut session =
//!     EmbedderSession::new(GloDyNE::new(cfg).unwrap(), EpochPolicy::TimestampBoundary)
//!         .unwrap();
//! for i in 0..20u32 {
//!     session.apply(glodyne_graph::GraphEvent::add_edge(
//!         NodeId(i), NodeId(i + 1), (i / 10) as u64));
//! }
//! session.flush();
//! assert!(session.query(NodeId(3)).is_some());
//! let _neighbours = session.nearest(NodeId(3), 5);
//! # let _ = TimedEdge::new(NodeId(0), NodeId(1), 0);
//! ```

pub mod model;
pub mod reservoir;
pub mod select;
pub mod session;
pub mod variants;

pub use glodyne_ann::{IvfConfig, IvfIndex};
pub use glodyne_embed::config::ConfigError;
pub use glodyne_embed::traits::{CheckpointEmbedder, PhaseTimes, StepContext, StepReport};
pub use model::{GloDyNE, GloDyNEConfig, GloDyNEConfigBuilder};
pub use reservoir::Reservoir;
pub use select::Strategy;
pub use session::{EmbedderSession, EpochPolicy, SessionCheckpoint};
pub use variants::{SgnsIncrement, SgnsRetrain, SgnsStatic};
