//! The GloDyNE embedder (Algorithm 1).

use crate::reservoir::Reservoir;
use crate::select::{select_nodes, Strategy};
use glodyne_embed::traits::DynamicEmbedder;
use glodyne_embed::walks::{generate_corpus, generate_corpus_all, WalkConfig};
use glodyne_embed::{Embedding, SgnsConfig, SgnsModel};
use glodyne_graph::{Snapshot, SnapshotDiff};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Full GloDyNE configuration (Algorithm 1's inputs).
#[derive(Debug, Clone)]
pub struct GloDyNEConfig {
    /// The free hyper-parameter `α ∈ (0, 1]` determining the number of
    /// selected nodes `K = α·|V^t|` (§5.3.5; paper default 0.1).
    pub alpha: f64,
    /// Balance tolerance ε of the partition constraint (Eq. 2).
    pub epsilon: f64,
    /// Random-walk parameters (`r`, `l`).
    pub walk: WalkConfig,
    /// SGNS parameters (`d`, `s`, `q`, learning rate, epochs).
    pub sgns: SgnsConfig,
    /// Node-selection strategy (S4 is the paper's method).
    pub strategy: Strategy,
    /// Seed for selection randomness.
    pub seed: u64,
}

impl Default for GloDyNEConfig {
    fn default() -> Self {
        GloDyNEConfig {
            alpha: 0.1,
            epsilon: 0.1,
            walk: WalkConfig::default(),
            sgns: SgnsConfig::default(),
            strategy: Strategy::S4,
            seed: 0,
        }
    }
}

/// Wall-clock breakdown of one online step, matching the §5.2.4 scale
/// test's reporting (partition+selection / walks / training).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Steps 1–2: partition and node selection.
    pub select: Duration,
    /// Step 3: random walks.
    pub walks: Duration,
    /// Step 4: SGNS training.
    pub train: Duration,
}

impl PhaseTimes {
    /// Total step time.
    pub fn total(&self) -> Duration {
        self.select + self.walks + self.train
    }
}

/// The GloDyNE dynamic network embedder.
#[derive(Debug)]
pub struct GloDyNE {
    cfg: GloDyNEConfig,
    model: SgnsModel,
    reservoir: Reservoir,
    rng: ChaCha8Rng,
    step: usize,
    last_phases: PhaseTimes,
    last_selected: usize,
    last_pairs: usize,
}

impl GloDyNE {
    /// Build an embedder from a configuration.
    pub fn new(cfg: GloDyNEConfig) -> Self {
        assert!(
            cfg.alpha > 0.0 && cfg.alpha <= 1.0,
            "alpha must be in (0, 1], got {}",
            cfg.alpha
        );
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x610D_19E5);
        let model = SgnsModel::new(cfg.sgns.clone());
        GloDyNE {
            cfg,
            model,
            reservoir: Reservoir::new(),
            rng,
            step: 0,
            last_phases: PhaseTimes::default(),
            last_selected: 0,
            last_pairs: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GloDyNEConfig {
        &self.cfg
    }

    /// Phase timing of the most recent step (zeroes before any step).
    pub fn last_phase_times(&self) -> PhaseTimes {
        self.last_phases
    }

    /// Number of nodes selected in the most recent online step
    /// (`|V^t_sel| ≈ K = α·|V^t|`; equals `|V^0|` after the offline
    /// step).
    pub fn last_selected_count(&self) -> usize {
        self.last_selected
    }

    /// Positive SGNS pairs trained in the most recent step — the
    /// numerator of the pairs/sec throughput the scale test reports.
    pub fn last_trained_pairs(&self) -> usize {
        self.last_pairs
    }

    /// Read-only view of the reservoir (diagnostics/tests).
    pub fn reservoir(&self) -> &Reservoir {
        &self.reservoir
    }

    /// Offline stage (Algorithm 1 lines 1–5): walks from every node and
    /// initial SGNS training.
    fn offline(&mut self, g0: &Snapshot) {
        let t0 = Instant::now();
        let walk_cfg = WalkConfig {
            seed: self.cfg.walk.seed ^ (self.step as u64),
            ..self.cfg.walk
        };
        let corpus = generate_corpus_all(g0, &walk_cfg);
        let t1 = Instant::now();
        self.last_pairs = self.model.train_corpus(&corpus);
        let t2 = Instant::now();
        self.last_phases = PhaseTimes {
            select: Duration::ZERO,
            walks: t1 - t0,
            train: t2 - t1,
        };
        self.last_selected = g0.num_nodes();
    }

    /// Online stage (Algorithm 1 lines 6–18).
    fn online(&mut self, prev: &Snapshot, curr: &Snapshot) {
        // Lines 7, 9–10: K, edge streams, reservoir update.
        let t0 = Instant::now();
        let k = ((self.cfg.alpha * curr.num_nodes() as f64).round() as usize)
            .clamp(1, curr.num_nodes());
        let diff = SnapshotDiff::compute(prev, curr);
        self.reservoir.absorb(&diff);

        // Lines 8, 11–13: partition + select representatives.
        let selected = select_nodes(
            self.cfg.strategy,
            curr,
            prev,
            &self.reservoir,
            k,
            self.cfg.epsilon,
            &mut self.rng,
        );
        // Line 14: remove selected nodes from the reservoir.
        for &l in &selected {
            self.reservoir.clear_node(curr.node_id(l as usize));
        }
        let t1 = Instant::now();

        // Line 15: walks from the selected nodes.
        let walk_cfg = WalkConfig {
            seed: self.cfg.walk.seed ^ ((self.step as u64) << 32),
            ..self.cfg.walk
        };
        let corpus = generate_corpus(curr, &selected, &walk_cfg);
        let t2 = Instant::now();

        // Lines 16–17: incremental SGNS training (f^t = f^{t-1}).
        self.last_pairs = self.model.train_corpus(&corpus);
        let t3 = Instant::now();

        self.last_phases = PhaseTimes {
            select: t1 - t0,
            walks: t2 - t1,
            train: t3 - t2,
        };
        self.last_selected = selected.len();
    }
}

impl DynamicEmbedder for GloDyNE {
    fn advance(&mut self, prev: Option<&Snapshot>, curr: &Snapshot) {
        match prev {
            None => self.offline(curr),
            Some(p) => self.online(p, curr),
        }
        self.step += 1;
    }

    fn embedding(&self) -> Embedding {
        self.model.embedding()
    }

    fn name(&self) -> &'static str {
        "GloDyNE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::run_over;
    use glodyne_graph::id::{Edge, NodeId};

    fn small_cfg() -> GloDyNEConfig {
        GloDyNEConfig {
            alpha: 0.2,
            walk: WalkConfig {
                walks_per_node: 4,
                walk_length: 12,
                seed: 3,
            },
            sgns: SgnsConfig {
                dim: 16,
                window: 3,
                negatives: 3,
                epochs: 2,
                parallel: false,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn ring(n: u32, extra: &[(u32, u32)]) -> Snapshot {
        let mut edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        edges.extend(extra.iter().map(|&(a, b)| Edge::new(NodeId(a), NodeId(b))));
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn covers_all_snapshots_and_new_nodes() {
        let snaps = vec![
            ring(20, &[]),
            ring(20, &[(0, 20), (20, 21)]),
            ring(20, &[(0, 20), (20, 21), (21, 22)]),
        ];
        let mut m = GloDyNE::new(small_cfg());
        let embs = run_over(&mut m, &snaps);
        assert_eq!(embs.len(), 3);
        // new node 22 appears only at t=2; it will have an embedding iff a
        // walk reached it — with alpha=0.2 and active-node bias it should.
        assert!(embs[2].get(NodeId(21)).is_some() || embs[2].get(NodeId(22)).is_some());
        // all original nodes embedded from the offline stage
        for i in 0..20 {
            assert!(embs[0].get(NodeId(i)).is_some(), "node {i} missing at t=0");
        }
    }

    #[test]
    fn online_selects_about_alpha_fraction() {
        let snaps = [ring(50, &[]), ring(50, &[(0, 25)])];
        let mut m = GloDyNE::new(GloDyNEConfig {
            alpha: 0.1,
            ..small_cfg()
        });
        m.advance(None, &snaps[0]);
        assert_eq!(m.last_selected_count(), 50, "offline uses all nodes");
        m.advance(Some(&snaps[0]), &snaps[1]);
        assert_eq!(m.last_selected_count(), 5, "K = α|V| = 5");
    }

    #[test]
    fn selected_nodes_leave_reservoir() {
        let g0 = ring(30, &[]);
        let g1 = ring(30, &[(0, 15), (3, 18)]);
        let mut m = GloDyNE::new(GloDyNEConfig {
            alpha: 1.0, // select everything => reservoir fully drained
            ..small_cfg()
        });
        m.advance(None, &g0);
        m.advance(Some(&g0), &g1);
        assert!(
            m.reservoir().is_empty(),
            "alpha=1 must clear the whole reservoir"
        );
    }

    #[test]
    fn phase_times_are_populated() {
        let g0 = ring(20, &[]);
        let g1 = ring(20, &[(0, 10)]);
        let mut m = GloDyNE::new(small_cfg());
        m.advance(None, &g0);
        let offline = m.last_phase_times();
        assert!(offline.train > Duration::ZERO);
        m.advance(Some(&g0), &g1);
        let online = m.last_phase_times();
        assert!(online.total() > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn zero_alpha_rejected() {
        GloDyNE::new(GloDyNEConfig {
            alpha: 0.0,
            ..Default::default()
        });
    }

    #[test]
    fn embedding_quality_neighbors_closer_than_strangers() {
        // After offline training on a two-community graph, a node should
        // be closer to its community than to the other one.
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 8;
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(8)));
        let g = Snapshot::from_edges(&edges, &[]);
        let mut cfg = small_cfg();
        cfg.sgns.epochs = 6;
        let mut m = GloDyNE::new(cfg);
        m.advance(None, &g);
        let e = m.embedding();
        let intra = e.cosine(NodeId(1), NodeId(2)).unwrap();
        let inter = e.cosine(NodeId(1), NodeId(14)).unwrap();
        assert!(
            intra > inter,
            "intra {intra} should exceed inter {inter} after offline stage"
        );
    }
}
