//! The GloDyNE embedder (Algorithm 1).

use crate::reservoir::Reservoir;
use crate::select::{select_nodes, Strategy};
use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{
    CheckpointEmbedder, DynamicEmbedder, PhaseTimes, StepContext, StepReport,
};
use glodyne_embed::walks::{generate_corpus, generate_corpus_all, WalkConfig};
use glodyne_embed::{Embedding, SgnsConfig, SgnsModel};
use glodyne_graph::{Snapshot, SnapshotDiff};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

/// Full GloDyNE configuration (Algorithm 1's inputs).
///
/// Construct via [`GloDyNEConfig::builder`] for validated, fallible
/// assembly, or fill the fields directly and let [`GloDyNE::new`]
/// validate.
#[derive(Debug, Clone)]
pub struct GloDyNEConfig {
    /// The free hyper-parameter `α ∈ (0, 1]` determining the number of
    /// selected nodes `K = α·|V^t|` (§5.3.5; paper default 0.1).
    pub alpha: f64,
    /// Balance tolerance ε of the partition constraint (Eq. 2).
    pub epsilon: f64,
    /// Random-walk parameters (`r`, `l`).
    pub walk: WalkConfig,
    /// SGNS parameters (`d`, `s`, `q`, learning rate, epochs).
    pub sgns: SgnsConfig,
    /// Node-selection strategy (S4 is the paper's method).
    pub strategy: Strategy,
    /// Seed for selection randomness.
    pub seed: u64,
}

impl Default for GloDyNEConfig {
    fn default() -> Self {
        GloDyNEConfig {
            alpha: 0.1,
            epsilon: 0.1,
            walk: WalkConfig::default(),
            sgns: SgnsConfig::default(),
            strategy: Strategy::S4,
            seed: 0,
        }
    }
}

impl GloDyNEConfig {
    /// Start building a validated configuration from the paper defaults.
    pub fn builder() -> GloDyNEConfigBuilder {
        GloDyNEConfigBuilder {
            cfg: GloDyNEConfig::default(),
        }
    }

    /// Validate every hyper-parameter, including the nested walk and
    /// SGNS configurations.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(ConfigError::new(
                "alpha",
                format!("must be in (0, 1], got {}", self.alpha),
            ));
        }
        if !(self.epsilon.is_finite() && self.epsilon >= 0.0) {
            return Err(ConfigError::new(
                "epsilon",
                format!("must be a non-negative finite number, got {}", self.epsilon),
            ));
        }
        self.walk.validate()?;
        self.sgns.validate()?;
        Ok(())
    }
}

/// Builder-style fallible construction of [`GloDyNEConfig`].
///
/// ```
/// use glodyne::GloDyNEConfig;
/// let cfg = GloDyNEConfig::builder().alpha(0.2).seed(7).build().unwrap();
/// assert_eq!(cfg.alpha, 0.2);
/// assert!(GloDyNEConfig::builder().alpha(0.0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct GloDyNEConfigBuilder {
    cfg: GloDyNEConfig,
}

impl GloDyNEConfigBuilder {
    /// Set `α ∈ (0, 1]`, the selected-node fraction.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.cfg.alpha = alpha;
        self
    }

    /// Set the partition balance tolerance ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.cfg.epsilon = epsilon;
        self
    }

    /// Set the random-walk parameters.
    pub fn walk(mut self, walk: WalkConfig) -> Self {
        self.cfg.walk = walk;
        self
    }

    /// Set the SGNS parameters.
    pub fn sgns(mut self, sgns: SgnsConfig) -> Self {
        self.cfg.sgns = sgns;
        self
    }

    /// Set the node-selection strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Set the selection RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<GloDyNEConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// The GloDyNE dynamic network embedder.
#[derive(Debug)]
pub struct GloDyNE {
    cfg: GloDyNEConfig,
    model: SgnsModel,
    reservoir: Reservoir,
    rng: ChaCha8Rng,
    step: usize,
}

impl GloDyNE {
    /// Build an embedder from a configuration; rejects invalid
    /// hyper-parameters instead of panicking.
    pub fn new(cfg: GloDyNEConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x610D_19E5);
        let model = SgnsModel::new(cfg.sgns.clone());
        Ok(GloDyNE {
            cfg,
            model,
            reservoir: Reservoir::new(),
            rng,
            step: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &GloDyNEConfig {
        &self.cfg
    }

    /// Read-only view of the reservoir (diagnostics/tests).
    pub fn reservoir(&self) -> &Reservoir {
        &self.reservoir
    }

    /// Offline stage (Algorithm 1 lines 1–5): walks from every node and
    /// initial SGNS training.
    fn offline(&mut self, g0: &Snapshot) -> StepReport {
        let t0 = Instant::now();
        let walk_cfg = WalkConfig {
            seed: self.cfg.walk.seed ^ (self.step as u64),
            ..self.cfg.walk
        };
        let corpus = generate_corpus_all(g0, &walk_cfg);
        let t1 = Instant::now();
        let pairs = self.model.train_corpus(&corpus);
        let t2 = Instant::now();
        StepReport {
            phases: PhaseTimes {
                select: Duration::ZERO,
                walks: t1 - t0,
                train: t2 - t1,
            },
            selected: g0.num_nodes(),
            trained_pairs: pairs,
            corpus_tokens: corpus.num_tokens(),
            dirty_rows: 0,
        }
    }

    /// Online stage (Algorithm 1 lines 6–18). `diff` is the `ΔE^t` of
    /// the step context (driver-supplied or lazily computed there).
    fn online(&mut self, prev: &Snapshot, curr: &Snapshot, diff: &SnapshotDiff) -> StepReport {
        // Lines 7, 9–10: K, edge streams, reservoir update.
        let t0 = Instant::now();
        let k = ((self.cfg.alpha * curr.num_nodes() as f64).round() as usize)
            .clamp(1, curr.num_nodes());
        self.reservoir.absorb(diff);

        // Lines 8, 11–13: partition + select representatives.
        let selected = select_nodes(
            self.cfg.strategy,
            curr,
            prev,
            &self.reservoir,
            k,
            self.cfg.epsilon,
            &mut self.rng,
        );
        // Line 14: remove selected nodes from the reservoir.
        for &l in &selected {
            self.reservoir.clear_node(curr.node_id(l as usize));
        }
        let t1 = Instant::now();

        // Line 15: walks from the selected nodes.
        let walk_cfg = WalkConfig {
            seed: self.cfg.walk.seed ^ ((self.step as u64) << 32),
            ..self.cfg.walk
        };
        let corpus = generate_corpus(curr, &selected, &walk_cfg);
        let t2 = Instant::now();

        // Lines 16–17: incremental SGNS training (f^t = f^{t-1}).
        let pairs = self.model.train_corpus(&corpus);
        let t3 = Instant::now();

        StepReport {
            phases: PhaseTimes {
                select: t1 - t0,
                walks: t2 - t1,
                train: t3 - t2,
            },
            selected: selected.len(),
            trained_pairs: pairs,
            corpus_tokens: corpus.num_tokens(),
            dirty_rows: 0,
        }
    }
}

impl DynamicEmbedder for GloDyNE {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let report = match ctx.prev {
            None => self.offline(ctx.curr),
            Some(p) => {
                let diff = ctx.diff().expect("online step always has a diff");
                self.online(p, ctx.curr, diff)
            }
        };
        self.step += 1;
        report
    }

    fn embedding(&self) -> Embedding {
        self.model.embedding()
    }

    fn name(&self) -> &'static str {
        "GloDyNE"
    }
}

/// Magic bytes of the GloDyNE hidden-state checkpoint format.
const STATE_MAGIC: &[u8; 4] = b"GDYN";
/// Version of the hidden-state checkpoint format.
const STATE_VERSION: u32 = 1;

/// A little-endian byte cursor for parsing checkpoint state without
/// ever panicking on truncated or corrupt input.
struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "truncated GloDyNE state".to_string())?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

impl CheckpointEmbedder for GloDyNE {
    /// Serialise everything the persisted embedding cannot reconstruct:
    /// the step counter, both RNG keystream positions, the SGNS row
    /// order and context matrix, and the reservoir. The SGNS *input*
    /// matrix is exactly the embedding (row `i` = vector of `ids[i]`),
    /// so it travels via the persist layer instead of being duplicated
    /// here.
    fn export_state(&self) -> Vec<u8> {
        let ids = self.model.ids();
        let output = self.model.output_weights();
        let reservoir = self.reservoir.entries();
        let mut out =
            Vec::with_capacity(44 + ids.len() * 4 + output.len() * 4 + reservoir.len() * 12);
        out.extend_from_slice(STATE_MAGIC);
        out.extend_from_slice(&STATE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.step as u64).to_le_bytes());
        out.extend_from_slice(&self.rng.word_pos().to_le_bytes());
        out.extend_from_slice(&self.model.init_rng_word_pos().to_le_bytes());
        out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in ids {
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        for &w in output {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&(reservoir.len() as u32).to_le_bytes());
        for (id, change) in reservoir {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&change.to_le_bytes());
        }
        out
    }

    /// Restore from [`CheckpointEmbedder::export_state`] bytes plus the
    /// embedding persisted alongside them. The receiver's configuration
    /// must match the exporter's (same seeds, same dimensions) for the
    /// bit-exact resumption guarantee to hold.
    fn import_state(&mut self, bytes: &[u8], embedding: &Embedding) -> Result<(), String> {
        let mut r = StateReader { bytes, pos: 0 };
        if r.take(4)? != STATE_MAGIC {
            return Err("not a GloDyNE state checkpoint (bad magic)".to_string());
        }
        let version = r.u32()?;
        if version != STATE_VERSION {
            return Err(format!("unsupported GloDyNE state version {version}"));
        }
        let step = r.u64()?;
        let select_pos = r.u64()?;
        let init_pos = r.u64()?;
        let dim = self.cfg.sgns.dim;
        if embedding.dim() != dim {
            return Err(format!(
                "embedding dim {} does not match configured dim {dim}",
                embedding.dim()
            ));
        }
        let vocab_len = r.u32()? as usize;
        let mut ids = Vec::with_capacity(vocab_len);
        for _ in 0..vocab_len {
            ids.push(glodyne_graph::NodeId(r.u32()?));
        }
        let mut input = Vec::with_capacity(vocab_len * dim);
        for &id in &ids {
            let row = embedding
                .get(id)
                .ok_or_else(|| format!("embedding is missing a row for {id}"))?;
            input.extend_from_slice(row);
        }
        let mut output = Vec::with_capacity(vocab_len * dim);
        for _ in 0..vocab_len * dim {
            output.push(r.f32()?);
        }
        let reservoir_len = r.u32()? as usize;
        let mut entries = Vec::with_capacity(reservoir_len);
        for _ in 0..reservoir_len {
            let id = glodyne_graph::NodeId(r.u32()?);
            entries.push((id, r.u64()?));
        }
        if r.pos != bytes.len() {
            return Err("trailing bytes after GloDyNE state".to_string());
        }

        let model = SgnsModel::restore(self.cfg.sgns.clone(), ids, input, output, init_pos)
            .map_err(|e| e.to_string())?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0x610D_19E5);
        rng.set_word_pos(select_pos);
        self.model = model;
        self.reservoir = Reservoir::from_entries(entries);
        self.rng = rng;
        self.step = step as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::{run_over, run_over_reports, step_with};
    use glodyne_graph::id::{Edge, NodeId};

    fn small_cfg() -> GloDyNEConfig {
        GloDyNEConfig {
            alpha: 0.2,
            walk: WalkConfig {
                walks_per_node: 4,
                walk_length: 12,
                seed: 3,
            },
            sgns: SgnsConfig {
                dim: 16,
                window: 3,
                negatives: 3,
                epochs: 2,
                parallel: false,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn ring(n: u32, extra: &[(u32, u32)]) -> Snapshot {
        let mut edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        edges.extend(extra.iter().map(|&(a, b)| Edge::new(NodeId(a), NodeId(b))));
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn covers_all_snapshots_and_new_nodes() {
        let snaps = vec![
            ring(20, &[]),
            ring(20, &[(0, 20), (20, 21)]),
            ring(20, &[(0, 20), (20, 21), (21, 22)]),
        ];
        let mut m = GloDyNE::new(small_cfg()).unwrap();
        let embs = run_over(&mut m, &snaps);
        assert_eq!(embs.len(), 3);
        // new node 22 appears only at t=2; it will have an embedding iff a
        // walk reached it — with alpha=0.2 and active-node bias it should.
        assert!(embs[2].get(NodeId(21)).is_some() || embs[2].get(NodeId(22)).is_some());
        // all original nodes embedded from the offline stage
        for i in 0..20 {
            assert!(embs[0].get(NodeId(i)).is_some(), "node {i} missing at t=0");
        }
    }

    #[test]
    fn online_selects_about_alpha_fraction() {
        let snaps = [ring(50, &[]), ring(50, &[(0, 25)])];
        let mut m = GloDyNE::new(GloDyNEConfig {
            alpha: 0.1,
            ..small_cfg()
        })
        .unwrap();
        let offline = step_with(&mut m, None, &snaps[0]);
        assert_eq!(offline.selected, 50, "offline uses all nodes");
        let online = step_with(&mut m, Some(&snaps[0]), &snaps[1]);
        assert_eq!(online.selected, 5, "K = α|V| = 5");
    }

    #[test]
    fn selected_nodes_leave_reservoir() {
        let g0 = ring(30, &[]);
        let g1 = ring(30, &[(0, 15), (3, 18)]);
        let mut m = GloDyNE::new(GloDyNEConfig {
            alpha: 1.0, // select everything => reservoir fully drained
            ..small_cfg()
        })
        .unwrap();
        step_with(&mut m, None, &g0);
        step_with(&mut m, Some(&g0), &g1);
        assert!(
            m.reservoir().is_empty(),
            "alpha=1 must clear the whole reservoir"
        );
    }

    #[test]
    fn step_reports_are_populated() {
        let g0 = ring(20, &[]);
        let g1 = ring(20, &[(0, 10)]);
        let mut m = GloDyNE::new(small_cfg()).unwrap();
        let reports = run_over_reports(&mut m, &[g0, g1]);
        let offline = reports[0].1;
        assert!(offline.phases.train > Duration::ZERO);
        assert_eq!(offline.selected, 20);
        assert!(offline.trained_pairs > 0);
        assert!(offline.corpus_tokens > 0);
        let online = reports[1].1;
        assert!(online.total_time() > Duration::ZERO);
        assert!(online.selected < 20, "online selects a fraction");
        assert!(online.corpus_tokens > 0);
    }

    #[test]
    fn zero_alpha_rejected() {
        let err = GloDyNE::new(GloDyNEConfig {
            alpha: 0.0,
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err.param(), "alpha");
        assert!(err.to_string().contains("(0, 1]"));
    }

    #[test]
    fn builder_validates_every_layer() {
        assert!(GloDyNEConfig::builder().alpha(0.5).build().is_ok());
        assert!(GloDyNEConfig::builder().alpha(1.5).build().is_err());
        assert!(GloDyNEConfig::builder().epsilon(-1.0).build().is_err());
        let bad_walk = WalkConfig {
            walk_length: 0,
            ..Default::default()
        };
        assert_eq!(
            GloDyNEConfig::builder()
                .walk(bad_walk)
                .build()
                .unwrap_err()
                .param(),
            "walk_length"
        );
        let bad_sgns = SgnsConfig {
            dim: 0,
            ..Default::default()
        };
        assert_eq!(
            GloDyNEConfig::builder()
                .sgns(bad_sgns)
                .build()
                .unwrap_err()
                .param(),
            "dim"
        );
    }

    #[test]
    fn checkpoint_round_trip_resumes_bit_exactly() {
        // Export after the online step at t=1, import into a fresh
        // instance, then run t=2 on both: every embedding row must
        // agree bit for bit (deterministic config: parallel=false).
        let snaps = [
            ring(20, &[]),
            ring(20, &[(0, 20), (20, 21)]),
            ring(20, &[(0, 20), (20, 21), (21, 22), (5, 11)]),
        ];
        let mut original = GloDyNE::new(small_cfg()).unwrap();
        step_with(&mut original, None, &snaps[0]);
        step_with(&mut original, Some(&snaps[0]), &snaps[1]);

        let state = original.export_state();
        let emb = original.embedding();
        let mut restored = GloDyNE::new(small_cfg()).unwrap();
        restored.import_state(&state, &emb).unwrap();
        assert_eq!(
            restored.reservoir().total(),
            original.reservoir().total(),
            "reservoir mass must survive the round trip"
        );

        step_with(&mut original, Some(&snaps[1]), &snaps[2]);
        step_with(&mut restored, Some(&snaps[1]), &snaps[2]);
        let (a, b) = (original.embedding(), restored.embedding());
        assert_eq!(a.len(), b.len());
        for (id, va) in a.iter() {
            assert_eq!(va, b.get(id).unwrap(), "row {id} diverged after resume");
        }
    }

    #[test]
    fn import_state_rejects_corrupt_bytes() {
        let mut m = GloDyNE::new(small_cfg()).unwrap();
        step_with(&mut m, None, &ring(10, &[]));
        let state = m.export_state();
        let emb = m.embedding();
        for cut in [0usize, 3, 10, state.len() - 1] {
            let mut r = GloDyNE::new(small_cfg()).unwrap();
            assert!(r.import_state(&state[..cut], &emb).is_err(), "cut at {cut}");
        }
        let mut bad_magic = state.clone();
        bad_magic[0] ^= 0xFF;
        let mut r = GloDyNE::new(small_cfg()).unwrap();
        assert!(r.import_state(&bad_magic, &emb).is_err());
        // Missing embedding row: valid bytes, wrong embedding.
        let mut r = GloDyNE::new(small_cfg()).unwrap();
        assert!(r.import_state(&state, &Embedding::new(16)).is_err());
    }

    #[test]
    fn embedding_quality_neighbors_closer_than_strangers() {
        // After offline training on a two-community graph, a node should
        // be closer to its community than to the other one.
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 8;
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push(Edge::new(NodeId(base + i), NodeId(base + j)));
                }
            }
        }
        edges.push(Edge::new(NodeId(0), NodeId(8)));
        let g = Snapshot::from_edges(&edges, &[]);
        let mut cfg = small_cfg();
        cfg.sgns.epochs = 6;
        let mut m = GloDyNE::new(cfg).unwrap();
        step_with(&mut m, None, &g);
        let e = m.embedding();
        let intra = e.cosine(NodeId(1), NodeId(2)).unwrap();
        let inter = e.cosine(NodeId(1), NodeId(14)).unwrap();
        assert!(
            intra > inter,
            "intra {intra} should exceed inter {inter} after offline stage"
        );
    }
}
