//! The ablation variants of §5.3.1–5.3.2.
//!
//! - [`SgnsStatic`] — train once at `t = 0`, reuse those embeddings
//!   forever (shows the *necessity* of DNE, Figure 3).
//! - [`SgnsRetrain`] — retrain a fresh model from scratch on every
//!   snapshot (the "naive DNE" of §2.1; no knowledge transfer).
//! - [`SgnsIncrement`] — keep one model and continue training it on
//!   walks from *all* nodes each step (`V^t_sel = V^t_all`); equivalent
//!   to GloDyNE with α = 1.0 minus the partitioning overhead
//!   (Figure 4, §5.3.2).

use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{DynamicEmbedder, PhaseTimes, StepContext, StepReport};
use glodyne_embed::walks::{generate_corpus_all, WalkConfig};
use glodyne_embed::{Embedding, SgnsConfig, SgnsModel, WalkCorpus};
use glodyne_graph::Snapshot;
use std::time::{Duration, Instant};

/// Shared configuration for the SGNS variants.
#[derive(Debug, Clone, Default)]
pub struct VariantConfig {
    /// Random-walk parameters.
    pub walk: WalkConfig,
    /// SGNS parameters.
    pub sgns: SgnsConfig,
}

impl VariantConfig {
    /// Validate both nested configurations.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.walk.validate()?;
        self.sgns.validate()?;
        Ok(())
    }
}

/// Walks-from-everywhere + training: generate a full-graph corpus,
/// train, and time both phases into a [`StepReport`] with all nodes
/// counted as selected — the shared step body of the variants.
fn walk_all_and_train(curr: &Snapshot, walk_cfg: &WalkConfig, model: &mut SgnsModel) -> StepReport {
    let t0 = Instant::now();
    let corpus: WalkCorpus = generate_corpus_all(curr, walk_cfg);
    let t1 = Instant::now();
    let pairs = model.train_corpus(&corpus);
    let t2 = Instant::now();
    StepReport {
        phases: PhaseTimes {
            select: Duration::ZERO,
            walks: t1 - t0,
            train: t2 - t1,
        },
        selected: curr.num_nodes(),
        trained_pairs: pairs,
        corpus_tokens: corpus.num_tokens(),
        dirty_rows: 0,
    }
}

/// SGNS-static: embeddings learned at `t = 0` and frozen.
#[derive(Debug)]
pub struct SgnsStatic {
    cfg: VariantConfig,
    model: SgnsModel,
    trained: bool,
}

impl SgnsStatic {
    /// Build from a validated variant configuration.
    pub fn new(cfg: VariantConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let model = SgnsModel::new(cfg.sgns.clone());
        Ok(SgnsStatic {
            cfg,
            model,
            trained: false,
        })
    }
}

impl DynamicEmbedder for SgnsStatic {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        if self.trained {
            // Frozen: later snapshots are ignored entirely.
            return StepReport::default();
        }
        self.trained = true;
        let walk_cfg = self.cfg.walk;
        walk_all_and_train(ctx.curr, &walk_cfg, &mut self.model)
    }

    fn embedding(&self) -> Embedding {
        self.model.embedding()
    }

    fn name(&self) -> &'static str {
        "SGNS-static"
    }
}

/// SGNS-retrain: a fresh model trained from random init every step.
#[derive(Debug)]
pub struct SgnsRetrain {
    cfg: VariantConfig,
    model: SgnsModel,
    step: u64,
}

impl SgnsRetrain {
    /// Build from a validated variant configuration.
    pub fn new(cfg: VariantConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let model = SgnsModel::new(cfg.sgns.clone());
        Ok(SgnsRetrain {
            cfg,
            model,
            step: 0,
        })
    }
}

impl DynamicEmbedder for SgnsRetrain {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        // Fresh random initialisation each step: no knowledge transfer.
        let mut sgns = self.cfg.sgns.clone();
        sgns.seed = sgns.seed.wrapping_add(self.step.wrapping_mul(0x5851_F42D));
        self.model = SgnsModel::new(sgns);
        let walk_cfg = WalkConfig {
            seed: self.cfg.walk.seed ^ (self.step << 16),
            ..self.cfg.walk
        };
        self.step += 1;
        walk_all_and_train(ctx.curr, &walk_cfg, &mut self.model)
    }

    fn embedding(&self) -> Embedding {
        self.model.embedding()
    }

    fn name(&self) -> &'static str {
        "SGNS-retrain"
    }
}

/// SGNS-increment: one model, continued training on all nodes each step.
#[derive(Debug)]
pub struct SgnsIncrement {
    cfg: VariantConfig,
    model: SgnsModel,
    step: u64,
}

impl SgnsIncrement {
    /// Build from a validated variant configuration.
    pub fn new(cfg: VariantConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let model = SgnsModel::new(cfg.sgns.clone());
        Ok(SgnsIncrement {
            cfg,
            model,
            step: 0,
        })
    }
}

impl DynamicEmbedder for SgnsIncrement {
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
        let walk_cfg = WalkConfig {
            seed: self.cfg.walk.seed ^ (self.step << 16),
            ..self.cfg.walk
        };
        self.step += 1;
        walk_all_and_train(ctx.curr, &walk_cfg, &mut self.model)
    }

    fn embedding(&self) -> Embedding {
        self.model.embedding()
    }

    fn name(&self) -> &'static str {
        "SGNS-increment"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::traits::{run_over, run_over_reports};
    use glodyne_graph::id::{Edge, NodeId};

    fn cfg() -> VariantConfig {
        VariantConfig {
            walk: WalkConfig {
                walks_per_node: 3,
                walk_length: 10,
                seed: 1,
            },
            sgns: SgnsConfig {
                dim: 8,
                window: 2,
                negatives: 2,
                epochs: 2,
                parallel: false,
                ..Default::default()
            },
        }
    }

    fn ring(n: u32, extra: &[(u32, u32)]) -> Snapshot {
        let mut edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        edges.extend(extra.iter().map(|&(a, b)| Edge::new(NodeId(a), NodeId(b))));
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn static_never_embeds_new_nodes() {
        let snaps = vec![ring(10, &[]), ring(10, &[(0, 10)])];
        let mut m = SgnsStatic::new(cfg()).unwrap();
        let results = run_over_reports(&mut m, &snaps);
        assert!(
            results[1].0.get(NodeId(10)).is_none(),
            "static must stay frozen"
        );
        // And frozen vectors are bit-identical across steps.
        assert_eq!(results[0].0.get(NodeId(0)), results[1].0.get(NodeId(0)));
        // The frozen step reports no work.
        assert!(results[0].1.trained_pairs > 0);
        assert_eq!(results[1].1.trained_pairs, 0);
        assert_eq!(results[1].1.selected, 0);
    }

    #[test]
    fn retrain_embeds_new_nodes() {
        let snaps = vec![ring(10, &[]), ring(10, &[(0, 10)])];
        let mut m = SgnsRetrain::new(cfg()).unwrap();
        let embs = run_over(&mut m, &snaps);
        assert!(embs[1].get(NodeId(10)).is_some());
    }

    #[test]
    fn retrain_vectors_change_across_steps() {
        let snaps = vec![ring(10, &[]), ring(10, &[])];
        let mut m = SgnsRetrain::new(cfg()).unwrap();
        let embs = run_over(&mut m, &snaps);
        assert_ne!(
            embs[0].get(NodeId(0)),
            embs[1].get(NodeId(0)),
            "fresh init each step implies different vectors"
        );
    }

    #[test]
    fn increment_preserves_and_extends() {
        let snaps = vec![ring(10, &[]), ring(10, &[(0, 10)])];
        let mut m = SgnsIncrement::new(cfg()).unwrap();
        let embs = run_over(&mut m, &snaps);
        assert!(embs[1].get(NodeId(10)).is_some(), "new node embedded");
        // Warm start: old vectors evolve but stay correlated.
        let v0 = embs[0].get(NodeId(5)).unwrap();
        let v1 = embs[1].get(NodeId(5)).unwrap();
        let cos = glodyne_embed::embedding::cosine(v0, v1);
        assert!(cos > 0.5, "warm-started vector drifted too far: cos={cos}");
    }

    #[test]
    fn invalid_configs_rejected_by_every_variant() {
        let bad = VariantConfig {
            sgns: SgnsConfig {
                dim: 0,
                ..Default::default()
            },
            ..cfg()
        };
        assert!(SgnsStatic::new(bad.clone()).is_err());
        assert!(SgnsRetrain::new(bad.clone()).is_err());
        assert!(SgnsIncrement::new(bad).is_err());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            SgnsStatic::new(cfg()).unwrap().name(),
            SgnsRetrain::new(cfg()).unwrap().name(),
            SgnsIncrement::new(cfg()).unwrap().name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
