//! Event-driven embedder sessions: the streaming entry point.
//!
//! The paper's incremental protocol (Definition 4) is batch-shaped:
//! someone hands the method fully materialised snapshot pairs. A live
//! system sees an *edge-event stream* instead. [`EmbedderSession`]
//! closes that gap: it owns a mutable [`GraphState`], ingests
//! [`GraphEvent`]s, decides snapshot boundaries with an [`EpochPolicy`],
//! runs one [`DynamicEmbedder::step`] per boundary, and answers
//! embedding queries at any moment from the live embedding.
//!
//! The offline/online split of Algorithm 1 falls out naturally: the
//! first committed snapshot is the offline stage (`prev = None`), every
//! later commit is an online step with the precomputed diff.

use glodyne_ann::{IvfConfig, IvfIndex};
use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::{CheckpointEmbedder, DynamicEmbedder, StepContext, StepReport};
use glodyne_embed::Embedding;
use glodyne_graph::id::TimedEdge;
use glodyne_graph::state::{GraphEvent, GraphState};
use glodyne_graph::{NodeId, Snapshot};

/// When a session turns buffered events into a snapshot boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochPolicy {
    /// Commit after every `n` effective (state-changing) events.
    EveryNEvents(usize),
    /// Commit whenever an incoming event's timestamp exceeds the
    /// timestamps already applied — i.e. one snapshot per distinct
    /// timestamp, matching the §5.1.1 "all edges no later than the
    /// cut-off" recipe with a cut at every boundary.
    TimestampBoundary,
    /// Commit only on explicit [`EmbedderSession::flush`] calls.
    Manual,
}

/// A streaming embedding session: graph state + epoch policy + any
/// step-style embedder.
///
/// ```
/// use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
/// use glodyne_graph::id::{NodeId, TimedEdge};
///
/// let cfg = GloDyNEConfig::builder().alpha(0.5).build().unwrap();
/// let model = GloDyNE::new(cfg).unwrap();
/// let mut session = EmbedderSession::new(model, EpochPolicy::TimestampBoundary).unwrap();
/// let stream: Vec<TimedEdge> = (0..30u32)
///     .map(|i| TimedEdge::new(NodeId(i), NodeId(i + 1), (i / 10) as u64))
///     .collect();
/// session.ingest(&stream); // two boundaries crossed (t=0->1, 1->2)
/// session.flush();         // commit the final partial epoch
/// assert_eq!(session.reports().len(), 3);
/// assert!(session.query(NodeId(0)).is_some());
/// ```
pub struct EmbedderSession<E: DynamicEmbedder> {
    embedder: E,
    state: GraphState,
    policy: EpochPolicy,
    lcc_only: bool,
    prev: Option<Snapshot>,
    latest: Embedding,
    reports: Vec<StepReport>,
    /// Effective events applied since the last commit.
    pending: usize,
    /// Highest timestamp seen so far (a running max, so an out-of-order
    /// straggler can't drag the epoch clock backwards).
    current_time: Option<u64>,
    /// Optional approximate-search state; see
    /// [`EmbedderSession::with_ann`].
    ann: Option<AnnState>,
    /// Nodes whose embedding vector changed since the dirty set was
    /// last drained — computed by diffing the live embedding at each
    /// commit (bitwise row compare, so it is exact for any embedder,
    /// not an estimate). Ordered so drains are deterministic. Fed to
    /// [`IvfIndex::update_from`] by the lazy index maintenance and by
    /// external trainers via [`EmbedderSession::take_dirty`].
    dirty: std::collections::BTreeSet<NodeId>,
}

/// ANN configuration plus the lazily built index over the latest
/// committed embedding. A commit only marks the index stale; the build
/// happens on the first [`EmbedderSession::nearest_approx`] of the new
/// epoch, so sessions that flush many times between queries pay for at
/// most one build per *queried* epoch instead of one per flush.
struct AnnState {
    config: IvfConfig,
    index: Option<IvfIndex>,
    /// The most recently built index, retained across commits as the
    /// warm start for [`IvfIndex::update_from`]: the next lazy build
    /// reassigns only the rows the session's dirty set accumulated
    /// instead of re-running k-means from zero.
    prev: Option<IvfIndex>,
    /// Index builds performed over the session's lifetime (telemetry;
    /// pins the build-on-first-query contract in tests).
    builds: u64,
}

impl<E: DynamicEmbedder> EmbedderSession<E> {
    /// New session over an embedder and a boundary policy. Snapshots are
    /// reduced to their largest connected component by default (the
    /// paper's §5.1.1 rule); see [`EmbedderSession::keep_full_graph`].
    ///
    /// Rejects degenerate policies (`EveryNEvents(0)`) instead of
    /// silently repairing them, like every other constructor in this
    /// workspace.
    pub fn new(embedder: E, policy: EpochPolicy) -> Result<Self, ConfigError> {
        if policy == EpochPolicy::EveryNEvents(0) {
            return Err(ConfigError::new(
                "policy",
                "EveryNEvents requires n >= 1 (0 would commit on every event boundary check)",
            ));
        }
        let latest = embedder.embedding();
        Ok(EmbedderSession {
            embedder,
            state: GraphState::new(),
            policy,
            lcc_only: true,
            prev: None,
            latest,
            reports: Vec::new(),
            pending: 0,
            current_time: None,
            ann: None,
            dirty: std::collections::BTreeSet::new(),
        })
    }

    /// Commit full snapshots instead of reducing to the largest
    /// connected component.
    pub fn keep_full_graph(mut self) -> Self {
        self.lcc_only = false;
        self
    }

    /// Maintain an [`IvfIndex`] over the live embedding and answer
    /// [`nearest_approx`](EmbedderSession::nearest_approx) from it.
    /// The index is built lazily — on the first `nearest_approx` after
    /// each committed step, not at the flush itself — so a stream of
    /// flushes with no queries in between costs nothing extra. The
    /// exact [`nearest`](EmbedderSession::nearest) path is untouched.
    /// Rejects an invalid `config` like every other constructor in
    /// this workspace.
    pub fn with_ann(mut self, config: IvfConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        self.ann = Some(AnnState {
            config,
            index: None,
            prev: None,
            builds: 0,
        });
        Ok(self)
    }

    /// Apply one event; returns `true` if it triggered an embedding
    /// step (policy boundary crossed).
    ///
    /// Events are expected in roughly non-decreasing time order; a
    /// late straggler with an older timestamp is folded into the
    /// current epoch (the epoch clock is a running max, so stragglers
    /// never cause spurious mid-epoch boundaries).
    pub fn apply(&mut self, event: GraphEvent) -> bool {
        let mut stepped = false;
        if let EpochPolicy::TimestampBoundary = self.policy {
            if self
                .current_time
                .is_some_and(|t0| event.time > t0 && self.pending > 0)
            {
                stepped = self.flush().is_some();
            }
        }
        if self.state.apply(&event) {
            self.pending += 1;
        }
        self.current_time = Some(self.current_time.map_or(event.time, |t| t.max(event.time)));
        if let EpochPolicy::EveryNEvents(n) = self.policy {
            if self.pending >= n {
                stepped |= self.flush().is_some();
            }
        }
        stepped
    }

    /// Ingest a batch of timed edges (additions) in order; returns the
    /// number of embedding steps triggered along the way.
    pub fn ingest(&mut self, edges: &[TimedEdge]) -> usize {
        edges.iter().filter(|&&te| self.apply(te.into())).count()
    }

    /// Commit the current graph state as a snapshot boundary and run one
    /// embedding step. Returns `None` when there is nothing new to
    /// commit (no effective events since the last boundary).
    pub fn flush(&mut self) -> Option<StepReport> {
        if self.pending == 0 {
            return None;
        }
        let snap = if self.lcc_only {
            self.state.commit_lcc()
        } else {
            self.state.commit()
        };
        let mut report = match self.prev.take() {
            None => self.embedder.step(StepContext::initial(&snap)),
            Some(prev) => {
                // Lazy diff: methods that read ΔE^t get it computed
                // once; methods that don't pay nothing.
                self.embedder
                    .step(StepContext::transition_lazy(&prev, &snap))
            }
        };
        // Diff the live embedding across the step (bitwise per row, so
        // NaN components don't read as perpetual churn) — the exact
        // dirty set the incremental index maintenance reassigns.
        // Removed rows aren't listed: `IvfIndex::update_from` detects
        // them from the embedding itself.
        let old = std::mem::replace(&mut self.latest, self.embedder.embedding());
        report.dirty_rows = 0;
        for (id, v) in self.latest.iter() {
            let changed = match old.get(id) {
                Some(prev_row) => {
                    prev_row.len() != v.len()
                        || prev_row
                            .iter()
                            .zip(v)
                            .any(|(a, b)| a.to_bits() != b.to_bits())
                }
                None => true,
            };
            if changed {
                report.dirty_rows += 1;
                self.dirty.insert(id);
            }
        }
        if let Some(ann) = &mut self.ann {
            // Only mark the index stale; the (incremental) rebuild
            // happens lazily on the first `nearest_approx` of the new
            // epoch. The last built index is kept as the warm start.
            if let Some(ix) = ann.index.take() {
                ann.prev = Some(ix);
            }
        }
        self.prev = Some(snap);
        self.pending = 0;
        self.reports.push(report);
        Some(report)
    }

    /// The live embedding vector of a node, if it has one.
    pub fn query(&self, node: NodeId) -> Option<&[f32]> {
        self.latest.get(node)
    }

    /// The `k` cosine-nearest embedded neighbours of `node`.
    pub fn nearest(&self, node: NodeId, k: usize) -> Vec<(NodeId, f32)> {
        self.latest.top_k(node, k)
    }

    /// [`nearest`](EmbedderSession::nearest) for many nodes in one
    /// pass: every stored row is streamed once and scored against all
    /// queries while cache-hot. Results are positionally parallel to
    /// `nodes` (empty for a node without an embedding) and bit-exact
    /// with per-node `nearest` calls.
    pub fn nearest_batch(&self, nodes: &[NodeId], k: usize) -> Vec<Vec<(NodeId, f32)>> {
        self.latest.top_k_batch(nodes, k)
    }

    /// Approximate `k` nearest neighbours of `node` from the session's
    /// [`IvfIndex`], probing `nprobe` coarse cells. `None` when ANN was
    /// not enabled ([`EmbedderSession::with_ann`]); empty before the
    /// first committed step or for a node with no embedding. At
    /// `nprobe >= cells` this is bit-exact with
    /// [`nearest`](EmbedderSession::nearest) — with SQ8 storage, given
    /// a re-rank pool covering the epoch.
    ///
    /// The first call after a committed step builds the epoch's index
    /// (hence `&mut self`); further calls in the same epoch reuse it.
    /// Quantized indexes re-rank against the live embedding, so served
    /// scores always come from the exact kernel.
    pub fn nearest_approx(
        &mut self,
        node: NodeId,
        k: usize,
        nprobe: usize,
    ) -> Option<Vec<(NodeId, f32)>> {
        self.ann.as_ref()?;
        if self.ensure_ann_index().is_none() {
            // Enabled but nothing committed yet.
            return Some(Vec::new());
        }
        let index = self.ann.as_ref()?.index.as_ref()?;
        Some(match self.latest.get(node) {
            Some(query) => index.search_in(&self.latest, query, k, nprobe, Some(node)),
            None => Vec::new(),
        })
    }

    /// [`nearest_approx`](EmbedderSession::nearest_approx) for many
    /// nodes against one index build, answered with the **cell-grouped
    /// batch scan**: the batch's probed cells are grouped so each
    /// posting list is read once for every query probing it, instead
    /// of once per query. Results are positionally parallel to `nodes`
    /// (empty for a node without an embedding); bit-exact with
    /// per-node `nearest_approx` calls in the same epoch.
    pub fn nearest_batch_approx(
        &mut self,
        nodes: &[NodeId],
        k: usize,
        nprobe: usize,
    ) -> Option<Vec<Vec<(NodeId, f32)>>> {
        self.ann.as_ref()?;
        if self.ensure_ann_index().is_none() {
            return Some(nodes.iter().map(|_| Vec::new()).collect());
        }
        let index = self.ann.as_ref()?.index.as_ref()?;
        let mut slots = Vec::with_capacity(nodes.len());
        let mut queries = Vec::with_capacity(nodes.len());
        for (i, &node) in nodes.iter().enumerate() {
            if let Some(query) = self.latest.get(node) {
                slots.push(i);
                queries.push(glodyne_ann::BatchQuery {
                    query,
                    exclude: Some(node),
                });
            }
        }
        let mut scratch = glodyne_ann::SearchScratch::new();
        let grouped = index.search_in_batch_with(&self.latest, &queries, k, nprobe, &mut scratch);
        let mut out = vec![Vec::new(); nodes.len()];
        for (slot, hits) in slots.into_iter().zip(grouped) {
            out[slot] = hits;
        }
        Some(out)
    }

    /// Build the current epoch's ANN index if it is stale and return
    /// it — the explicit form of the lazy build
    /// [`nearest_approx`](EmbedderSession::nearest_approx) performs
    /// implicitly (the sharded fan-out calls this before snapshotting
    /// per-shard views). `None` when ANN is disabled or nothing has
    /// committed yet.
    pub fn ensure_ann_index(&mut self) -> Option<&IvfIndex> {
        if self.reports.is_empty() {
            // Nothing committed yet: don't burn a build on the empty
            // embedding just because a query raced the first flush.
            return None;
        }
        let ann = self.ann.as_mut()?;
        if ann.index.is_none() {
            ann.builds += 1;
            // Warm-start from the last built index when there is one:
            // only the rows the dirty set accumulated since that build
            // are reassigned (`update_from` falls back to a full
            // k-means on drift). A session that never built — or one
            // resumed from a checkpoint — builds full.
            let dirty: Vec<NodeId> = std::mem::take(&mut self.dirty).into_iter().collect();
            ann.index = Some(match ann.prev.take() {
                Some(prev) => IvfIndex::update_from(&prev, &self.latest, &dirty, &ann.config),
                None => IvfIndex::build(&self.latest, &ann.config),
            });
        }
        ann.index.as_ref()
    }

    /// Drain the accumulated dirty set: every node whose embedding
    /// vector changed since the previous drain (or session start), in
    /// ascending id order. External trainers hand this to
    /// [`IvfIndex::update_from`] alongside the previous epoch's index;
    /// the session's own lazy maintenance
    /// ([`ensure_ann_index`](EmbedderSession::ensure_ann_index)) drains
    /// the same set, so a session should have one index-building
    /// consumer.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// Size of the accumulated dirty set (nodes changed since the last
    /// [`take_dirty`](EmbedderSession::take_dirty) / lazy index build).
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// The ANN index of the current epoch, when enabled and already
    /// built (a committed step marks it stale until the next
    /// [`nearest_approx`](EmbedderSession::nearest_approx) or
    /// [`ensure_ann_index`](EmbedderSession::ensure_ann_index)
    /// rebuilds it).
    pub fn ann_index(&self) -> Option<&IvfIndex> {
        self.ann.as_ref()?.index.as_ref()
    }

    /// How many times the session has built its ANN index — with lazy
    /// rebuilds this counts *queried* epochs, not flushes.
    pub fn ann_builds(&self) -> u64 {
        self.ann.as_ref().map_or(0, |ann| ann.builds)
    }

    /// The live embedding (as of the last committed step).
    pub fn embedding(&self) -> &Embedding {
        &self.latest
    }

    /// Every committed step's report, in order.
    pub fn reports(&self) -> &[StepReport] {
        &self.reports
    }

    /// Number of committed embedding steps.
    pub fn steps(&self) -> usize {
        self.reports.len()
    }

    /// Effective (state-changing) events applied since the last commit
    /// — what the next [`EmbedderSession::flush`] would pick up.
    pub fn pending_events(&self) -> usize {
        self.pending
    }

    /// Highest event timestamp ingested so far, if any.
    pub fn current_time(&self) -> Option<u64> {
        self.current_time
    }

    /// The session's boundary policy.
    pub fn policy(&self) -> EpochPolicy {
        self.policy
    }

    /// The mutable graph state's current view (nodes/edges *including*
    /// uncommitted events).
    pub fn graph(&self) -> &GraphState {
        &self.state
    }

    /// The snapshot of the last committed boundary, if any.
    pub fn last_snapshot(&self) -> Option<&Snapshot> {
        self.prev.as_ref()
    }

    /// The wrapped embedder (diagnostics; e.g. GloDyNE's reservoir).
    pub fn embedder(&self) -> &E {
        &self.embedder
    }

    /// Consume the session, returning the embedder.
    pub fn into_embedder(self) -> E {
        self.embedder
    }
}

/// Everything beyond the embedding rows that a durable snapshot must
/// carry to resurrect an [`EmbedderSession`] at a committed boundary.
///
/// Produced by [`EmbedderSession::checkpoint`], consumed by
/// [`EmbedderSession::resume`]. The embedding itself travels separately
/// through the persist layer's binary format.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// Committed epoch count at the checkpoint.
    pub epoch: u64,
    /// Highest event timestamp ingested so far.
    pub current_time: Option<u64>,
    /// Whether snapshots reduce to the largest connected component.
    pub lcc_only: bool,
    /// Canonical edge list of the committed graph state (nodes exist
    /// iff they carry at least one edge, so edges describe it fully).
    pub edges: Vec<(NodeId, NodeId)>,
    /// The embedder's opaque hidden state
    /// ([`CheckpointEmbedder::export_state`]).
    pub embedder_state: Vec<u8>,
}

impl<E: CheckpointEmbedder> EmbedderSession<E> {
    /// Capture the session at its current committed boundary. `None`
    /// while effective events are pending — checkpoints only ever
    /// describe committed state, never a half-applied epoch (the
    /// bit-exact resume contract is defined at boundaries).
    pub fn checkpoint(&self) -> Option<SessionCheckpoint> {
        if self.pending != 0 {
            return None;
        }
        Some(SessionCheckpoint {
            epoch: self.steps() as u64,
            current_time: self.current_time,
            lcc_only: self.lcc_only,
            edges: self.state.edges().map(|e| (e.u, e.v)).collect(),
            embedder_state: self.embedder.export_state(),
        })
    }

    /// Resurrect a session from a checkpoint and the embedding that was
    /// persisted with it. `embedder` must be freshly constructed from
    /// the *same configuration* the checkpointed one used; its hidden
    /// state is overwritten from the checkpoint.
    ///
    /// The resumed session continues bit-exactly: its next committed
    /// epoch (over the same subsequent events, with deterministic
    /// training configured) equals what the uninterrupted session would
    /// have produced. Step reports before the checkpoint are not
    /// persisted — they refill with defaults so `steps()` stays honest.
    pub fn resume(
        mut embedder: E,
        policy: EpochPolicy,
        checkpoint: &SessionCheckpoint,
        embedding: &Embedding,
    ) -> Result<Self, String> {
        embedder.import_state(&checkpoint.embedder_state, embedding)?;
        let mut session = EmbedderSession::new(embedder, policy).map_err(|e| e.to_string())?;
        session.lcc_only = checkpoint.lcc_only;
        for &(a, b) in &checkpoint.edges {
            session.state.add_edge(a, b);
        }
        if checkpoint.epoch > 0 {
            // Recompute the previous-boundary snapshot from the restored
            // state — `commit` is deterministic in the state, so the
            // diff of the next online step is identical to the
            // uninterrupted run's.
            session.prev = Some(if session.lcc_only {
                session.state.commit_lcc()
            } else {
                session.state.commit()
            });
        }
        session.latest = session.embedder.embedding();
        session.reports = vec![StepReport::default(); checkpoint.epoch as usize];
        session.current_time = checkpoint.current_time;
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GloDyNE, GloDyNEConfig};
    use glodyne_embed::walks::WalkConfig;
    use glodyne_embed::SgnsConfig;

    fn tiny_model() -> GloDyNE {
        GloDyNE::new(GloDyNEConfig {
            alpha: 0.5,
            walk: WalkConfig {
                walks_per_node: 2,
                walk_length: 8,
                seed: 3,
            },
            sgns: SgnsConfig {
                dim: 8,
                window: 2,
                negatives: 2,
                epochs: 1,
                parallel: false,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap()
    }

    fn chain(times: &[u64]) -> Vec<TimedEdge> {
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| TimedEdge::new(NodeId(i as u32), NodeId(i as u32 + 1), t))
            .collect()
    }

    #[test]
    fn timestamp_boundary_commits_per_distinct_time() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::TimestampBoundary).unwrap();
        // times 0,0,0, 1,1, 2 => boundaries crossed entering 1 and 2.
        let steps = s.ingest(&chain(&[0, 0, 0, 1, 1, 2]));
        assert_eq!(steps, 2);
        assert!(s.flush().is_some(), "final partial epoch still pending");
        assert_eq!(s.steps(), 3);
        assert!(s.flush().is_none(), "nothing new after the final flush");
    }

    #[test]
    fn out_of_order_straggler_does_not_split_an_epoch() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::TimestampBoundary).unwrap();
        // times 5, 3 (straggler), 5, 5: the t=3 event must fold into the
        // t=5 epoch instead of resetting the clock and forcing a bogus
        // mid-epoch boundary at the next t=5 event.
        let events = [
            TimedEdge::new(NodeId(0), NodeId(1), 5),
            TimedEdge::new(NodeId(1), NodeId(2), 3),
            TimedEdge::new(NodeId(2), NodeId(3), 5),
            TimedEdge::new(NodeId(3), NodeId(4), 5),
        ];
        assert_eq!(s.ingest(&events), 0, "no boundary inside one epoch");
        assert_eq!(s.ingest(&[TimedEdge::new(NodeId(0), NodeId(4), 6)]), 1);
        assert_eq!(s.steps(), 1);
        assert_eq!(
            s.last_snapshot().unwrap().num_edges(),
            4,
            "the straggler's edge belongs to the committed epoch"
        );
    }

    #[test]
    fn zero_event_policy_rejected() {
        match EmbedderSession::new(tiny_model(), EpochPolicy::EveryNEvents(0)) {
            Err(err) => assert_eq!(err.param(), "policy"),
            Ok(_) => panic!("EveryNEvents(0) must be rejected"),
        }
    }

    #[test]
    fn every_n_events_policy() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::EveryNEvents(3)).unwrap();
        let steps = s.ingest(&chain(&[0, 1, 2, 3, 4, 5, 6]));
        assert_eq!(steps, 2, "7 events => commits at 3 and 6");
        s.flush();
        assert_eq!(s.steps(), 3);
    }

    #[test]
    fn manual_policy_only_flushes_explicitly() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        assert_eq!(s.ingest(&chain(&[0, 1, 2, 3])), 0);
        assert_eq!(s.steps(), 0);
        assert!(s.flush().is_some());
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn duplicate_events_do_not_pend() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        let e = TimedEdge::new(NodeId(0), NodeId(1), 0);
        s.ingest(&[e, e, e]);
        s.flush().unwrap();
        // Re-adding the same edge is not an effective change.
        s.ingest(&[e]);
        assert!(s.flush().is_none(), "duplicate edge must not re-commit");
    }

    #[test]
    fn queries_reflect_live_embedding() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        assert!(s.query(NodeId(0)).is_none(), "nothing before first flush");
        s.ingest(&chain(&[0, 0, 0, 0, 0]));
        let report = s.flush().unwrap();
        assert!(report.trained_pairs > 0);
        assert!(s.query(NodeId(0)).is_some());
        let near = s.nearest(NodeId(0), 3);
        assert!(!near.is_empty());
        assert!(near.iter().all(|&(id, _)| id != NodeId(0)));
    }

    #[test]
    fn nearest_matches_reference_contract() {
        // `nearest` must agree with the shared executable spec
        // (`reference_top_k`) on ordering, self-exclusion, and values —
        // the same contract the serving layer pins on its wire path.
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        s.ingest(&chain(&[0, 0, 0, 0, 0, 0]));
        s.flush().unwrap();
        let near = s.nearest(NodeId(2), 4);
        let spec = glodyne_embed::reference_top_k(s.embedding(), NodeId(2), 4);
        assert!(!near.is_empty());
        assert_eq!(near.len(), spec.len());
        for (a, b) in near.iter().zip(&spec) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert!(near.iter().all(|&(id, _)| id != NodeId(2)), "self excluded");
    }

    #[test]
    fn ann_session_full_probe_matches_exact_nearest() {
        let cfg = IvfConfig {
            cells: 4,
            ..Default::default()
        };
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual)
            .unwrap()
            .with_ann(cfg)
            .unwrap();
        assert!(s.ann_index().is_none(), "no index before the first step");
        assert_eq!(
            s.nearest_approx(NodeId(0), 3, 4),
            Some(Vec::new()),
            "enabled but nothing committed yet"
        );
        s.ingest(&chain(&[0, 0, 0, 0, 0, 0, 0]));
        s.flush().unwrap();
        assert!(
            s.ann_index().is_none(),
            "flush only marks the index stale; the first query builds it"
        );
        // Full probe: nprobe is clamped to the cell count inside search.
        let approx = s.nearest_approx(NodeId(2), 5, usize::MAX).unwrap();
        let index = s.ann_index().expect("index built by the first query");
        assert_eq!(index.len(), s.embedding().len());
        let exact = s.nearest(NodeId(2), 5);
        assert_eq!(approx.len(), exact.len());
        for (a, b) in approx.iter().zip(&exact) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // Low nprobe still returns well-formed, self-excluded results.
        let partial = s.nearest_approx(NodeId(2), 5, 1).unwrap();
        assert!(partial.len() <= 5);
        assert!(partial.iter().all(|&(id, _)| id != NodeId(2)));
        // A node without an embedding searches empty, not a panic.
        assert_eq!(s.nearest_approx(NodeId(999), 5, 2), Some(Vec::new()));
    }

    #[test]
    fn nearest_batch_matches_per_query_nearest_on_every_path() {
        for quantize in [false, true] {
            let cfg = IvfConfig {
                cells: 3,
                quantize,
                ..Default::default()
            };
            let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual)
                .unwrap()
                .with_ann(cfg)
                .unwrap();
            // Before anything commits: batch answers are well-formed.
            let nodes = [NodeId(0), NodeId(3), NodeId(999), NodeId(1)];
            assert_eq!(s.nearest_batch(&nodes, 3), vec![vec![]; 4]);
            assert_eq!(
                s.nearest_batch_approx(&nodes, 3, 2),
                Some(vec![vec![], vec![], vec![], vec![]])
            );
            s.ingest(&chain(&[0, 0, 0, 0, 0, 0, 0]));
            s.flush().unwrap();
            // Exact batch ≡ per-query exact.
            let batch = s.nearest_batch(&nodes, 4);
            for (&n, got) in nodes.iter().zip(&batch) {
                let single = s.nearest(n, 4);
                assert_eq!(got.len(), single.len());
                for (a, b) in got.iter().zip(&single) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            // ANN batch ≡ per-query ANN, same epoch, one index build.
            for nprobe in [1usize, usize::MAX] {
                let batch = s.nearest_batch_approx(&nodes, 4, nprobe).unwrap();
                for (&n, got) in nodes.iter().zip(&batch) {
                    let single = s.nearest_approx(n, 4, nprobe).unwrap();
                    assert_eq!(got.len(), single.len(), "quantize={quantize}");
                    for (a, b) in got.iter().zip(&single) {
                        assert_eq!(a.0, b.0);
                        assert_eq!(a.1.to_bits(), b.1.to_bits());
                    }
                }
            }
            assert_eq!(s.ann_builds(), 1, "the whole batch shares one build");
        }
    }

    #[test]
    fn ann_rebuild_is_lazy_and_counted() {
        let cfg = IvfConfig {
            cells: 2,
            ..Default::default()
        };
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual)
            .unwrap()
            .with_ann(cfg)
            .unwrap();
        // A query before anything commits doesn't build.
        assert_eq!(s.nearest_approx(NodeId(0), 3, 1), Some(Vec::new()));
        assert_eq!(s.ann_builds(), 0);
        // Three flushes with no queries in between: zero builds.
        for round in 0..3u32 {
            s.ingest(&[TimedEdge::new(NodeId(round), NodeId(round + 1), 0)]);
            s.flush().unwrap();
        }
        assert_eq!(s.ann_builds(), 0, "flushes alone must not build");
        // First query of the epoch builds once; repeats reuse it.
        s.nearest_approx(NodeId(0), 3, 2).unwrap();
        s.nearest_approx(NodeId(1), 3, 2).unwrap();
        assert_eq!(s.ann_builds(), 1, "one build per queried epoch");
        // A new committed step invalidates; the next query rebuilds.
        s.ingest(&[TimedEdge::new(NodeId(0), NodeId(9), 1)]);
        s.flush().unwrap();
        assert!(s.ann_index().is_none());
        s.nearest_approx(NodeId(0), 3, 2).unwrap();
        assert_eq!(s.ann_builds(), 2);
        // A no-op flush (nothing pending) must not invalidate.
        assert!(s.flush().is_none());
        assert!(s.ann_index().is_some(), "no-step flush keeps the index");
        s.nearest_approx(NodeId(0), 3, 2).unwrap();
        assert_eq!(s.ann_builds(), 2);
    }

    #[test]
    fn lazy_index_maintenance_is_incremental_and_matches_full_builds() {
        use glodyne_ann::BuildKind;
        let cfg = IvfConfig {
            cells: 3,
            // Disarm the staleness trigger: tiny test graphs churn a
            // large fraction of their rows per step.
            drift_stale_bp: 10_000,
            ..Default::default()
        };
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual)
            .unwrap()
            .with_ann(cfg)
            .unwrap();
        s.ingest(&chain(&[0, 0, 0, 0, 0, 0]));
        let r = s.flush().unwrap();
        assert!(r.dirty_rows > 0, "the offline step dirties every row");
        assert_eq!(r.dirty_rows, s.dirty_len());
        s.nearest_approx(NodeId(0), 3, 2).unwrap();
        let first = s.ann_index().unwrap();
        assert_eq!(first.build_kind(), BuildKind::Full, "cold start is full");
        assert_eq!(s.dirty_len(), 0, "the build drained the dirty set");

        // Next epoch: the lazy rebuild warm-starts from the first.
        s.ingest(&[TimedEdge::new(NodeId(0), NodeId(9), 1)]);
        let r = s.flush().unwrap();
        assert!(r.dirty_rows > 0);
        let approx = s.nearest_approx(NodeId(2), 4, usize::MAX).unwrap();
        let index = s.ann_index().unwrap();
        assert_eq!(index.build_kind(), BuildKind::Incremental);
        assert_eq!(index.len(), s.embedding().len());
        assert!(index.dirty_rows() > 0);
        // Full probe on the patched index ≡ the exact scan.
        let exact = s.nearest(NodeId(2), 4);
        assert_eq!(approx.len(), exact.len());
        for (a, b) in approx.iter().zip(&exact) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_eq!(s.ann_builds(), 2);
    }

    #[test]
    fn take_dirty_drains_the_diffed_churn() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        assert_eq!(s.take_dirty(), Vec::<NodeId>::new());
        s.ingest(&chain(&[0, 0, 0, 0]));
        let r = s.flush().unwrap();
        let dirty = s.take_dirty();
        assert_eq!(dirty.len(), r.dirty_rows);
        assert_eq!(
            dirty.len(),
            s.embedding().len(),
            "offline step touches every row"
        );
        assert!(dirty.windows(2).all(|w| w[0] < w[1]), "sorted drain order");
        assert_eq!(s.dirty_len(), 0);
        // Dirty accumulates across un-drained commits.
        s.ingest(&[TimedEdge::new(NodeId(0), NodeId(9), 1)]);
        s.flush().unwrap();
        s.ingest(&[TimedEdge::new(NodeId(1), NodeId(8), 2)]);
        s.flush().unwrap();
        let dirty = s.take_dirty();
        assert!(!dirty.is_empty());
        assert!(dirty.len() <= s.embedding().len());
    }

    #[test]
    fn ann_disabled_and_invalid_configs() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        assert_eq!(s.nearest_approx(NodeId(0), 3, 1), None, "ann not enabled");
        assert!(s.ann_index().is_none());
        let bad = IvfConfig {
            cells: 0,
            ..Default::default()
        };
        match EmbedderSession::new(tiny_model(), EpochPolicy::Manual)
            .unwrap()
            .with_ann(bad)
        {
            Err(err) => assert_eq!(err.param(), "cells"),
            Ok(_) => panic!("cells = 0 must be rejected"),
        }
    }

    #[test]
    fn serving_accessors_track_state() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        assert_eq!(s.policy(), EpochPolicy::Manual);
        assert_eq!(s.pending_events(), 0);
        assert_eq!(s.current_time(), None);
        s.ingest(&chain(&[0, 1, 2]));
        assert_eq!(s.pending_events(), 3);
        assert_eq!(s.current_time(), Some(2));
        s.flush().unwrap();
        assert_eq!(s.pending_events(), 0);
        assert_eq!(s.current_time(), Some(2));
    }

    #[test]
    fn first_commit_is_offline_stage() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        s.ingest(&chain(&[0, 0, 0, 0]));
        let r0 = s.flush().unwrap();
        // Offline stage walks from every node of the committed LCC.
        assert_eq!(r0.selected, s.last_snapshot().unwrap().num_nodes());
        s.ingest(&[TimedEdge::new(NodeId(0), NodeId(9), 1)]);
        let r1 = s.flush().unwrap();
        assert!(
            r1.selected < s.last_snapshot().unwrap().num_nodes(),
            "online step selects a fraction"
        );
    }

    #[test]
    fn checkpoint_resume_is_bit_exact() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        s.ingest(&chain(&[0, 0, 0, 0, 0]));
        s.flush().unwrap();
        s.ingest(&[TimedEdge::new(NodeId(0), NodeId(9), 1)]);
        assert!(
            s.checkpoint().is_none(),
            "pending events forbid checkpoints"
        );
        s.flush().unwrap();

        let ckpt = s.checkpoint().unwrap();
        assert_eq!(ckpt.epoch, 2);
        let emb = s.embedding().clone();
        let mut r =
            EmbedderSession::resume(tiny_model(), EpochPolicy::Manual, &ckpt, &emb).unwrap();
        assert_eq!(r.steps(), s.steps());
        assert_eq!(r.current_time(), s.current_time());
        assert_eq!(r.graph(), s.graph());

        // Drive both through the same suffix: committed state must
        // stay bit-identical, including the embedding's row order (the
        // persist layer serialises rows in iteration order).
        let suffix = [
            TimedEdge::new(NodeId(2), NodeId(7), 2),
            TimedEdge::new(NodeId(3), NodeId(8), 2),
        ];
        s.ingest(&suffix);
        s.flush().unwrap();
        r.ingest(&suffix);
        r.flush().unwrap();
        let (a, b) = (s.embedding(), r.embedding());
        assert_eq!(a.len(), b.len());
        for ((ida, va), (idb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(ida, idb, "row order diverged");
            assert_eq!(va, vb, "row {ida} diverged");
        }
    }

    #[test]
    fn epoch_zero_checkpoint_resumes_before_first_commit() {
        let s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        let ckpt = s.checkpoint().unwrap();
        assert_eq!(ckpt.epoch, 0);
        let mut r =
            EmbedderSession::resume(tiny_model(), EpochPolicy::Manual, &ckpt, &Embedding::new(8))
                .unwrap();
        assert_eq!(r.steps(), 0);
        assert!(r.last_snapshot().is_none(), "no boundary committed yet");
        // The first flush after resume is still the offline stage.
        r.ingest(&chain(&[0, 0, 0]));
        let report = r.flush().unwrap();
        assert_eq!(report.selected, r.last_snapshot().unwrap().num_nodes());
    }

    #[test]
    fn removals_flow_through_events() {
        use glodyne_graph::state::GraphEvent;
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual)
            .unwrap()
            .keep_full_graph();
        s.ingest(&chain(&[0, 0, 0, 0]));
        s.flush().unwrap();
        assert_eq!(s.last_snapshot().unwrap().num_nodes(), 5);
        s.apply(GraphEvent::remove_node(NodeId(4), 1));
        s.flush().unwrap();
        assert_eq!(s.last_snapshot().unwrap().num_nodes(), 4);
    }
}
