//! The accumulated-change reservoir and the scoring function of Eq. 3.
//!
//! The reservoir `R` stores, per node, the accumulated topological
//! changes "up to t−1 ... to handle the case when a node has small
//! changes at each time step for a long time, which greatly affects
//! network topology but maybe ignored if not recorded" (footnote 2).
//! Algorithm 1 line 10 folds the current step's changes in
//! (`R^t_i = |ΔE^t_i| + R^{t-1}_i`); line 14 clears the entries of
//! selected nodes once their topology has been re-captured.

use glodyne_graph::{NodeId, Snapshot, SnapshotDiff};
use std::collections::HashMap;

/// Per-node accumulated topological change.
#[derive(Debug, Clone, Default)]
pub struct Reservoir {
    changes: HashMap<NodeId, u64>,
}

impl Reservoir {
    /// Empty reservoir.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one step's edge changes into the reservoir
    /// (Algorithm 1 line 10).
    pub fn absorb(&mut self, diff: &SnapshotDiff) {
        for (&id, &delta) in &diff.changed_degree {
            *self.changes.entry(id).or_insert(0) += delta as u64;
        }
    }

    /// Accumulated change of a node (0 if never touched).
    pub fn get(&self, id: NodeId) -> u64 {
        self.changes.get(&id).copied().unwrap_or(0)
    }

    /// Remove a node's entry after it has been selected
    /// (Algorithm 1 line 14). Returns the removed amount.
    pub fn clear_node(&mut self, id: NodeId) -> u64 {
        self.changes.remove(&id).unwrap_or(0)
    }

    /// Nodes currently holding accumulated change, in unspecified order.
    pub fn touched_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.changes.keys().copied()
    }

    /// Number of nodes with non-zero accumulated change.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether no node holds accumulated change.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Total accumulated mass (for accounting tests).
    pub fn total(&self) -> u64 {
        self.changes.values().sum()
    }

    /// All `(node, accumulated change)` entries sorted by node id — a
    /// canonical order for checkpoint serialisation.
    pub fn entries(&self) -> Vec<(NodeId, u64)> {
        let mut out: Vec<(NodeId, u64)> = self.changes.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Rebuild a reservoir from checkpointed entries.
    pub fn from_entries(entries: impl IntoIterator<Item = (NodeId, u64)>) -> Self {
        Reservoir {
            changes: entries.into_iter().collect(),
        }
    }

    /// The scoring function of Eq. 3 for a node in the current snapshot:
    ///
    /// `S(v) = (|ΔE^t_v| + R^{t-1}_v) / Deg^{t-1}(v)`
    ///
    /// By the time this is called the reservoir has already absorbed the
    /// current diff, so the numerator is simply `R^t_v`. The denominator
    /// is the node's degree in the *previous* snapshot (its "inertia");
    /// nodes absent from the previous snapshot (newcomers) take degree 1,
    /// which gives them the full weight of their accumulated changes.
    pub fn score(&self, id: NodeId, prev: &Snapshot) -> f64 {
        let numerator = self.get(id) as f64;
        let inertia = prev
            .local_of(id)
            .map(|l| prev.degree(l).max(1) as f64)
            .unwrap_or(1.0);
        numerator / inertia
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::Edge;

    fn snap(edges: &[(u32, u32)]) -> Snapshot {
        let es: Vec<Edge> = edges
            .iter()
            .map(|&(a, b)| Edge::new(NodeId(a), NodeId(b)))
            .collect();
        Snapshot::from_edges(&es, &[])
    }

    #[test]
    fn absorb_accumulates_across_steps() {
        let g0 = snap(&[(0, 1)]);
        let g1 = snap(&[(0, 1), (1, 2)]);
        let g2 = snap(&[(0, 1), (1, 2), (1, 3)]);
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(&g0, &g1));
        assert_eq!(r.get(NodeId(1)), 1);
        r.absorb(&SnapshotDiff::compute(&g1, &g2));
        assert_eq!(r.get(NodeId(1)), 2, "changes accumulate");
        assert_eq!(r.get(NodeId(0)), 0, "untouched node stays at zero");
    }

    #[test]
    fn clear_node_removes_entry() {
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(
            &snap(&[(0, 1)]),
            &snap(&[(0, 1), (0, 2)]),
        ));
        assert_eq!(r.clear_node(NodeId(0)), 1);
        assert_eq!(r.get(NodeId(0)), 0);
        assert_eq!(r.clear_node(NodeId(0)), 0, "double clear is harmless");
    }

    #[test]
    fn total_mass_accounting() {
        let g0 = snap(&[(0, 1)]);
        let g1 = snap(&[(0, 1), (2, 3)]);
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(&g0, &g1));
        // one added edge touches two endpoints
        assert_eq!(r.total(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn score_divides_by_previous_degree() {
        // prev: node 1 has degree 3 (hub), node 4 degree 1 (leaf)
        let prev = snap(&[(1, 0), (1, 2), (1, 3), (4, 0)]);
        let curr = snap(&[(1, 0), (1, 2), (1, 3), (4, 0), (1, 5), (4, 5)]);
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(&prev, &curr));
        // both gained exactly one edge, but the leaf has less inertia
        let hub = r.score(NodeId(1), &prev);
        let leaf = r.score(NodeId(4), &prev);
        assert!((hub - 1.0 / 3.0).abs() < 1e-12);
        assert!((leaf - 1.0).abs() < 1e-12);
        assert!(leaf > hub, "low-inertia node scores higher per change");
    }

    #[test]
    fn newcomer_gets_unit_inertia() {
        let prev = snap(&[(0, 1)]);
        let curr = snap(&[(0, 1), (0, 2), (1, 2)]);
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(&prev, &curr));
        // node 2 is new with 2 fresh edges => score 2/1
        assert!((r.score(NodeId(2), &prev) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_score_for_inactive_node() {
        let prev = snap(&[(0, 1), (2, 3)]);
        let r = Reservoir::new();
        assert_eq!(r.score(NodeId(2), &prev), 0.0);
    }
}
