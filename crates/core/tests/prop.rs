//! Property tests for GloDyNE's selection and reservoir invariants.

use glodyne::reservoir::Reservoir;
use glodyne::select::{select_nodes, Strategy as Sel};
use glodyne_graph::id::{Edge, NodeId};
use glodyne_graph::{Snapshot, SnapshotDiff};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_snapshot_pair() -> impl Strategy<Value = (Snapshot, Snapshot)> {
    (
        prop::collection::vec((0u32..30, 0u32..30), 5..60),
        prop::collection::vec((0u32..30, 0u32..30), 5..60),
    )
        .prop_map(|(e1, e2)| {
            let to_edges = |pairs: Vec<(u32, u32)>| -> Vec<Edge> {
                pairs
                    .into_iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| Edge::new(NodeId(a), NodeId(b)))
                    .collect()
            };
            // Current snapshot shares a prefix of prev's edges so diffs
            // are non-trivial but related.
            let prev_edges = to_edges(e1);
            let mut curr_edges = prev_edges[..prev_edges.len() / 2].to_vec();
            curr_edges.extend(to_edges(e2));
            (
                Snapshot::from_edges(&prev_edges, &[]),
                Snapshot::from_edges(&curr_edges, &[]),
            )
        })
        .prop_filter("both non-empty", |(a, b)| {
            a.num_nodes() > 2 && b.num_nodes() > 2
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Selected nodes are always valid local indices of the current
    /// snapshot and contain no duplicates, for every strategy.
    #[test]
    fn selection_valid_and_unique((prev, curr) in arb_snapshot_pair(), k in 1usize..10, seed in 0u64..50) {
        let mut reservoir = Reservoir::new();
        reservoir.absorb(&SnapshotDiff::compute(&prev, &curr));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for strat in [Sel::S1, Sel::S2, Sel::S3, Sel::S4] {
            let sel = select_nodes(strat, &curr, &prev, &reservoir, k, 0.1, &mut rng);
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), sel.len(), "{:?} duplicated", strat);
            for &l in &sel {
                prop_assert!((l as usize) < curr.num_nodes(), "{:?} out of range", strat);
            }
            prop_assert!(sel.len() <= k.min(curr.num_nodes()));
        }
    }

    /// S3 and S4 always deliver exactly min(k, |V|) nodes.
    #[test]
    fn s3_s4_exact_count((prev, curr) in arb_snapshot_pair(), k in 1usize..12) {
        let mut reservoir = Reservoir::new();
        reservoir.absorb(&SnapshotDiff::compute(&prev, &curr));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for strat in [Sel::S3, Sel::S4] {
            let sel = select_nodes(strat, &curr, &prev, &reservoir, k, 0.1, &mut rng);
            prop_assert_eq!(sel.len(), k.min(curr.num_nodes()), "{:?}", strat);
        }
    }

    /// Reservoir totals equal the sum of per-node diff changes, and
    /// clearing is exact.
    #[test]
    fn reservoir_accounting((prev, curr) in arb_snapshot_pair()) {
        let diff = SnapshotDiff::compute(&prev, &curr);
        let mut r = Reservoir::new();
        r.absorb(&diff);
        let expected: u64 = diff.changed_degree.values().map(|&v| v as u64).sum();
        prop_assert_eq!(r.total(), expected);
        // absorb twice => doubles
        r.absorb(&diff);
        prop_assert_eq!(r.total(), expected * 2);
        // clearing all touched nodes empties it
        let ids: Vec<NodeId> = r.touched_nodes().collect();
        for id in ids {
            r.clear_node(id);
        }
        prop_assert!(r.is_empty());
    }

    /// Scores are finite and non-negative; zero for untouched nodes.
    #[test]
    fn scores_well_formed((prev, curr) in arb_snapshot_pair()) {
        let mut r = Reservoir::new();
        r.absorb(&SnapshotDiff::compute(&prev, &curr));
        for l in 0..curr.num_nodes() {
            let s = r.score(curr.node_id(l), &prev);
            prop_assert!(s.is_finite() && s >= 0.0);
            if r.get(curr.node_id(l)) == 0 {
                prop_assert_eq!(s, 0.0);
            }
        }
    }
}
