//! Call-site migration equivalence: `GloDyNE` now drives the flat
//! corpus pipeline (`generate_corpus*` + `train_corpus`); in
//! deterministic mode its embeddings must be bit-identical to the
//! legacy call pattern (`generate_walks*` + the `train` shim) composed
//! from the same public pieces with the same seeds.

use glodyne::select::{select_nodes, Strategy};
use glodyne::{GloDyNE, GloDyNEConfig, Reservoir};
use glodyne_embed::traits::{step_with, DynamicEmbedder};
use glodyne_embed::walks::{generate_walks, generate_walks_all, WalkConfig};
use glodyne_embed::{SgnsConfig, SgnsModel};
use glodyne_graph::id::{Edge, NodeId};
use glodyne_graph::{Snapshot, SnapshotDiff};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn det_cfg() -> GloDyNEConfig {
    GloDyNEConfig {
        alpha: 0.25,
        epsilon: 0.1,
        walk: WalkConfig {
            walks_per_node: 4,
            walk_length: 14,
            seed: 21,
        },
        sgns: SgnsConfig {
            dim: 16,
            window: 3,
            negatives: 3,
            epochs: 2,
            parallel: false,
            ..Default::default()
        },
        strategy: Strategy::S4,
        seed: 9,
    }
}

fn ring(n: u32, extra: &[(u32, u32)]) -> Snapshot {
    let mut edges: Vec<Edge> = (0..n)
        .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
        .collect();
    edges.extend(extra.iter().map(|&(a, b)| Edge::new(NodeId(a), NodeId(b))));
    Snapshot::from_edges(&edges, &[])
}

/// The pre-migration GloDyNE loop, reproduced from the same public
/// building blocks with the legacy walk/train entry points. Mirrors
/// `model.rs` line for line: offline walks from all nodes, then per
/// online step reservoir update → selection → walks from the selected
/// nodes → incremental training.
fn legacy_pipeline(cfg: &GloDyNEConfig, snaps: &[Snapshot]) -> glodyne_embed::Embedding {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x610D_19E5);
    let mut model = SgnsModel::new(cfg.sgns.clone());
    let mut reservoir = Reservoir::new();

    // Offline stage at t = 0.
    let walk_cfg = WalkConfig {
        seed: cfg.walk.seed, // ^ step 0
        ..cfg.walk
    };
    model.train(&generate_walks_all(&snaps[0], &walk_cfg));

    // Online stages.
    for (step, pair) in snaps.windows(2).enumerate() {
        let (prev, curr) = (&pair[0], &pair[1]);
        let k = ((cfg.alpha * curr.num_nodes() as f64).round() as usize).clamp(1, curr.num_nodes());
        let diff = SnapshotDiff::compute(prev, curr);
        reservoir.absorb(&diff);
        let selected = select_nodes(
            cfg.strategy,
            curr,
            prev,
            &reservoir,
            k,
            cfg.epsilon,
            &mut rng,
        );
        for &l in &selected {
            reservoir.clear_node(curr.node_id(l as usize));
        }
        let walk_cfg = WalkConfig {
            seed: cfg.walk.seed ^ (((step + 1) as u64) << 32),
            ..cfg.walk
        };
        model.train(&generate_walks(curr, &selected, &walk_cfg));
    }
    model.embedding()
}

#[test]
fn glodyne_matches_legacy_pipeline_bit_exact() {
    let snaps = vec![
        ring(40, &[]),
        ring(40, &[(0, 40), (40, 41), (3, 20)]),
        ring(40, &[(0, 40), (40, 41), (41, 42), (7, 30)]),
    ];
    let cfg = det_cfg();

    let mut migrated = GloDyNE::new(cfg.clone()).unwrap();
    let mut prev: Option<&Snapshot> = None;
    for s in &snaps {
        step_with(&mut migrated, prev, s);
        prev = Some(s);
    }
    let new_emb = migrated.embedding();
    let old_emb = legacy_pipeline(&cfg, &snaps);

    assert_eq!(new_emb.len(), old_emb.len(), "vocabulary size diverged");
    for (id, v_old) in old_emb.iter() {
        let v_new = new_emb
            .get(id)
            .unwrap_or_else(|| panic!("{id} missing after migration"));
        assert_eq!(v_old, v_new, "vector for {id} diverged");
    }
}

#[test]
fn glodyne_deterministic_mode_reproducible_across_runs() {
    let snaps = vec![ring(30, &[]), ring(30, &[(0, 15), (5, 25)])];
    let run = || {
        let mut m = GloDyNE::new(det_cfg()).unwrap();
        let mut prev: Option<&Snapshot> = None;
        for s in &snaps {
            step_with(&mut m, prev, s);
            prev = Some(s);
        }
        m.embedding()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.len(), b.len());
    for (id, va) in a.iter() {
        assert_eq!(va, b.get(id).unwrap(), "run-to-run divergence at {id}");
    }
}
