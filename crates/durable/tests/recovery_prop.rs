//! Crash-recovery property suite: random truncation and byte flips at
//! arbitrary offsets in the newest WAL segment and the newest snapshot
//! must never panic recovery. Recovery falls back to the longest valid
//! WAL prefix / an older snapshot, and the recovered committed state is
//! **bit-exact** with an uninterrupted reference run over the same
//! event prefix.

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_durable::{list_segments, list_snapshots, DurableConfig, DurableSession, FsyncPolicy};
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::{Embedding, SgnsConfig};
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use proptest::prelude::*;
use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tiny_model() -> GloDyNE {
    GloDyNE::new(GloDyNEConfig {
        alpha: 0.5,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 6,
            seed: 3,
        },
        sgns: SgnsConfig {
            dim: 4,
            window: 2,
            negatives: 2,
            epochs: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    })
    .unwrap()
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "glodyne-recprop-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn stream(n: u32) -> Vec<GraphEvent> {
    (0..n)
        .map(|i| GraphEvent::add_edge(NodeId(i), NodeId(i + 1), (i / 4) as u64))
        .collect()
}

const POLICY: EpochPolicy = EpochPolicy::EveryNEvents(3);

fn durable_cfg() -> DurableConfig {
    DurableConfig {
        segment_bytes: 128,
        fsync: FsyncPolicy::Off,
        snapshot_every: 2,
        keep_snapshots: 2,
    }
}

/// Run a durable session over `events`, crash without finalize, and
/// return the lineage directory.
fn run_lineage(events: &[GraphEvent]) -> PathBuf {
    let dir = tmp_dir("lineage");
    let session = EmbedderSession::new(tiny_model(), POLICY).unwrap();
    let mut durable = DurableSession::create(&dir, session, durable_cfg()).unwrap();
    for (i, e) in events.iter().enumerate() {
        if durable.apply(i as u64 + 1, *e).unwrap() {
            durable.maybe_snapshot().unwrap();
        }
    }
    // Everything is on disk (fsync off still writes through the file
    // API; "crash" here means no finalize/final snapshot).
    drop(durable);
    dir
}

/// Committed state of an uninterrupted session over the first `n`
/// events of `events`.
fn reference_after(events: &[GraphEvent], n: usize) -> (usize, Embedding) {
    let mut s = EmbedderSession::new(tiny_model(), POLICY).unwrap();
    for e in &events[..n] {
        s.apply(*e);
    }
    (s.steps(), s.embedding().clone())
}

fn assert_rows_bit_equal(a: &Embedding, b: &Embedding) {
    assert_eq!(a.len(), b.len(), "embedding sizes diverged");
    for ((ida, va), (idb, vb)) in a.iter().zip(b.iter()) {
        assert_eq!(ida, idb, "row order diverged");
        assert_eq!(va, vb, "row {ida} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncate the newest WAL segment at a random offset: recovery
    /// never panics and is bit-exact with the uninterrupted run over
    /// the surviving event prefix.
    #[test]
    fn wal_truncation_recovers_longest_valid_prefix(
        n_events in 8u32..40,
        frac in 0.0f64..1.0,
    ) {
        let events = stream(n_events);
        let dir = run_lineage(&events);
        let (_, newest) = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&newest).unwrap().len();
        let cut = (len as f64 * frac) as u64;
        OpenOptions::new().write(true).open(&newest).unwrap().set_len(cut).unwrap();

        let (recovered, report) =
            DurableSession::recover(&dir, durable_cfg(), POLICY, false, tiny_model).unwrap();
        // The recovered prefix is everything up to the cut.
        let n = recovered.last_seq() as usize;
        prop_assert!(n <= n_events as usize);
        prop_assert!(n as u64 >= report.snapshot_seq.unwrap_or(0));
        let (ref_steps, ref_emb) = reference_after(&events, n);
        prop_assert_eq!(recovered.session().steps(), ref_steps);
        assert_rows_bit_equal(recovered.session().embedding(), &ref_emb);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Flip one byte anywhere in the newest WAL segment: recovery never
    /// panics, and the recovered state matches the uninterrupted run
    /// over whatever event prefix survived.
    #[test]
    fn wal_byte_flip_never_panics(
        n_events in 8u32..40,
        pos_frac in 0.0f64..1.0,
        mask in 1u32..256,
    ) {
        let events = stream(n_events);
        let dir = run_lineage(&events);
        let (_, newest) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        if !bytes.is_empty() {
            let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
            bytes[pos] ^= mask as u8;
            fs::write(&newest, &bytes).unwrap();
        }

        let (recovered, _) =
            DurableSession::recover(&dir, durable_cfg(), POLICY, false, tiny_model).unwrap();
        let n = recovered.last_seq() as usize;
        prop_assert!(n <= n_events as usize);
        let (ref_steps, ref_emb) = reference_after(&events, n);
        prop_assert_eq!(recovered.session().steps(), ref_steps);
        assert_rows_bit_equal(recovered.session().embedding(), &ref_emb);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Corrupt the newest snapshot (flip or truncate): recovery falls
    /// back to an older snapshot (or a full WAL replay) and still ends
    /// bit-exact with the uninterrupted run over the full WAL.
    #[test]
    fn snapshot_corruption_falls_back(
        n_events in 12u32..40,
        pos_frac in 0.0f64..1.0,
        truncate in 0u32..2,
    ) {
        let truncate = truncate == 1;
        let events = stream(n_events);
        let dir = run_lineage(&events);
        let snapshots = list_snapshots(&dir).unwrap();
        prop_assert!(!snapshots.is_empty());
        let (newest_seq, newest) = snapshots.last().unwrap().clone();
        let bytes = fs::read(&newest).unwrap();
        if truncate {
            let cut = ((bytes.len() as f64) * pos_frac) as usize;
            fs::write(&newest, &bytes[..cut.min(bytes.len().saturating_sub(1))]).unwrap();
        } else {
            let mut bytes = bytes;
            let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
            bytes[pos] ^= 0x5A;
            fs::write(&newest, &bytes).unwrap();
        }

        let (recovered, report) =
            DurableSession::recover(&dir, durable_cfg(), POLICY, false, tiny_model).unwrap();
        // The corrupt newest snapshot must not be the resume point.
        prop_assert!(report.snapshot_seq.unwrap_or(0) < newest_seq);
        // The WAL is intact, so recovery still reaches the full stream
        // ... as far as surviving segments carry it. Pruning removed
        // segments covered by the *older* snapshot only, so everything
        // past the fallback point is still replayable.
        let n = recovered.last_seq() as usize;
        prop_assert_eq!(n, n_events as usize, "wal intact => full prefix");
        let (ref_steps, ref_emb) = reference_after(&events, n);
        prop_assert_eq!(recovered.session().steps(), ref_steps);
        assert_rows_bit_equal(recovered.session().embedding(), &ref_emb);
        let _ = fs::remove_dir_all(&dir);
    }
}
