//! Epoch snapshot containers.
//!
//! A snapshot file `snapshot-<seq>.glo` freezes committed state as of
//! WAL sequence number `seq`:
//!
//! ```text
//! magic "GDSS" | u32 version | u64 seq | u64 epoch | u32 payload_kind
//!             | u64 payload_len | payload | u32 crc32(all prior bytes)
//! ```
//!
//! `payload_kind` selects the decoder: [`PAYLOAD_SESSION`] for a
//! serialised `SessionCheckpoint` + embedding, [`PAYLOAD_ROUTER`] for a
//! sharded router's node→shard map (the codec for which lives in the
//! shard crate — this crate only stores the bytes).
//!
//! Writes are atomic: the container is written to a temp file, fsynced,
//! then renamed into place, and the directory is fsynced. A crash
//! mid-snapshot leaves either the previous set of snapshots or the new
//! one — never a half-written visible file. Loads verify magic,
//! version, CRC, and exact length; corruption yields `InvalidData`, and
//! [`load_newest_valid`] falls back to older snapshots.

use crate::crc::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot container.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"GDSS";
/// Snapshot container format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Payload: a session checkpoint (graph + embedder state + embedding).
pub const PAYLOAD_SESSION: u32 = 1;
/// Payload: a shard router's state (codec owned by the shard crate).
pub const PAYLOAD_ROUTER: u32 = 2;

const HEADER_BYTES: usize = 36; // magic + version + seq + epoch + kind + len

/// A decoded, integrity-checked snapshot container.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    /// WAL sequence number this snapshot covers (replay resumes after).
    pub seq: u64,
    /// Committed epoch at snapshot time.
    pub epoch: u64,
    /// Payload discriminator ([`PAYLOAD_SESSION`] / [`PAYLOAD_ROUTER`]).
    pub kind: u32,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
    /// The file this snapshot was loaded from.
    pub path: PathBuf,
}

fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq:020}.glo")
}

/// All `snapshot-*.glo` files in `dir`, sorted ascending by sequence.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".glo"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Atomically write a snapshot container; returns its final path.
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    epoch: u64,
    kind: u32,
    payload: &[u8],
) -> io::Result<PathBuf> {
    glodyne_chaos::fail_io(glodyne_chaos::sites::SNAPSHOT_WRITE)?;
    fs::create_dir_all(dir)?;
    let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len() + 4);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&kind.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let final_path = dir.join(snapshot_name(seq));
    let tmp_path = dir.join(format!(".{}.tmp", snapshot_name(seq)));
    {
        let mut tmp = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp_path)?;
        tmp.write_all(&bytes)?;
        tmp.sync_data()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // Make the rename itself durable.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Load and verify one snapshot container. Any truncation, bit flip,
/// or shape violation yields `InvalidData` — never a panic.
pub fn load_snapshot(path: &Path) -> io::Result<SnapshotFile> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_BYTES + 4 {
        return Err(bad("snapshot truncated"));
    }
    if &bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(bad("bad snapshot magic"));
    }
    if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != SNAPSHOT_VERSION {
        return Err(bad("unsupported snapshot version"));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let epoch = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let kind = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[28..36].try_into().unwrap());
    let expect = (HEADER_BYTES as u64)
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(4))
        .ok_or_else(|| bad("snapshot length overflow"))?;
    if bytes.len() as u64 != expect {
        return Err(bad("snapshot length mismatch"));
    }
    let body_end = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if crc32(&bytes[..body_end]) != stored_crc {
        return Err(bad("snapshot checksum mismatch"));
    }
    Ok(SnapshotFile {
        seq,
        epoch,
        kind,
        payload: bytes[HEADER_BYTES..body_end].to_vec(),
        path: path.to_path_buf(),
    })
}

/// The newest loadable snapshot of the given payload kind, falling
/// back to older files when the newest is corrupt. `Ok(None)` when no
/// valid snapshot exists at all.
pub fn load_newest_valid(dir: &Path, kind: u32) -> io::Result<Option<SnapshotFile>> {
    for (_, path) in list_snapshots(dir)?.into_iter().rev() {
        match load_snapshot(&path) {
            Ok(snap) if snap.kind == kind => return Ok(Some(snap)),
            Ok(_) | Err(_) => continue,
        }
    }
    Ok(None)
}

/// Delete all but the newest `keep` snapshot files.
pub fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<()> {
    let snapshots = list_snapshots(dir)?;
    let excess = snapshots.len().saturating_sub(keep.max(1));
    for (_, path) in snapshots.into_iter().take(excess) {
        fs::remove_file(path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "glodyne-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmp_dir("round-trip");
        let payload = vec![7u8; 100];
        let path = write_snapshot(&dir, 42, 3, PAYLOAD_SESSION, &payload).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.seq, 42);
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.kind, PAYLOAD_SESSION);
        assert_eq!(snap.payload, payload);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_valid_falls_back_past_corruption() {
        let dir = tmp_dir("fallback");
        write_snapshot(&dir, 10, 1, PAYLOAD_SESSION, b"old").unwrap();
        let newest = write_snapshot(&dir, 20, 2, PAYLOAD_SESSION, b"new").unwrap();
        // Flip a payload byte in the newest.
        let mut bytes = fs::read(&newest).unwrap();
        let hit = bytes.len() - 6;
        bytes[hit] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let snap = load_newest_valid(&dir, PAYLOAD_SESSION).unwrap().unwrap();
        assert_eq!(snap.seq, 10);
        assert_eq!(snap.payload, b"old");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_at_every_offset_never_panics() {
        let dir = tmp_dir("corrupt");
        let path = write_snapshot(&dir, 5, 1, PAYLOAD_ROUTER, &[1, 2, 3, 4, 5]).unwrap();
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0xA5;
            fs::write(&path, &bytes).unwrap();
            assert!(load_snapshot(&path).is_err(), "flip at byte {i} undetected");
        }
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                load_snapshot(&path).is_err(),
                "truncation at {cut} undetected"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        for seq in [1u64, 2, 3, 4] {
            write_snapshot(&dir, seq, seq, PAYLOAD_SESSION, b"x").unwrap();
        }
        prune_snapshots(&dir, 2).unwrap();
        let left: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(left, vec![3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kind_mismatch_is_skipped() {
        let dir = tmp_dir("kind");
        write_snapshot(&dir, 1, 1, PAYLOAD_ROUTER, b"router").unwrap();
        assert!(load_newest_valid(&dir, PAYLOAD_SESSION).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
