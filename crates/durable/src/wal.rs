//! The segmented write-ahead log of ingested [`GraphEvent`]s.
//!
//! Layout: a data directory holds `wal-<base-seq>.seg` files. Each
//! segment starts with a 16-byte header (magic `GDWL`, format version,
//! the sequence number of its first frame) followed by length-prefixed
//! frames:
//!
//! ```text
//! u32 body_len | body | u32 crc32(body)
//! body = u64 seq | u8 kind | u64 time | event operands
//! ```
//!
//! Frames carry graph events (kinds 1–3) or a *flush marker* (kind 4):
//! the record of an explicit epoch flush. Markers make recovery replay
//! the exact apply/flush sequence the live session executed — without
//! them, epochs committed by explicit flushes (rather than by policy)
//! would not recur on replay and the recovered embedding would drift
//! from the pre-crash state.
//!
//! The writer appends on the trainer thread, rotating to a new segment
//! once the current one crosses the size threshold, and fsyncs
//! according to a [`FsyncPolicy`]. The reader replays a whole directory
//! and honours the same corruption contract the persist layer pins: an
//! arbitrarily truncated or corrupted tail yields the longest valid
//! prefix of events — never a panic. [`replay_and_heal`] additionally
//! truncates the torn tail so the lineage can continue appending.

use crate::crc::crc32;
use crate::timing::{timed, DurableTiming};
use glodyne_graph::state::{GraphEvent, GraphEventKind};
use glodyne_graph::NodeId;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Magic bytes opening every WAL segment.
pub const SEGMENT_MAGIC: &[u8; 4] = b"GDWL";
/// WAL segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Bytes of a segment header: magic, version, base sequence number.
const HEADER_BYTES: usize = 16;
/// Upper bound on a frame body — far above any real event frame;
/// protects the reader from allocating garbage lengths.
const MAX_BODY_BYTES: u32 = 1 << 16;

/// When the WAL writer calls `fsync`.
///
/// Trade-off: `EveryNEvents(1)` bounds loss to zero events at ~one
/// disk flush per ingested event; `EveryFlush` bounds loss to the
/// current epoch's uncommitted tail; `Off` leaves flushing to the OS
/// (crash loss up to the page-cache horizon). Rotation, snapshots, and
/// shutdown always sync regardless of policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every `n` appended events.
    EveryNEvents(u64),
    /// Sync only at epoch flushes (and rotations/snapshots/shutdown).
    EveryFlush,
    /// Never sync explicitly.
    Off,
}

impl FsyncPolicy {
    /// Parse the CLI spelling: `off`, `flush`, or `every:<n>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(FsyncPolicy::Off),
            "flush" | "every-flush" => Ok(FsyncPolicy::EveryFlush),
            _ => {
                let n = s
                    .strip_prefix("every:")
                    .and_then(|n| n.parse::<u64>().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!("invalid fsync policy '{s}' (expected off, flush, or every:<n>)")
                    })?;
                Ok(FsyncPolicy::EveryNEvents(n))
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::EveryNEvents(n) => write!(f, "every:{n}"),
            FsyncPolicy::EveryFlush => write!(f, "flush"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// One decoded WAL frame: an ingested event or a flush boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord {
    /// A graph event ingested at this sequence number.
    Event(GraphEvent),
    /// An explicit epoch flush (carries the sequence number of the
    /// last event it committed).
    Flush,
}

fn finish_frame(body: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(8 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame
}

/// Serialise one event frame (length prefix + body + CRC).
pub fn encode_frame(seq: u64, event: &GraphEvent) -> Vec<u8> {
    let mut body = Vec::with_capacity(25);
    body.extend_from_slice(&seq.to_le_bytes());
    match event.kind {
        GraphEventKind::AddEdge(e) => {
            body.push(1);
            body.extend_from_slice(&event.time.to_le_bytes());
            body.extend_from_slice(&e.u.0.to_le_bytes());
            body.extend_from_slice(&e.v.0.to_le_bytes());
        }
        GraphEventKind::RemoveEdge(e) => {
            body.push(2);
            body.extend_from_slice(&event.time.to_le_bytes());
            body.extend_from_slice(&e.u.0.to_le_bytes());
            body.extend_from_slice(&e.v.0.to_le_bytes());
        }
        GraphEventKind::RemoveNode(n) => {
            body.push(3);
            body.extend_from_slice(&event.time.to_le_bytes());
            body.extend_from_slice(&n.0.to_le_bytes());
        }
    }
    finish_frame(body)
}

/// Serialise one flush-marker frame.
pub fn encode_flush_frame(seq: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(17);
    body.extend_from_slice(&seq.to_le_bytes());
    body.push(4);
    body.extend_from_slice(&0u64.to_le_bytes());
    finish_frame(body)
}

/// Parse one frame body back into `(seq, record)`; `None` on any shape
/// violation (unknown kind, wrong operand length).
fn decode_body(body: &[u8]) -> Option<(u64, WalRecord)> {
    if body.len() < 17 {
        return None;
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().ok()?);
    let kind = body[8];
    let time = u64::from_le_bytes(body[9..17].try_into().ok()?);
    let rest = &body[17..];
    let record = match kind {
        1 | 2 if rest.len() == 8 => {
            let a = NodeId(u32::from_le_bytes(rest[0..4].try_into().ok()?));
            let b = NodeId(u32::from_le_bytes(rest[4..8].try_into().ok()?));
            WalRecord::Event(if kind == 1 {
                GraphEvent::add_edge(a, b, time)
            } else {
                GraphEvent::remove_edge(a, b, time)
            })
        }
        3 if rest.len() == 4 => {
            let n = NodeId(u32::from_le_bytes(rest[0..4].try_into().ok()?));
            WalRecord::Event(GraphEvent::remove_node(n, time))
        }
        4 if rest.is_empty() => WalRecord::Flush,
        _ => return None,
    };
    Some((seq, record))
}

fn segment_name(base_seq: u64) -> String {
    format!("wal-{base_seq:020}.seg")
}

/// All `wal-*.seg` files in `dir`, sorted by base sequence number.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(err) => return Err(err),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(base) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((base, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(base, _)| base);
    Ok(out)
}

/// Writer-side statistics, surfaced through the serving `stats` op.
#[derive(Debug, Clone, Copy)]
pub struct WalStats {
    /// Live segment files (including the one being appended to).
    pub segments: u64,
    /// Total bytes across live segments.
    pub bytes: u64,
    /// When the last explicit fsync completed, if any.
    pub last_fsync: Option<Instant>,
}

/// Appends events to the current tail segment of a WAL directory.
pub struct WalWriter {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    file: File,
    current_len: u64,
    /// Bytes across all live segments including the current one.
    total_bytes: u64,
    segments: u64,
    since_sync: u64,
    last_fsync: Option<Instant>,
    timing: Option<Arc<DurableTiming>>,
}

impl WalWriter {
    /// Open a fresh tail segment whose first frame will carry
    /// `next_seq`. Existing segments in `dir` are left in place and
    /// counted into the stats; appends never touch them (recovery
    /// heals torn tails *before* reopening a writer).
    pub fn open(
        dir: &Path,
        next_seq: u64,
        segment_bytes: u64,
        fsync: FsyncPolicy,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let existing = list_segments(dir)?;
        let mut total_bytes = 0u64;
        for (_, path) in &existing {
            total_bytes += fs::metadata(path)?.len();
        }
        let path = dir.join(segment_name(next_seq));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&next_seq.to_le_bytes());
        file.write_all(&header)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            fsync,
            segment_bytes: segment_bytes.max(HEADER_BYTES as u64 + 1),
            file,
            current_len: HEADER_BYTES as u64,
            total_bytes: total_bytes + HEADER_BYTES as u64,
            segments: existing.len() as u64 + 1,
            since_sync: 0,
            last_fsync: None,
            timing: None,
        })
    }

    /// Attach I/O timing sinks: from now on every append and fsync
    /// records its wall time.
    pub fn set_timing(&mut self, timing: Arc<DurableTiming>) {
        self.timing = Some(timing);
    }

    /// Append one event frame; rotates to a new segment first when the
    /// current one has crossed the size threshold. Returns whether this
    /// append performed an fsync.
    pub fn append(&mut self, seq: u64, event: &GraphEvent) -> io::Result<bool> {
        self.append_frame(seq, encode_frame(seq, event))?;
        let mut synced = false;
        if let FsyncPolicy::EveryNEvents(n) = self.fsync {
            self.since_sync += 1;
            if self.since_sync >= n {
                self.sync()?;
                synced = true;
            }
        }
        Ok(synced)
    }

    /// Append one flush-marker frame, recording that the session
    /// committed an epoch at this point in the log. Markers do not
    /// count toward the `EveryNEvents` fsync budget (the flush path
    /// syncs explicitly when its policy says so).
    pub fn append_flush(&mut self, seq: u64) -> io::Result<()> {
        self.append_frame(seq, encode_flush_frame(seq))
    }

    fn append_frame(&mut self, seq: u64, frame: Vec<u8>) -> io::Result<()> {
        glodyne_chaos::fail_io(glodyne_chaos::sites::WAL_APPEND)?;
        if self.current_len >= self.segment_bytes {
            self.rotate(seq)?;
        }
        let timing = self.timing.clone();
        timed(&timing, |t| &t.wal_append, || self.file.write_all(&frame))?;
        self.current_len += frame.len() as u64;
        self.total_bytes += frame.len() as u64;
        Ok(())
    }

    /// Seal the current segment (fsync it) and start a new one whose
    /// first frame will carry `next_seq`.
    fn rotate(&mut self, next_seq: u64) -> io::Result<()> {
        self.sync()?;
        let path = self.dir.join(segment_name(next_seq));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
        header.extend_from_slice(&next_seq.to_le_bytes());
        file.write_all(&header)?;
        self.file = file;
        self.current_len = HEADER_BYTES as u64;
        self.total_bytes += HEADER_BYTES as u64;
        self.segments += 1;
        Ok(())
    }

    /// Force an fsync of the current segment now (epoch flushes,
    /// snapshots, shutdown — regardless of policy, except that `Off`
    /// honours explicit calls too: they are barriers, not policy).
    pub fn sync(&mut self) -> io::Result<()> {
        glodyne_chaos::fail_io(glodyne_chaos::sites::WAL_FSYNC)?;
        timed(&self.timing, |t| &t.wal_fsync, || self.file.sync_data())?;
        self.since_sync = 0;
        self.last_fsync = Some(Instant::now());
        Ok(())
    }

    /// Delete segments wholly covered by a snapshot at `upto_seq`: a
    /// segment is covered when the *next* segment's base shows every
    /// frame in it has `seq <= upto_seq`. The tail segment is never
    /// deleted.
    pub fn prune_covered(&mut self, upto_seq: u64) -> io::Result<()> {
        let segments = list_segments(&self.dir)?;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_base, _) = window[1];
            if next_base <= upto_seq.saturating_add(1) {
                let len = fs::metadata(path)?.len();
                fs::remove_file(path)?;
                self.total_bytes = self.total_bytes.saturating_sub(len);
                self.segments = self.segments.saturating_sub(1);
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Current writer statistics.
    pub fn stats(&self) -> WalStats {
        WalStats {
            segments: self.segments,
            bytes: self.total_bytes,
            last_fsync: self.last_fsync,
        }
    }
}

/// The result of replaying a WAL directory.
#[derive(Debug)]
pub struct ReplayedWal {
    /// `(seq, record)` frames in log order — the longest valid prefix.
    pub records: Vec<(u64, WalRecord)>,
    /// `false` when a truncated or corrupted frame cut the replay
    /// short of the physical end of the log.
    pub clean: bool,
}

/// Replay every segment of `dir` in base-seq order, stopping at the
/// first truncated or corrupted frame. Read-only and panic-free on
/// arbitrary input.
pub fn replay(dir: &Path) -> io::Result<ReplayedWal> {
    replay_inner(dir, false)
}

/// [`replay`], plus healing: the torn frame (and everything after it)
/// is physically removed — the bad segment is truncated to its valid
/// prefix and any later segments are deleted — so a writer reopened on
/// this directory appends after the longest valid prefix.
pub fn replay_and_heal(dir: &Path) -> io::Result<ReplayedWal> {
    replay_inner(dir, true)
}

fn replay_inner(dir: &Path, heal: bool) -> io::Result<ReplayedWal> {
    let segments = list_segments(dir)?;
    let mut records = Vec::new();
    for (idx, (_, path)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let (parsed, valid_end) = parse_segment(&bytes);
        records.extend(parsed);
        if valid_end == bytes.len() {
            continue;
        }
        // Torn or corrupt tail: everything past it is unreachable by
        // the longest-valid-prefix contract.
        if heal {
            if valid_end == 0 {
                fs::remove_file(path)?;
            } else {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(valid_end as u64)?;
            }
            for (_, later) in &segments[idx + 1..] {
                fs::remove_file(later)?;
            }
        }
        return Ok(ReplayedWal {
            records,
            clean: false,
        });
    }
    Ok(ReplayedWal {
        records,
        clean: true,
    })
}

/// Parse one segment's bytes: the decoded frames of the valid prefix
/// and the byte offset where that prefix ends (`bytes.len()` when the
/// whole segment is valid; `0` when even the header is bad).
fn parse_segment(bytes: &[u8]) -> (Vec<(u64, WalRecord)>, usize) {
    if bytes.len() < HEADER_BYTES
        || &bytes[0..4] != SEGMENT_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != SEGMENT_VERSION
    {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut pos = HEADER_BYTES;
    loop {
        if pos == bytes.len() {
            return (records, pos); // clean end
        }
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            return (records, pos);
        };
        let body_len = u32::from_le_bytes(len_bytes.try_into().unwrap());
        if body_len > MAX_BODY_BYTES {
            return (records, pos);
        }
        let body_end = pos + 4 + body_len as usize;
        let Some(body) = bytes.get(pos + 4..body_end) else {
            return (records, pos);
        };
        let Some(crc_bytes) = bytes.get(body_end..body_end + 4) else {
            return (records, pos);
        };
        if u32::from_le_bytes(crc_bytes.try_into().unwrap()) != crc32(body) {
            return (records, pos);
        }
        let Some(frame) = decode_body(body) else {
            return (records, pos);
        };
        records.push(frame);
        pos = body_end + 4;
    }
}

/// Delete every WAL segment in `dir` (sharded recovery regenerates a
/// shard's WAL suffix from the authoritative router log).
pub fn remove_all_segments(dir: &Path) -> io::Result<()> {
    for (_, path) in list_segments(dir)? {
        fs::remove_file(path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "glodyne-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_events(n: u64) -> Vec<GraphEvent> {
        (0..n)
            .map(|i| match i % 3 {
                0 => GraphEvent::add_edge(NodeId(i as u32), NodeId(i as u32 + 1), i),
                1 => GraphEvent::remove_edge(NodeId(i as u32), NodeId(i as u32 + 2), i),
                _ => GraphEvent::remove_node(NodeId(i as u32), i),
            })
            .collect()
    }

    /// Just the event frames of a replay, in log order.
    fn replayed_events(r: &ReplayedWal) -> Vec<(u64, GraphEvent)> {
        r.records
            .iter()
            .filter_map(|&(seq, rec)| match rec {
                WalRecord::Event(e) => Some((seq, e)),
                WalRecord::Flush => None,
            })
            .collect()
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("off").unwrap(), FsyncPolicy::Off);
        assert_eq!(
            FsyncPolicy::parse("flush").unwrap(),
            FsyncPolicy::EveryFlush
        );
        assert_eq!(
            FsyncPolicy::parse("every:8").unwrap(),
            FsyncPolicy::EveryNEvents(8)
        );
        assert!(FsyncPolicy::parse("every:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryNEvents(3).to_string(), "every:3");
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmp_dir("round-trip");
        let events = sample_events(50);
        let mut w = WalWriter::open(&dir, 1, 1 << 20, FsyncPolicy::EveryFlush).unwrap();
        for (i, e) in events.iter().enumerate() {
            w.append(i as u64 + 1, e).unwrap();
        }
        w.sync().unwrap();
        let replayed = replay(&dir).unwrap();
        assert!(replayed.clean);
        let got = replayed_events(&replayed);
        assert_eq!(got.len(), events.len());
        for (i, (seq, event)) in got.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(event, &events[i]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_markers_replay_in_log_order() {
        let dir = tmp_dir("markers");
        let events = sample_events(6);
        let mut w = WalWriter::open(&dir, 1, 1 << 20, FsyncPolicy::Off).unwrap();
        for (i, e) in events.iter().enumerate() {
            w.append(i as u64 + 1, e).unwrap();
            if (i + 1) % 3 == 0 {
                w.append_flush(i as u64 + 1).unwrap();
            }
        }
        w.sync().unwrap();
        let replayed = replay(&dir).unwrap();
        assert!(replayed.clean);
        assert_eq!(replayed.records.len(), 8);
        assert_eq!(replayed.records[3], (3, WalRecord::Flush));
        assert_eq!(replayed.records[7], (6, WalRecord::Flush));
        assert_eq!(replayed_events(&replayed).len(), events.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spreads_frames_across_segments() {
        let dir = tmp_dir("rotate");
        // Tiny threshold: every frame lands in its own segment.
        let mut w = WalWriter::open(&dir, 1, 32, FsyncPolicy::Off).unwrap();
        for (i, e) in sample_events(10).iter().enumerate() {
            w.append(i as u64 + 1, e).unwrap();
        }
        assert!(w.stats().segments > 3, "threshold 32B must force rotation");
        assert_eq!(
            list_segments(&dir).unwrap().len() as u64,
            w.stats().segments
        );
        let replayed = replay(&dir).unwrap();
        assert!(replayed.clean);
        assert_eq!(replayed.records.len(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_covered_deletes_only_fully_covered_segments() {
        let dir = tmp_dir("prune");
        let mut w = WalWriter::open(&dir, 1, 32, FsyncPolicy::Off).unwrap();
        for (i, e) in sample_events(10).iter().enumerate() {
            w.append(i as u64 + 1, e).unwrap();
        }
        w.sync().unwrap();
        let before = list_segments(&dir).unwrap().len();
        w.prune_covered(5).unwrap();
        let after = list_segments(&dir).unwrap();
        assert!(after.len() < before);
        // Every surviving frame beyond the snapshot point is intact.
        let replayed = replay(&dir).unwrap();
        assert!(replayed.records.iter().any(|&(seq, _)| seq == 6));
        assert!(replayed.records.iter().all(|&(seq, _)| seq <= 10));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_yields_longest_valid_prefix() {
        let dir = tmp_dir("truncate");
        let events = sample_events(20);
        let mut w = WalWriter::open(&dir, 1, 1 << 20, FsyncPolicy::Off).unwrap();
        for (i, e) in events.iter().enumerate() {
            w.append(i as u64 + 1, e).unwrap();
        }
        w.sync().unwrap();
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::metadata(&path).unwrap().len();
        // Cut mid-frame at every byte offset: replay must never panic
        // and always return a prefix.
        for cut in (HEADER_BYTES as u64..full).step_by(7) {
            OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(cut)
                .unwrap();
            let replayed = replay(&dir).unwrap();
            let got = replayed_events(&replayed);
            assert!(got.len() <= events.len());
            for (i, (seq, event)) in got.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1);
                assert_eq!(event, &events[i]);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heal_truncates_and_new_writer_continues() {
        let dir = tmp_dir("heal");
        let events = sample_events(12);
        let mut w = WalWriter::open(&dir, 1, 1 << 20, FsyncPolicy::Off).unwrap();
        for (i, e) in events.iter().enumerate() {
            w.append(i as u64 + 1, e).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Corrupt a byte two frames from the end.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let hit = bytes.len() - 40;
        bytes[hit] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let healed = replay_and_heal(&dir).unwrap();
        assert!(!healed.clean);
        let kept = healed.records.len();
        assert!(kept < events.len());
        // A fresh writer continues after the healed prefix; replay sees
        // the old prefix plus the new frames.
        let next = kept as u64 + 1;
        let mut w = WalWriter::open(&dir, next, 1 << 20, FsyncPolicy::Off).unwrap();
        w.append(next, &GraphEvent::add_edge(NodeId(100), NodeId(101), 99))
            .unwrap();
        w.sync().unwrap();
        let replayed = replay(&dir).unwrap();
        assert!(replayed.clean);
        assert_eq!(replayed.records.len(), kept + 1);
        assert_eq!(replayed.records.last().unwrap().0, next);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_segment_is_ignored_without_panic() {
        let dir = tmp_dir("garbage");
        fs::write(dir.join("wal-00000000000000000001.seg"), b"not a wal").unwrap();
        let replayed = replay(&dir).unwrap();
        assert!(replayed.records.is_empty());
        assert!(!replayed.clean);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_replays_empty() {
        let dir = std::env::temp_dir().join("glodyne-wal-definitely-missing");
        let _ = fs::remove_dir_all(&dir);
        let replayed = replay(&dir).unwrap();
        assert!(replayed.records.is_empty());
        assert!(replayed.clean);
    }
}
