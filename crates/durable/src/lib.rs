//! glodyne-durable: segmented event WAL + epoch snapshots —
//! crash-recoverable state for GloDyNE serving sessions.
//!
//! Three layers:
//!
//! - [`wal`] — an append-only log of ingested graph events in
//!   length-prefixed, CRC-checked frames across size-rotated segment
//!   files. Replay tolerates an arbitrarily truncated or corrupted
//!   tail: the longest valid prefix, never a panic.
//! - [`snapshot`] — atomic (`temp + rename`) containers freezing a
//!   committed epoch: the session checkpoint plus its embedding via the
//!   persist layer's binary format, or a shard router's state.
//! - [`session`] — [`DurableSession`], the write-ahead wrapper around
//!   [`glodyne::EmbedderSession`]: log, apply, periodically snapshot,
//!   prune; recover by resuming the newest valid snapshot (falling back
//!   on corruption) and replaying the WAL suffix through the normal
//!   ingest path.
//!
//! The contract pinned across all three: recovery is **bit-exact** —
//! with deterministic training, a recovered session's committed state
//! equals the uninterrupted run's over the same durable event prefix.

pub mod crc;
pub mod session;
pub mod snapshot;
pub mod timing;
pub mod wal;

pub use crc::crc32;
pub use session::{
    decode_session_payload, encode_session_payload, DurabilityCounters, DurableConfig,
    DurableSession, RecoveryReport,
};
pub use snapshot::{
    list_snapshots, load_newest_valid, load_snapshot, prune_snapshots, write_snapshot,
    SnapshotFile, PAYLOAD_ROUTER, PAYLOAD_SESSION,
};
pub use timing::DurableTiming;
pub use wal::{
    encode_flush_frame, encode_frame, list_segments, remove_all_segments, replay, replay_and_heal,
    FsyncPolicy, ReplayedWal, WalRecord, WalStats, WalWriter,
};
