//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the per-record
//! integrity check of WAL frames and snapshot containers.
//!
//! Implemented from scratch like every other numeric substrate in this
//! workspace: a 256-entry table built at compile time, one lookup per
//! byte. Detection strength (all single-bit errors, all burst errors up
//! to 32 bits) is exactly what torn-write and bit-rot detection needs;
//! this is an integrity check, not an authenticity one.

/// Byte-wise CRC-32 lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The standard CRC-32/IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
