//! [`DurableSession`]: an [`EmbedderSession`] whose ingested events are
//! WAL-logged before application and whose committed epochs are
//! periodically frozen into snapshots — the crash-recoverable serving
//! state of this crate.
//!
//! The pinned property is **bit-exactness**: recover a lineage after a
//! crash (or clean shutdown), and the session's committed state —
//! embedding rows, epoch count, graph — equals what an uninterrupted
//! session fed the same durable event prefix would hold. Events are
//! replayed through the *normal* [`EmbedderSession::apply`] path with
//! deterministic training, so recovery is not a special interpreter
//! that can drift from the live one.

use crate::snapshot::{
    list_snapshots, load_snapshot, prune_snapshots, write_snapshot, PAYLOAD_SESSION,
};
use crate::timing::{timed, DurableTiming};
use crate::wal::{replay_and_heal, FsyncPolicy, WalRecord, WalStats, WalWriter};
use bytes::Bytes;
use glodyne::{EmbedderSession, EpochPolicy, SessionCheckpoint};
use glodyne_embed::persist;
use glodyne_embed::traits::{CheckpointEmbedder, StepReport};
use glodyne_embed::Embedding;
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Durability knobs for one lineage (one data directory).
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Rotate WAL segments once they cross this many bytes.
    pub segment_bytes: u64,
    /// When appends fsync; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Snapshot after every `n` committed epochs (`0` = only on
    /// explicit [`DurableSession::snapshot`] / shutdown).
    pub snapshot_every: u64,
    /// Snapshot files retained after pruning (older ones are the
    /// corruption fallback, so keep at least 2).
    pub keep_snapshots: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::EveryFlush,
            snapshot_every: 4,
            keep_snapshots: 2,
        }
    }
}

/// What [`DurableSession::recover`] found on disk.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Sequence number of the snapshot resumed from, if any.
    pub snapshot_seq: Option<u64>,
    /// Committed epoch of that snapshot.
    pub snapshot_epoch: Option<u64>,
    /// WAL events replayed on top of the snapshot.
    pub replayed_events: u64,
    /// `false` when the WAL had a torn/corrupt tail (now healed).
    pub wal_clean: bool,
    /// Human-readable provenance for the serving `stats` op.
    pub recovered_from: String,
}

/// Live durability counters, surfaced through the serving `stats` op.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityCounters {
    /// Live WAL segment files.
    pub wal_segments: u64,
    /// Bytes across live WAL segments.
    pub wal_bytes: u64,
    /// Committed epoch of the newest snapshot, if any.
    pub last_snapshot_epoch: Option<u64>,
    /// When the last fsync completed, if any.
    pub last_fsync: Option<std::time::Instant>,
    /// Highest WAL sequence number appended or recovered.
    pub last_seq: u64,
}

/// Serialise a checkpoint + its embedding into a snapshot payload.
///
/// Layout: `u64 epoch | u8 has_time | u64 time | u8 lcc_only |
/// u64 n_edges | n × (u32, u32) | u64 state_len | embedder state |
/// embedding (persist binary format, to end)`.
pub fn encode_session_payload(ckpt: &SessionCheckpoint, embedding: &Embedding) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + ckpt.edges.len() * 8 + ckpt.embedder_state.len());
    out.extend_from_slice(&ckpt.epoch.to_le_bytes());
    out.push(ckpt.current_time.is_some() as u8);
    out.extend_from_slice(&ckpt.current_time.unwrap_or(0).to_le_bytes());
    out.push(ckpt.lcc_only as u8);
    out.extend_from_slice(&(ckpt.edges.len() as u64).to_le_bytes());
    for &(a, b) in &ckpt.edges {
        out.extend_from_slice(&a.0.to_le_bytes());
        out.extend_from_slice(&b.0.to_le_bytes());
    }
    out.extend_from_slice(&(ckpt.embedder_state.len() as u64).to_le_bytes());
    out.extend_from_slice(&ckpt.embedder_state);
    out.extend_from_slice(persist::to_bytes(embedding).as_ref());
    out
}

struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "session payload truncated")
            })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Inverse of [`encode_session_payload`]. Corruption yields
/// `InvalidData` — never a panic (the container CRC makes this path
/// unreachable for disk bit-rot, but recovery still refuses to trust
/// lengths).
pub fn decode_session_payload(bytes: &[u8]) -> io::Result<(SessionCheckpoint, Embedding)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut r = PayloadReader { bytes, pos: 0 };
    let epoch = r.u64()?;
    let has_time = r.u8()?;
    let time = r.u64()?;
    let current_time = match has_time {
        0 => None,
        1 => Some(time),
        _ => return Err(bad("bad time flag")),
    };
    let lcc_only = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(bad("bad lcc flag")),
    };
    let n_edges = r.u64()?;
    if n_edges > (bytes.len() as u64) / 8 {
        return Err(bad("edge count exceeds payload"));
    }
    let mut edges = Vec::with_capacity(n_edges as usize);
    for _ in 0..n_edges {
        let a = NodeId(r.u32()?);
        let b = NodeId(r.u32()?);
        edges.push((a, b));
    }
    let state_len = r.u64()?;
    if state_len > bytes.len() as u64 {
        return Err(bad("embedder state exceeds payload"));
    }
    let embedder_state = r.take(state_len as usize)?.to_vec();
    let embedding = persist::from_bytes(Bytes::from(bytes[r.pos..].to_vec()))?;
    Ok((
        SessionCheckpoint {
            epoch,
            current_time,
            lcc_only,
            edges,
            embedder_state,
        },
        embedding,
    ))
}

/// An embedder session with a WAL + snapshot lineage under it.
pub struct DurableSession<E: CheckpointEmbedder> {
    session: EmbedderSession<E>,
    wal: WalWriter,
    dir: PathBuf,
    cfg: DurableConfig,
    last_seq: u64,
    last_snapshot_seq: Option<u64>,
    last_snapshot_epoch: Option<u64>,
    timing: Option<Arc<DurableTiming>>,
}

impl<E: CheckpointEmbedder> DurableSession<E> {
    /// Start a fresh lineage in `dir` around an existing session. The
    /// session must be at a committed boundary (no pending events) —
    /// its current state is immediately frozen into the lineage's first
    /// snapshot, so warm-started state survives a crash that happens
    /// before the first periodic snapshot.
    pub fn create(dir: &Path, session: EmbedderSession<E>, cfg: DurableConfig) -> io::Result<Self> {
        if session.pending_events() != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "durable lineage must start at a committed boundary (flush first)",
            ));
        }
        let wal = WalWriter::open(dir, 1, cfg.segment_bytes, cfg.fsync)?;
        let mut durable = DurableSession {
            session,
            wal,
            dir: dir.to_path_buf(),
            cfg,
            last_seq: 0,
            last_snapshot_seq: None,
            last_snapshot_epoch: None,
            timing: None,
        };
        durable.snapshot()?;
        Ok(durable)
    }

    /// Wrap an already-restored session without writing an initial
    /// snapshot: the sharded recovery path resumes each shard from a
    /// barrier snapshot it has *already* loaded, then replays the
    /// authoritative router log through [`DurableSession::apply`] —
    /// which needs the WAL open at `last_seq + 1` first.
    /// `last_snapshot` is the `(seq, epoch)` of the snapshot the
    /// session was restored from, if any, so periodic snapshot gating
    /// and the duplicate-snapshot guard carry across the restart.
    pub fn attach(
        dir: &Path,
        session: EmbedderSession<E>,
        cfg: DurableConfig,
        last_seq: u64,
        last_snapshot: Option<(u64, u64)>,
    ) -> io::Result<Self> {
        let wal = WalWriter::open(dir, last_seq + 1, cfg.segment_bytes, cfg.fsync)?;
        Ok(DurableSession {
            session,
            wal,
            dir: dir.to_path_buf(),
            cfg,
            last_seq,
            last_snapshot_seq: last_snapshot.map(|(seq, _)| seq),
            last_snapshot_epoch: last_snapshot.map(|(_, epoch)| epoch),
            timing: None,
        })
    }

    /// Attach I/O timing sinks (WAL append/fsync, snapshot writes).
    pub fn set_timing(&mut self, timing: Arc<DurableTiming>) {
        self.wal.set_timing(Arc::clone(&timing));
        self.timing = Some(timing);
    }

    /// Recover a lineage from `dir`: load the newest valid session
    /// snapshot (falling back to older ones on container corruption
    /// *or* semantic resume failure), heal and replay the WAL suffix
    /// through the normal ingest path, and reopen the log for
    /// appending. With no usable snapshot the whole WAL replays into a
    /// fresh session (`keep_full` configures it, mirroring
    /// [`EmbedderSession::keep_full_graph`]).
    ///
    /// `make_embedder` must build an embedder with the *same
    /// configuration* the lineage was created with; it may be called
    /// once per snapshot candidate.
    pub fn recover(
        dir: &Path,
        cfg: DurableConfig,
        policy: EpochPolicy,
        keep_full: bool,
        make_embedder: impl Fn() -> E,
    ) -> io::Result<(Self, RecoveryReport)> {
        let mut resumed: Option<(EmbedderSession<E>, u64, u64)> = None;
        for (_, path) in list_snapshots(dir)?.into_iter().rev() {
            let Ok(snap) = load_snapshot(&path) else {
                continue;
            };
            if snap.kind != PAYLOAD_SESSION {
                continue;
            }
            let Ok((ckpt, embedding)) = decode_session_payload(&snap.payload) else {
                continue;
            };
            match EmbedderSession::resume(make_embedder(), policy, &ckpt, &embedding) {
                Ok(session) => {
                    resumed = Some((session, snap.seq, snap.epoch));
                    break;
                }
                Err(_) => continue,
            }
        }
        let (mut session, snapshot_seq, snapshot_epoch) = match resumed {
            Some((session, seq, epoch)) => (session, Some(seq), Some(epoch)),
            None => {
                let fresh = EmbedderSession::new(make_embedder(), policy)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
                let fresh = if keep_full {
                    fresh.keep_full_graph()
                } else {
                    fresh
                };
                (fresh, None, None)
            }
        };

        let replayed = replay_and_heal(dir)?;
        let floor = snapshot_seq.unwrap_or(0);
        let mut last_seq = floor;
        let mut replayed_events = 0u64;
        for (seq, record) in &replayed.records {
            if *seq <= floor {
                continue;
            }
            match record {
                WalRecord::Event(event) => {
                    session.apply(*event);
                    replayed_events += 1;
                }
                // Flush markers re-run the explicit epoch boundaries of
                // the original run, keeping replay bit-exact even when
                // epochs were committed by `flush` rather than policy.
                WalRecord::Flush => {
                    session.flush();
                }
            }
            last_seq = last_seq.max(*seq);
        }

        let wal = WalWriter::open(dir, last_seq + 1, cfg.segment_bytes, cfg.fsync)?;
        let recovered_from = match snapshot_seq {
            Some(seq) => format!(
                "snapshot seq {seq} (epoch {}) + {replayed_events} wal events",
                snapshot_epoch.unwrap_or(0)
            ),
            None => format!("wal replay only ({replayed_events} events)"),
        };
        let report = RecoveryReport {
            snapshot_seq,
            snapshot_epoch,
            replayed_events,
            wal_clean: replayed.clean,
            recovered_from,
        };
        Ok((
            DurableSession {
                session,
                wal,
                dir: dir.to_path_buf(),
                cfg,
                last_seq,
                last_snapshot_seq: snapshot_seq,
                last_snapshot_epoch: snapshot_epoch,
                timing: None,
            },
            report,
        ))
    }

    /// Log one event to the WAL, then apply it to the session — the
    /// write-ahead ordering that makes every applied event recoverable.
    /// `seq` must be non-decreasing (sharded lineages legitimately
    /// repeat a client sequence across a routed frame group). Returns
    /// whether the event triggered an embedding step.
    pub fn apply(&mut self, seq: u64, event: GraphEvent) -> io::Result<bool> {
        debug_assert!(seq >= self.last_seq, "WAL sequence went backwards");
        self.wal.append(seq, &event)?;
        self.last_seq = self.last_seq.max(seq);
        Ok(self.session.apply(event))
    }

    /// Commit the pending epoch (if any) and fsync the WAL when the
    /// policy is [`FsyncPolicy::EveryFlush`]. The flush boundary is
    /// logged as a WAL marker first, so recovery replays the same
    /// apply/flush sequence the live session executed.
    pub fn flush(&mut self) -> io::Result<Option<StepReport>> {
        self.wal.append_flush(self.last_seq)?;
        let report = self.session.flush();
        if self.cfg.fsync == FsyncPolicy::EveryFlush {
            self.wal.sync()?;
        }
        Ok(report)
    }

    /// Snapshot iff the session sits at a committed boundary and
    /// `snapshot_every` epochs have passed since the last snapshot.
    /// Under `TimestampBoundary` a boundary-crossing event leaves one
    /// pending event after its flush, so periodic snapshots defer to
    /// the next explicit flush; clean shutdown always snapshots.
    pub fn maybe_snapshot(&mut self) -> io::Result<bool> {
        if self.cfg.snapshot_every == 0 || self.session.pending_events() != 0 {
            return Ok(false);
        }
        let epoch = self.session.steps() as u64;
        let base = self.last_snapshot_epoch.unwrap_or(0);
        if epoch.saturating_sub(base) < self.cfg.snapshot_every {
            return Ok(false);
        }
        self.snapshot()?;
        Ok(true)
    }

    /// Freeze the current committed state into `snapshot-<seq>.glo`,
    /// then prune WAL segments it covers and old snapshot files.
    /// Requires a committed boundary (no pending events).
    pub fn snapshot(&mut self) -> io::Result<()> {
        let ckpt = self.session.checkpoint().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot snapshot with pending events (flush first)",
            )
        })?;
        if self.last_snapshot_seq == Some(self.last_seq)
            && self.last_snapshot_epoch == Some(ckpt.epoch)
        {
            return Ok(()); // already frozen at exactly this point
        }
        // Everything the snapshot covers must be durable in the log
        // first, so a crash between here and the rename loses nothing.
        self.wal.sync()?;
        timed(
            &self.timing,
            |t| &t.snapshot_write,
            || {
                let payload = encode_session_payload(&ckpt, self.session.embedding());
                write_snapshot(
                    &self.dir,
                    self.last_seq,
                    ckpt.epoch,
                    PAYLOAD_SESSION,
                    &payload,
                )
            },
        )?;
        prune_snapshots(&self.dir, self.cfg.keep_snapshots)?;
        // Retain WAL back to the *oldest* kept snapshot, not the one
        // just written: if the newest turns out corrupt at recovery,
        // the fallback snapshot still needs its replay suffix.
        let floor = list_snapshots(&self.dir)?
            .first()
            .map_or(self.last_seq, |&(seq, _)| seq);
        self.wal.prune_covered(floor)?;
        self.last_snapshot_seq = Some(self.last_seq);
        self.last_snapshot_epoch = Some(ckpt.epoch);
        Ok(())
    }

    /// [`DurableSession::snapshot`] stamped with an externally chosen
    /// sequence number `seq >= last_seq` — the sharded barrier
    /// checkpoint, where every lineage must freeze at the *same*
    /// client sequence even though each shard saw only its routed
    /// subset of events.
    pub fn snapshot_at(&mut self, seq: u64) -> io::Result<()> {
        debug_assert!(seq >= self.last_seq, "snapshot sequence went backwards");
        self.last_seq = self.last_seq.max(seq);
        self.snapshot()
    }

    /// Clean shutdown: flush the pending epoch, fsync the WAL, write a
    /// final snapshot. A restart from this directory replays zero
    /// events.
    pub fn finalize(&mut self) -> io::Result<()> {
        self.wal.append_flush(self.last_seq)?;
        self.session.flush();
        self.wal.sync()?;
        self.snapshot()
    }

    /// Crash-path shutdown: fsync the WAL and nothing else. A trainer
    /// that panicked mid-step cannot trust its in-memory session state
    /// enough to snapshot it, but every *accepted* event is already in
    /// the log — sealing makes that prefix durable so recovery replays
    /// it bit-exactly through the normal apply path.
    pub fn seal(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The wrapped session.
    pub fn session(&self) -> &EmbedderSession<E> {
        &self.session
    }

    /// The wrapped session, mutably (queries, flush-side effects).
    pub fn session_mut(&mut self) -> &mut EmbedderSession<E> {
        &mut self.session
    }

    /// Highest WAL sequence number appended or recovered — seed for
    /// the ingest queue's sequence counter.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The lineage's data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live durability counters for the serving `stats` op.
    pub fn counters(&self) -> DurabilityCounters {
        let WalStats {
            segments,
            bytes,
            last_fsync,
        } = self.wal.stats();
        DurabilityCounters {
            wal_segments: segments,
            wal_bytes: bytes,
            last_snapshot_epoch: self.last_snapshot_epoch,
            last_fsync,
            last_seq: self.last_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne::{GloDyNE, GloDyNEConfig};
    use glodyne_embed::walks::WalkConfig;
    use glodyne_embed::SgnsConfig;
    use std::fs;

    fn tiny_model() -> GloDyNE {
        GloDyNE::new(GloDyNEConfig {
            alpha: 0.5,
            walk: WalkConfig {
                walks_per_node: 2,
                walk_length: 8,
                seed: 3,
            },
            sgns: SgnsConfig {
                dim: 8,
                window: 2,
                negatives: 2,
                epochs: 1,
                parallel: false,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "glodyne-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn events(n: u32) -> Vec<GraphEvent> {
        (0..n)
            .map(|i| GraphEvent::add_edge(NodeId(i % 12), NodeId((i + 1) % 12), (i / 6) as u64))
            .collect()
    }

    fn assert_rows_bit_equal(a: &Embedding, b: &Embedding) {
        assert_eq!(a.len(), b.len());
        for ((ida, va), (idb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(ida, idb, "row order diverged");
            assert_eq!(va, vb, "row {ida} diverged");
        }
    }

    #[test]
    fn payload_codec_round_trips() {
        let mut s = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        for e in events(10) {
            s.apply(e);
        }
        s.flush().unwrap();
        let ckpt = s.checkpoint().unwrap();
        let payload = encode_session_payload(&ckpt, s.embedding());
        let (back, emb) = decode_session_payload(&payload).unwrap();
        assert_eq!(back, ckpt);
        assert_rows_bit_equal(&emb, s.embedding());
        // Truncations never panic and always error.
        for cut in 0..payload.len() {
            assert!(decode_session_payload(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn crash_recovery_is_bit_exact_with_uninterrupted_run() {
        let dir = tmp_dir("bit-exact");
        let policy = EpochPolicy::EveryNEvents(5);
        let stream = events(43);

        // Uninterrupted reference over the full stream.
        let mut reference = EmbedderSession::new(tiny_model(), policy).unwrap();
        for e in &stream {
            reference.apply(*e);
        }

        // Durable run: snapshot every 2 epochs, then "crash" (drop
        // without finalize — the WAL is synced per policy).
        let cfg = DurableConfig {
            segment_bytes: 256,
            fsync: FsyncPolicy::EveryNEvents(1),
            snapshot_every: 2,
            keep_snapshots: 2,
        };
        let session = EmbedderSession::new(tiny_model(), policy).unwrap();
        let mut durable = DurableSession::create(&dir, session, cfg).unwrap();
        for (i, e) in stream.iter().enumerate() {
            if durable.apply(i as u64 + 1, *e).unwrap() {
                durable.maybe_snapshot().unwrap();
            }
        }
        assert!(durable.counters().last_snapshot_epoch.is_some());
        let snapshots = list_snapshots(&dir).unwrap().len();
        assert!(snapshots >= 1 && snapshots <= cfg.keep_snapshots);
        drop(durable);

        let (recovered, report) =
            DurableSession::recover(&dir, cfg, policy, false, tiny_model).unwrap();
        assert!(report.snapshot_seq.is_some(), "periodic snapshot was used");
        assert!(report.wal_clean);
        assert_eq!(recovered.last_seq(), stream.len() as u64);
        assert_eq!(recovered.session().steps(), reference.steps());
        assert_eq!(recovered.session().current_time(), reference.current_time());
        assert_eq!(recovered.session().graph(), reference.graph());
        assert_rows_bit_equal(recovered.session().embedding(), reference.embedding());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_flush_boundaries_replay_bit_exact() {
        let dir = tmp_dir("flush-markers");
        let policy = EpochPolicy::Manual;
        let stream = events(20);
        // Reference: explicit flush every 7 events — epochs committed
        // by `flush`, not by policy, so only the WAL's flush markers
        // can make replay reproduce them.
        let mut reference = EmbedderSession::new(tiny_model(), policy).unwrap();
        for (i, e) in stream.iter().enumerate() {
            reference.apply(*e);
            if (i + 1) % 7 == 0 {
                reference.flush();
            }
        }
        assert!(reference.steps() > 0);

        let cfg = DurableConfig {
            snapshot_every: 0,
            fsync: FsyncPolicy::Off,
            ..DurableConfig::default()
        };
        let session = EmbedderSession::new(tiny_model(), policy).unwrap();
        let mut durable = DurableSession::create(&dir, session, cfg).unwrap();
        for (i, e) in stream.iter().enumerate() {
            durable.apply(i as u64 + 1, *e).unwrap();
            if (i + 1) % 7 == 0 {
                durable.flush().unwrap();
            }
        }
        drop(durable); // crash without finalize

        let (recovered, report) =
            DurableSession::recover(&dir, cfg, policy, false, tiny_model).unwrap();
        assert!(report.wal_clean);
        assert_eq!(recovered.session().steps(), reference.steps());
        assert_rows_bit_equal(recovered.session().embedding(), reference.embedding());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_shutdown_replays_nothing() {
        let dir = tmp_dir("clean");
        let policy = EpochPolicy::EveryNEvents(4);
        let cfg = DurableConfig::default();
        let session = EmbedderSession::new(tiny_model(), policy).unwrap();
        let mut durable = DurableSession::create(&dir, session, cfg).unwrap();
        for (i, e) in events(17).iter().enumerate() {
            durable.apply(i as u64 + 1, *e).unwrap();
        }
        durable.finalize().unwrap();
        let steps = durable.session().steps();
        let emb = durable.session().embedding().clone();
        drop(durable);

        let (recovered, report) =
            DurableSession::recover(&dir, cfg, policy, false, tiny_model).unwrap();
        assert_eq!(report.replayed_events, 0, "final snapshot covers the log");
        assert_eq!(recovered.session().steps(), steps);
        assert_rows_bit_equal(recovered.session().embedding(), &emb);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_to_fresh_session() {
        let dir = tmp_dir("fresh");
        let cfg = DurableConfig::default();
        let (recovered, report) =
            DurableSession::recover(&dir, cfg, EpochPolicy::Manual, true, tiny_model).unwrap();
        assert!(report.snapshot_seq.is_none());
        assert_eq!(report.replayed_events, 0);
        assert_eq!(recovered.session().steps(), 0);
        assert_eq!(recovered.last_seq(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_rejects_pending_events() {
        let dir = tmp_dir("pending");
        let mut session = EmbedderSession::new(tiny_model(), EpochPolicy::Manual).unwrap();
        session.apply(GraphEvent::add_edge(NodeId(0), NodeId(1), 0));
        let err = match DurableSession::create(&dir, session, DurableConfig::default()) {
            Err(err) => err,
            Ok(_) => panic!("pending events must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_prunes_covered_wal_segments() {
        let dir = tmp_dir("prune-wal");
        let policy = EpochPolicy::EveryNEvents(3);
        let cfg = DurableConfig {
            segment_bytes: 64,
            fsync: FsyncPolicy::Off,
            snapshot_every: 1,
            keep_snapshots: 2,
        };
        let session = EmbedderSession::new(tiny_model(), policy).unwrap();
        let mut durable = DurableSession::create(&dir, session, cfg).unwrap();
        // Every edge distinct, so every event is effective and steps
        // (hence snapshots) keep landing through the whole stream.
        for i in 0..30u32 {
            let e = GraphEvent::add_edge(NodeId(i), NodeId(i + 1), 0);
            if durable.apply(i as u64 + 1, e).unwrap() {
                durable.maybe_snapshot().unwrap();
            }
        }
        // Tiny segments + snapshot-per-epoch: pruning must keep the
        // live segment count far below the total ever created.
        assert!(durable.counters().wal_segments < 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
