//! Optional durability I/O timing: histograms attributing wall time to
//! WAL appends, fsyncs, and snapshot freezes.
//!
//! The serving layer owns the metric registry; this crate only needs
//! somewhere to record. A [`DurableTiming`] bundles the three handles
//! and travels behind an `Option<Arc<..>>` — un-instrumented sessions
//! pay one `Option` check per I/O call and nothing else.

use glodyne_telemetry::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Histogram sinks for durability I/O wall times (micros).
#[derive(Debug, Clone)]
pub struct DurableTiming {
    /// One WAL record append (buffered write, not the fsync).
    pub wal_append: Arc<Histogram>,
    /// One WAL fsync (`sync_data`), whatever triggered it.
    pub wal_fsync: Arc<Histogram>,
    /// One snapshot freeze: serialize + write + fsync + rename.
    pub snapshot_write: Arc<Histogram>,
}

/// Run `f`, recording its wall time into `timing`'s `pick`ed histogram
/// when timing is attached — the shared shape of every instrumented
/// I/O call in this crate.
pub(crate) fn timed<T>(
    timing: &Option<Arc<DurableTiming>>,
    pick: impl Fn(&DurableTiming) -> &Histogram,
    f: impl FnOnce() -> std::io::Result<T>,
) -> std::io::Result<T> {
    match timing {
        None => f(),
        Some(t) => {
            let start = Instant::now();
            let out = f();
            pick(t).record_duration(start.elapsed());
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Arc<DurableTiming> {
        Arc::new(DurableTiming {
            wal_append: Arc::new(Histogram::new()),
            wal_fsync: Arc::new(Histogram::new()),
            snapshot_write: Arc::new(Histogram::new()),
        })
    }

    #[test]
    fn timed_records_only_when_attached() {
        let none: Option<Arc<DurableTiming>> = None;
        timed(&none, |t| &t.wal_append, || Ok(())).unwrap();

        let timing = fresh();
        let some = Some(Arc::clone(&timing));
        timed(
            &some,
            |t| &t.wal_append,
            || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(timing.wal_append.count(), 1);
        assert!(timing.wal_append.sum() >= 1_000, "slept 1ms (micros)");
        assert_eq!(timing.wal_fsync.count(), 0);
    }

    #[test]
    fn timed_records_failures_too() {
        let timing = fresh();
        let some = Some(Arc::clone(&timing));
        let err = timed(
            &some,
            |t| &t.wal_fsync,
            || Err::<(), _>(std::io::Error::other("boom")),
        );
        assert!(err.is_err());
        assert_eq!(timing.wal_fsync.count(), 1, "failed I/O still took time");
    }
}
