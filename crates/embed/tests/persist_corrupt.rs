//! Corrupt-input coverage for the binary embedding format: truncation
//! at every possible point, bad magic, wrong version, and header/body
//! dimension mismatches must each return a clean `InvalidData` error —
//! never panic.

use glodyne_embed::persist::{from_bytes, read_binary, to_bytes, write_binary};
use glodyne_embed::Embedding;
use glodyne_graph::NodeId;
use proptest::prelude::*;

fn sample(nodes: u32, dim: usize) -> Embedding {
    let mut e = Embedding::new(dim);
    for i in 0..nodes {
        let v: Vec<f32> = (0..dim).map(|k| (i as f32) * 0.5 + k as f32).collect();
        e.set(NodeId(i * 3), &v);
    }
    e
}

#[test]
fn round_trip_through_io_wrappers() {
    let e = sample(5, 4);
    let mut buf = Vec::new();
    write_binary(&mut buf, &e).unwrap();
    let parsed = read_binary(&mut buf.as_slice()).unwrap();
    assert_eq!(parsed.len(), e.len());
    assert_eq!(parsed.dim(), e.dim());
    for (id, v) in e.iter() {
        assert_eq!(parsed.get(id), Some(v));
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut buf = to_bytes(&sample(3, 2)).to_vec();
    buf[0] = b'X';
    let err = read_binary(&mut buf.as_slice()).unwrap_err();
    assert!(err.to_string().contains("magic"), "{err}");
}

#[test]
fn wrong_version_is_rejected() {
    let mut buf = to_bytes(&sample(3, 2)).to_vec();
    buf[4] = 99; // version field (little-endian u32 right after magic)
    let err = read_binary(&mut buf.as_slice()).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");
}

#[test]
fn dim_mismatch_is_rejected() {
    // Inflate the header dim without growing the body: the declared
    // count × (4 + 4·dim) exceeds what's actually there.
    let mut buf = to_bytes(&sample(3, 2)).to_vec();
    buf[8] = 200; // dim field (little-endian u32 at offset 8)
    let err = read_binary(&mut buf.as_slice()).unwrap_err();
    assert!(err.to_string().contains("truncated"), "{err}");
}

#[test]
fn count_overflow_is_rejected() {
    // A count near u64::MAX must fail the size check, not overflow or
    // attempt a giant allocation.
    let mut buf = to_bytes(&sample(1, 2)).to_vec();
    for b in &mut buf[12..20] {
        *b = 0xFF; // count field (little-endian u64 at offset 12)
    }
    assert!(read_binary(&mut buf.as_slice()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every strict prefix of a valid file is cleanly rejected.
    #[test]
    fn truncation_never_panics(
        nodes in 0u32..12,
        dim in 1usize..9,
        frac in 0.0f64..1.0,
    ) {
        let full = to_bytes(&sample(nodes, dim)).to_vec();
        let cut = ((full.len() as f64) * frac) as usize;
        let cut = cut.min(full.len().saturating_sub(1));
        let truncated = &full[..cut];
        let result = read_binary(&mut &truncated[..]);
        prop_assert!(result.is_err(), "prefix of {cut}/{} bytes must fail", full.len());
    }

    /// Flipping any single byte either still parses (payload bytes are
    /// arbitrary floats/ids) or fails cleanly — it never panics.
    #[test]
    fn single_byte_corruption_never_panics(
        nodes in 1u32..8,
        dim in 1usize..6,
        pos_frac in 0.0f64..1.0,
        value in 0u32..256,
    ) {
        let mut buf = to_bytes(&sample(nodes, dim)).to_vec();
        let pos = (((buf.len() - 1) as f64) * pos_frac) as usize;
        buf[pos] = value as u8;
        let _ = from_bytes(bytes::Bytes::from(buf)); // must not panic
    }
}
