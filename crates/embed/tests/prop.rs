//! Property tests for the embedding machinery.

use glodyne_embed::alias::AliasTable;
use glodyne_embed::corpus::WalkCorpus;
use glodyne_embed::pairs;
use glodyne_embed::walks::{generate_corpus, generate_walks, random_walk, WalkConfig};
use glodyne_embed::Embedding;
use glodyne_graph::id::{Edge, NodeId};
use glodyne_graph::Snapshot;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_connected_graph() -> impl Strategy<Value = Snapshot> {
    // A random tree plus random extra edges: always connected.
    (2u32..40, prop::collection::vec((0u32..40, 0u32..40), 0..40)).prop_map(|(n, extra)| {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let mut edges: Vec<Edge> = (1..n)
            .map(|v| {
                let u = rand::Rng::gen_range(&mut rng, 0..v);
                Edge::new(NodeId(v), NodeId(u))
            })
            .collect();
        edges.extend(
            extra
                .into_iter()
                .filter(|&(a, b)| a != b && a < n && b < n)
                .map(|(a, b)| Edge::new(NodeId(a), NodeId(b))),
        );
        Snapshot::from_edges(&edges, &[])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every consecutive pair of a walk is an edge of the graph, and the
    /// walk starts where asked.
    #[test]
    fn walks_follow_edges((g, seed) in (arb_connected_graph(), 0u64..100)) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let start = (seed as usize) % g.num_nodes();
        let walk = random_walk(&g, start, 25, &mut rng);
        prop_assert_eq!(walk[0], g.node_id(start));
        for pair in walk.windows(2) {
            prop_assert!(g.has_edge_ids(pair[0], pair[1]));
        }
    }

    /// Walk counts and lengths match the configuration.
    #[test]
    fn walk_generation_counts(g in arb_connected_graph(), r in 1usize..4, l in 2usize..20) {
        let cfg = WalkConfig { walks_per_node: r, walk_length: l, seed: 7 };
        let starts: Vec<u32> = (0..g.num_nodes() as u32).step_by(2).collect();
        let walks = generate_walks(&g, &starts, &cfg);
        prop_assert_eq!(walks.len(), starts.len() * r);
        for w in &walks {
            prop_assert!(w.len() <= l && !w.is_empty());
        }
    }

    /// `WalkCorpus` round-trips walk boundaries and tokens exactly: for
    /// any list of walks pushed into the flat arena, every walk comes
    /// back with the same tokens at the same index, and the offsets
    /// tile the arena without gaps.
    #[test]
    fn corpus_round_trips_walk_boundaries(
        walks in prop::collection::vec(prop::collection::vec(0u32..50, 0..30), 0..25),
    ) {
        let node_ids: Vec<NodeId> = (0..50).map(NodeId).collect();
        let mut c = WalkCorpus::new(node_ids);
        for w in &walks {
            c.push_walk(w);
        }
        prop_assert_eq!(c.num_walks(), walks.len());
        prop_assert_eq!(c.num_tokens(), walks.iter().map(Vec::len).sum::<usize>());
        for (i, w) in walks.iter().enumerate() {
            prop_assert_eq!(c.walk(i), w.as_slice(), "walk {} differs", i);
        }
        // Offsets tile the arena: sorted, starting at 0, ending at len.
        let offs = c.offsets();
        prop_assert_eq!(offs[0], 0);
        prop_assert_eq!(*offs.last().unwrap(), c.num_tokens());
        prop_assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        // And the iterator view agrees with indexed access.
        for (i, w) in c.walks().enumerate() {
            prop_assert_eq!(w, c.walk(i));
        }
    }

    /// The NodeId compatibility path preserves walk structure and maps
    /// tokens back to the original ids.
    #[test]
    fn corpus_from_nodeid_walks_round_trips(
        walks in prop::collection::vec(prop::collection::vec(0u32..40, 0..20), 0..15),
    ) {
        let walks: Vec<Vec<NodeId>> = walks
            .into_iter()
            .map(|w| w.into_iter().map(NodeId).collect())
            .collect();
        let c = WalkCorpus::from_nodeid_walks(&walks);
        prop_assert_eq!(c.num_walks(), walks.len());
        for (i, w) in walks.iter().enumerate() {
            prop_assert_eq!(&c.walk_node_ids(i), w, "walk {} differs", i);
        }
    }

    /// The flat generation path emits exactly the walks of the legacy
    /// path for every graph, start set, and seed.
    #[test]
    fn corpus_generation_matches_legacy((g, seed) in (arb_connected_graph(), 0u64..50), r in 1usize..3, l in 2usize..12) {
        let cfg = WalkConfig { walks_per_node: r, walk_length: l, seed };
        let starts: Vec<u32> = (0..g.num_nodes() as u32).step_by(3).collect();
        let legacy = generate_walks(&g, &starts, &cfg);
        let corpus = generate_corpus(&g, &starts, &cfg);
        prop_assert_eq!(corpus.num_walks(), legacy.len());
        for (i, w) in legacy.iter().enumerate() {
            prop_assert_eq!(&corpus.walk_node_ids(i), w, "walk {} differs", i);
        }
    }

    /// Pair extraction is symmetric in count: (a,b) appears as often as
    /// (b,a) over a whole walk.
    #[test]
    fn pair_extraction_symmetric(walk in prop::collection::vec(0u32..20, 0..30), s in 1usize..6) {
        let walk: Vec<NodeId> = walk.into_iter().map(NodeId).collect();
        let ps = pairs::pairs(&walk, s);
        use std::collections::HashMap;
        let mut counts: HashMap<(NodeId, NodeId), i64> = HashMap::new();
        for (a, b) in ps {
            *counts.entry((a, b)).or_insert(0) += 1;
            *counts.entry((b, a)).or_insert(0) -= 1;
        }
        for ((a, b), c) in counts {
            prop_assert_eq!(c, 0, "pair ({},{}) asymmetric", a, b);
        }
    }

    /// The alias sampler's empirical distribution tracks the weights.
    #[test]
    fn alias_tracks_weights(weights in prop::collection::vec(0.0f64..10.0, 2..12)) {
        prop_assume!(weights.iter().sum::<f64>() > 1.0);
        let table = AliasTable::new(&weights);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let draws = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let got = counts[i] as f64 / draws as f64;
            prop_assert!((got - expected).abs() < 0.03,
                "outcome {i}: expected {expected:.3}, got {got:.3}");
        }
    }

    /// Embedding store: set/get round-trips arbitrary vectors.
    #[test]
    fn embedding_round_trips(entries in prop::collection::vec((0u32..100, prop::collection::vec(-10.0f32..10.0, 4)), 0..30)) {
        let mut e = Embedding::new(4);
        let mut last: std::collections::HashMap<u32, Vec<f32>> = Default::default();
        for (id, v) in &entries {
            e.set(NodeId(*id), v);
            last.insert(*id, v.clone());
        }
        prop_assert_eq!(e.len(), last.len());
        for (id, v) in last {
            prop_assert_eq!(e.get(NodeId(id)).unwrap(), v.as_slice());
        }
    }

    /// Cosine similarity is bounded and symmetric.
    #[test]
    fn cosine_bounded_symmetric(a in prop::collection::vec(-5.0f32..5.0, 8), b in prop::collection::vec(-5.0f32..5.0, 8)) {
        let c1 = glodyne_embed::embedding::cosine(&a, &b);
        let c2 = glodyne_embed::embedding::cosine(&b, &a);
        prop_assert!((c1 - c2).abs() < 1e-5);
        prop_assert!((-1.0001..=1.0001).contains(&c1));
    }
}
