//! Micro-benchmark for the fused multi-query dot kernel: sweeps a
//! posting-list-sized arena for 4 queries, per-query `dot_fast` vs one
//! fused `dot_fast_multi::<4>` pass, and prints effective bandwidth.
//! Run with `cargo run --release -p glodyne-embed --example kernel_fused`.

use glodyne_embed::kernel::{dot_fast, dot_fast_multi};
use std::time::Instant;

fn main() {
    const DIM: usize = 128;
    const ROWS: usize = 4096;
    const REPS: usize = 400;
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / 16_777_216.0 - 0.5
    };
    let arena: Vec<f32> = (0..ROWS * DIM).map(|_| next()).collect();
    let queries: Vec<Vec<f32>> = (0..4).map(|_| (0..DIM).map(|_| next()).collect()).collect();
    let q: [&[f32]; 4] = [&queries[0], &queries[1], &queries[2], &queries[3]];

    let bytes = (ROWS * DIM * 4 * REPS) as f64;

    let mut sink = 0.0f32;
    let t = Instant::now();
    for _ in 0..REPS {
        for r in 0..ROWS {
            let row = &arena[r * DIM..(r + 1) * DIM];
            for qj in q {
                sink += dot_fast(qj, row);
            }
        }
    }
    let single = t.elapsed().as_secs_f64();

    let mut sink2 = 0.0f32;
    let t = Instant::now();
    for _ in 0..REPS {
        for r in 0..ROWS {
            let row = &arena[r * DIM..(r + 1) * DIM];
            let d = dot_fast_multi::<4>(q, row);
            for v in d {
                sink2 += v;
            }
        }
    }
    let fused = t.elapsed().as_secs_f64();

    assert_eq!(sink.to_bits(), sink2.to_bits(), "fused result drifted");
    println!(
        "rows={ROWS} d={DIM} reps={REPS}: 4x dot_fast={:.2} GB/s  dot_fast_multi<4>={:.2} GB/s  ratio={:.2}x",
        bytes / single / 1e9,
        bytes / fused / 1e9,
        single / fused
    );
}
