//! node2vec-style biased second-order random walks (Grover & Leskovec
//! 2016 — the paper's \[7\], whose hyper-parameter defaults GloDyNE
//! adopts).
//!
//! The paper's §6 positions GloDyNE as "a general DNE framework" in
//! which the topology-capturing component is swappable; biased walks
//! are the most common swap. The return parameter `p` and in-out
//! parameter `q` reshape the walk distribution:
//!
//! ```text
//! P(next = x | prev = t, cur = v) ∝  1/p   if x = t        (return)
//!                                    1     if d(t, x) = 1  (stay close)
//!                                    1/q   otherwise       (explore)
//! ```
//!
//! `p = q = 1` reduces exactly to the uniform first-order walk of
//! Eq. 5 (DeepWalk), which the tests verify.

use glodyne_graph::{NodeId, Snapshot};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// node2vec walk parameters.
#[derive(Debug, Clone, Copy)]
pub struct BiasedWalkConfig {
    /// Walks per start node.
    pub walks_per_node: usize,
    /// Walk length.
    pub walk_length: usize,
    /// Return parameter `p` (likelihood of revisiting the previous
    /// node; higher = less backtracking).
    pub p: f64,
    /// In-out parameter `q` (< 1 favours outward DFS-like exploration,
    /// > 1 favours BFS-like locality).
    pub q: f64,
    /// Base seed.
    pub seed: u64,
}

impl Default for BiasedWalkConfig {
    fn default() -> Self {
        BiasedWalkConfig {
            walks_per_node: 10,
            walk_length: 80,
            p: 1.0,
            q: 1.0,
            seed: 0,
        }
    }
}

/// One biased walk from `start` (local index), returning global ids.
pub fn biased_walk(
    g: &Snapshot,
    start: usize,
    cfg: &BiasedWalkConfig,
    rng: &mut impl Rng,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(cfg.walk_length);
    walk.push(g.node_id(start));
    if cfg.walk_length == 1 {
        return walk;
    }
    // First hop: uniform.
    let ns = g.neighbors(start);
    if ns.is_empty() {
        return walk;
    }
    let mut prev = start;
    let mut cur = ns[rng.gen_range(0..ns.len())] as usize;
    walk.push(g.node_id(cur));

    let inv_p = 1.0 / cfg.p;
    let inv_q = 1.0 / cfg.q;
    let mut weights: Vec<f64> = Vec::new();
    while walk.len() < cfg.walk_length {
        let ns = g.neighbors(cur);
        if ns.is_empty() {
            break;
        }
        weights.clear();
        let mut total = 0.0;
        for &x in ns {
            let x = x as usize;
            let w = if x == prev {
                inv_p
            } else if g.has_edge(prev, x) {
                1.0
            } else {
                inv_q
            };
            weights.push(w);
            total += w;
        }
        let mut draw = rng.gen::<f64>() * total;
        let mut picked = ns.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            draw -= w;
            if draw <= 0.0 {
                picked = i;
                break;
            }
        }
        prev = cur;
        cur = ns[picked] as usize;
        walk.push(g.node_id(cur));
    }
    walk
}

/// `r` biased walks from each start node, in parallel, deterministic
/// per (seed, start, repetition).
pub fn generate_biased_walks(
    g: &Snapshot,
    starts: &[u32],
    cfg: &BiasedWalkConfig,
) -> Vec<Vec<NodeId>> {
    starts
        .par_iter()
        .flat_map_iter(|&start| {
            (0..cfg.walks_per_node).map(move |rep| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed
                        .wrapping_mul(0xA076_1D64_78BD_642F)
                        .wrapping_add((start as u64) << 16)
                        .wrapping_add(rep as u64),
                );
                biased_walk(g, start as usize, cfg, &mut rng)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::Edge;

    /// Path with a triangle at one end:
    /// 0 - 1 - 2 - 3, plus edge 0-2 (so 0,1,2 form a triangle).
    fn lollipop() -> Snapshot {
        Snapshot::from_edges(
            &[
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2)),
                Edge::new(NodeId(2), NodeId(3)),
                Edge::new(NodeId(0), NodeId(2)),
            ],
            &[],
        )
    }

    #[test]
    fn walks_follow_edges() {
        let g = lollipop();
        let cfg = BiasedWalkConfig {
            walk_length: 20,
            p: 0.5,
            q: 2.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for start in 0..g.num_nodes() {
            let w = biased_walk(&g, start, &cfg, &mut rng);
            for pair in w.windows(2) {
                assert!(g.has_edge_ids(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn low_p_increases_backtracking() {
        // With p << 1 the walker returns to the previous node often;
        // with p >> 1 it rarely does. Measure immediate backtrack rate.
        let g = lollipop();
        let rate = |p: f64| {
            let cfg = BiasedWalkConfig {
                walk_length: 400,
                walks_per_node: 1,
                p,
                q: 1.0,
                seed: 4,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let w = biased_walk(&g, 0, &cfg, &mut rng);
            let mut back = 0usize;
            let mut total = 0usize;
            for win in w.windows(3) {
                total += 1;
                if win[0] == win[2] {
                    back += 1;
                }
            }
            back as f64 / total as f64
        };
        let low_p = rate(0.1);
        let high_p = rate(10.0);
        assert!(
            low_p > high_p + 0.1,
            "backtrack rates: p=0.1 -> {low_p:.3}, p=10 -> {high_p:.3}"
        );
    }

    #[test]
    fn p_q_one_matches_uniform_distribution() {
        // On the triangle node 2 (neighbours 0, 1, 3), with p=q=1 every
        // neighbour is equally likely regardless of the previous node.
        let g = lollipop();
        let cfg = BiasedWalkConfig {
            walk_length: 3,
            p: 1.0,
            q: 1.0,
            walks_per_node: 1,
            seed: 0,
        };
        let mut counts = std::collections::HashMap::new();
        for s in 0..6000u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(s);
            let w = biased_walk(&g, g.local_of(NodeId(2)).unwrap(), &cfg, &mut rng);
            if w.len() == 3 {
                *counts.entry(w[2]).or_insert(0usize) += 1;
            }
        }
        // every second-hop endpoint should appear with similar frequency
        // to its unbiased expectation — just check nothing is starved
        for (_, c) in counts {
            assert!(c > 300, "second-order uniformity broken: {c}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_counted() {
        let g = lollipop();
        let cfg = BiasedWalkConfig {
            walks_per_node: 3,
            walk_length: 8,
            p: 2.0,
            q: 0.5,
            seed: 11,
        };
        let starts = [0u32, 2];
        let a = generate_biased_walks(&g, &starts, &cfg);
        let b = generate_biased_walks(&g, &starts, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }
}
