//! Fallible configuration validation shared by every embedding method.
//!
//! Constructors across the workspace accept plain-old-data config
//! structs; instead of panicking on out-of-range hyper-parameters they
//! validate and return a [`ConfigError`], which callers (the CLI, the
//! bench harness, library users) can surface through a proper
//! `std::error::Error` chain.

use std::error::Error;
use std::fmt;

/// An invalid hyper-parameter in a configuration struct.
///
/// Carries the offending parameter name and a human-readable reason so
/// error chains read like `invalid config: alpha must be in (0, 1],
/// got 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    param: &'static str,
    reason: String,
}

impl ConfigError {
    /// A new error for `param` with a human-readable `reason`.
    pub fn new(param: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            param,
            reason: reason.into(),
        }
    }

    /// The name of the offending parameter (e.g. `"alpha"`).
    pub fn param(&self) -> &'static str {
        self.param
    }

    /// The human-readable reason.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {} {}", self.param, self.reason)
    }
}

impl Error for ConfigError {}

/// Require `cond`, otherwise produce a [`ConfigError`] for `param`.
pub(crate) fn require(
    cond: bool,
    param: &'static str,
    reason: impl Into<String>,
) -> Result<(), ConfigError> {
    if cond {
        Ok(())
    } else {
        Err(ConfigError::new(param, reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = ConfigError::new("alpha", "must be in (0, 1], got 0");
        let s = e.to_string();
        assert!(s.contains("alpha"), "{s}");
        assert!(s.contains("(0, 1]"), "{s}");
        assert_eq!(e.param(), "alpha");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ConfigError::new("dim", "must be >= 1"));
    }
}
