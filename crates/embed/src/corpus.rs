//! The flat walk corpus: one contiguous token arena for a whole
//! training step.
//!
//! The original pipeline materialised every walk as its own
//! `Vec<NodeId>`, then re-interned every token through a `HashMap` and
//! re-materialised the corpus a second time as `Vec<Vec<u32>>` inside
//! SGNS training — three allocations and a hash lookup per token on the
//! hottest path in the system. [`WalkCorpus`] replaces all of that with
//!
//! - **one contiguous `Vec<u32>` token arena** holding every walk
//!   back-to-back (tokens are *snapshot-local* indices — walk generation
//!   never touches a hash map),
//! - **walk offsets** (`offsets[i]..offsets[i+1]` bounds walk `i`), and
//! - a **node-id table** mapping tokens back to stable global
//!   [`NodeId`]s, cloned from the snapshot in one `O(|V|)` memcpy.
//!
//! [`crate::sgns::SgnsModel::train_corpus`] consumes the arena directly:
//! vocabulary growth costs one hash insert per *distinct* node (not per
//! token), and the training loop reads token slices straight out of the
//! arena with no per-walk allocation.
//!
//! Construction paths:
//! - [`crate::walks::generate_corpus`] /
//!   [`crate::walks::generate_corpus_all`] — the fast path: walks are
//!   written in parallel directly into the pre-sized arena.
//! - [`WalkCorpus::from_nodeid_walks`] — the compatibility path used by
//!   the legacy `train(&[Vec<NodeId>])` shim; interns ids in first-
//!   occurrence order (the order the historical trainer used) so the
//!   shim is bit-exact with `train_corpus` fed the equivalent corpus.

use crate::aligned::AlignedBuf;
use glodyne_graph::NodeId;
use std::collections::HashMap;

/// A flat, zero-copy walk corpus: token arena + walk offsets + id table.
///
/// Tokens are indices into [`WalkCorpus::node_ids`]; for a corpus built
/// from a snapshot they are exactly the snapshot's local indices.
#[derive(Debug, Clone, Default)]
pub struct WalkCorpus {
    /// All walks, concatenated. Cache-line aligned: SGNS reads this
    /// arena in one long sweep per train call.
    tokens: AlignedBuf<u32>,
    /// `offsets[i]..offsets[i+1]` bounds walk `i`; length `num_walks + 1`.
    offsets: Vec<usize>,
    /// Token → stable global id.
    node_ids: Vec<NodeId>,
}

impl WalkCorpus {
    /// An empty corpus over a fixed token → id table.
    pub fn new(node_ids: Vec<NodeId>) -> Self {
        WalkCorpus {
            tokens: AlignedBuf::new(),
            offsets: vec![0],
            node_ids,
        }
    }

    /// An empty corpus with arena capacity reserved for `walks` walks
    /// totalling `tokens` tokens.
    pub fn with_capacity(node_ids: Vec<NodeId>, walks: usize, tokens: usize) -> Self {
        let mut c = WalkCorpus::new(node_ids);
        c.tokens = AlignedBuf::with_capacity(tokens);
        c.offsets.reserve(walks);
        c
    }

    /// Assemble a corpus from pre-sized raw parts. `offsets` must start
    /// at 0, be non-decreasing, and end at `tokens.len()`; every token
    /// must index into `node_ids`.
    pub fn from_raw_parts(
        tokens: AlignedBuf<u32>,
        offsets: Vec<usize>,
        node_ids: Vec<NodeId>,
    ) -> Self {
        assert_eq!(offsets.first(), Some(&0), "offsets must start at 0");
        assert_eq!(
            offsets.last(),
            Some(&tokens.len()),
            "offsets must end at the arena length"
        );
        debug_assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be sorted"
        );
        debug_assert!(
            tokens.iter().all(|&t| (t as usize) < node_ids.len()),
            "token out of range of the node-id table"
        );
        WalkCorpus {
            tokens,
            offsets,
            node_ids,
        }
    }

    /// Compatibility path: build a corpus from `NodeId` walks, interning
    /// ids into the token table in first-occurrence order — the same
    /// order the historical trainer interned them, so the `train` shim
    /// assigns identical model rows and stays bit-exact with
    /// `train_corpus` on an equivalent corpus. (The training *engine*
    /// itself changed in the refactor — sigmoid table, SplitMix64
    /// negatives — so outputs differ from pre-refactor releases; see
    /// `glodyne_bench::legacy` for the frozen historical engine.)
    pub fn from_nodeid_walks(walks: &[Vec<NodeId>]) -> Self {
        let total: usize = walks.iter().map(Vec::len).sum();
        let mut corpus = WalkCorpus::with_capacity(Vec::new(), walks.len(), total);
        let mut index_of: HashMap<NodeId, u32> = HashMap::new();
        for walk in walks {
            for &id in walk {
                let tok = *index_of.entry(id).or_insert_with(|| {
                    corpus.node_ids.push(id);
                    (corpus.node_ids.len() - 1) as u32
                });
                corpus.tokens.push(tok);
            }
            corpus.offsets.push(corpus.tokens.len());
        }
        corpus
    }

    /// Append one walk of local-index tokens.
    pub fn push_walk(&mut self, walk: &[u32]) {
        debug_assert!(
            walk.iter().all(|&t| (t as usize) < self.node_ids.len()),
            "token out of range of the node-id table"
        );
        self.tokens.extend_from_slice(walk);
        self.offsets.push(self.tokens.len());
    }

    /// Number of walks.
    #[inline]
    pub fn num_walks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total tokens across all walks.
    #[inline]
    pub fn num_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the corpus holds no walks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_walks() == 0
    }

    /// Walk `i` as a token slice into the arena.
    #[inline]
    pub fn walk(&self, i: usize) -> &[u32] {
        &self.tokens[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterate all walks as token slices.
    pub fn walks(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.offsets.windows(2).map(|w| &self.tokens[w[0]..w[1]])
    }

    /// The whole token arena (cache-line aligned when non-empty).
    #[inline]
    pub fn tokens(&self) -> &[u32] {
        debug_assert!(
            self.tokens.is_empty()
                || (self.tokens.as_slice().as_ptr() as usize)
                    .is_multiple_of(crate::aligned::CACHE_LINE),
            "token arena lost its cache-line alignment"
        );
        self.tokens.as_slice()
    }

    /// The walk-boundary offsets (length `num_walks() + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The token → global-id table.
    #[inline]
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// Global id of a token.
    #[inline]
    pub fn node_id_of(&self, token: u32) -> NodeId {
        self.node_ids[token as usize]
    }

    /// Walk `i` translated back to global ids (tests/diagnostics; the
    /// training path never materialises this).
    pub fn walk_node_ids(&self, i: usize) -> Vec<NodeId> {
        self.walk(i).iter().map(|&t| self.node_id_of(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_walk_round_trips_boundaries() {
        let ids: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut c = WalkCorpus::new(ids);
        c.push_walk(&[0, 1, 2]);
        c.push_walk(&[4]);
        c.push_walk(&[]);
        c.push_walk(&[3, 3]);
        assert_eq!(c.num_walks(), 4);
        assert_eq!(c.num_tokens(), 6);
        assert_eq!(c.walk(0), &[0, 1, 2]);
        assert_eq!(c.walk(1), &[4]);
        assert_eq!(c.walk(2), &[] as &[u32]);
        assert_eq!(c.walk(3), &[3, 3]);
        let collected: Vec<&[u32]> = c.walks().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[3], &[3, 3]);
    }

    #[test]
    fn from_nodeid_walks_interns_in_first_occurrence_order() {
        let walks = vec![
            vec![NodeId(30), NodeId(10), NodeId(30)],
            vec![NodeId(20), NodeId(10)],
        ];
        let c = WalkCorpus::from_nodeid_walks(&walks);
        assert_eq!(c.node_ids(), &[NodeId(30), NodeId(10), NodeId(20)]);
        assert_eq!(c.walk(0), &[0, 1, 0]);
        assert_eq!(c.walk(1), &[2, 1]);
        assert_eq!(c.walk_node_ids(1), vec![NodeId(20), NodeId(10)]);
    }

    #[test]
    fn empty_corpus() {
        let c = WalkCorpus::from_nodeid_walks(&[]);
        assert!(c.is_empty());
        assert_eq!(c.num_tokens(), 0);
        assert_eq!(c.walks().count(), 0);
    }

    #[test]
    fn from_raw_parts_validates_bounds() {
        let c = WalkCorpus::from_raw_parts(
            AlignedBuf::from(&[0u32, 1, 1, 0][..]),
            vec![0, 2, 4],
            vec![NodeId(7), NodeId(9)],
        );
        assert_eq!(c.num_walks(), 2);
        assert_eq!(c.walk(1), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn from_raw_parts_rejects_bad_offsets() {
        WalkCorpus::from_raw_parts(
            AlignedBuf::from(&[0u32, 1][..]),
            vec![0, 1],
            vec![NodeId(0), NodeId(1)],
        );
    }

    #[test]
    fn token_arena_is_cache_line_aligned() {
        let mut c = WalkCorpus::new((0..4).map(NodeId).collect());
        c.push_walk(&[0, 1, 2, 3]);
        assert_eq!(c.tokens().as_ptr() as usize % crate::aligned::CACHE_LINE, 0);
    }
}
