//! The similarity kernels: one exact accumulation order, one
//! SIMD-shaped fast path.
//!
//! Every cosine-ranking surface in this workspace bottoms out in a dot
//! product. This module is their single home, split into **two
//! precisions of the same mathematical function** with an explicit
//! contract:
//!
//! - **Exact kernel** ([`dot_exact`], [`norm_cosine`], [`l2_norm`],
//!   [`cosine`]): one element-by-element left-to-right accumulation
//!   order, frozen forever. Every bit-exactness pin in the workspace —
//!   `Embedding::top_k` ≡ `reference_top_k`, full-probe IVF ≡ the
//!   linear scan, sharded fan-out ≡ the union scan — holds because all
//!   of those surfaces score candidates through *this* order. Changing
//!   it is a semver-major event.
//! - **Fast kernel** ([`dot_fast`], [`norm_cosine_fast`]): the same
//!   reduction regrouped into [`LANES`] independent accumulators plus a
//!   scalar remainder loop — the shape LLVM auto-vectorizes to packed
//!   SIMD adds/muls and that breaks the loop-carried dependency chain
//!   even without SIMD. Because float addition is not associative the
//!   fast kernel is **not** bit-identical to the exact one; it is
//!   within ~1e-5 relative error on realistic embeddings
//!   (property-pinned in this module's tests) and may differ in last
//!   bits. It must therefore only be used on surfaces that are
//!   *approximate by contract*: IVF cell ranking, partial-probe
//!   candidate scans, k-means assignment. Exact surfaces (`top_k`,
//!   exact wire `nearest`, full-probe IVF, SQ8 re-ranking) must keep
//!   calling the exact kernel.
//!
//! The flat posting-list arenas in `glodyne-ann` scan contiguous
//! `dim`-strided rows, so the fast kernel's chunked loop runs over
//! cache-line-aligned-in-practice windows with no gather — the
//! "aligned arena variant" is the same function applied to arena rows.

/// Accumulator width of the fast kernel: 8 independent f32 lanes (two
/// SSE registers, one AVX register) — enough to break the dependency
/// chain on any x86-64 baseline without spilling on narrow ISAs.
pub const LANES: usize = 8;

/// Dot product in the frozen exact accumulation order (left-to-right,
/// single accumulator) — the bit-exactness reference every equivalence
/// pin in the workspace compares against.
#[inline]
pub fn dot_exact(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Dot product regrouped into [`LANES`] independent accumulators plus a
/// scalar remainder — auto-vectorizes to packed SIMD on the default
/// x86-64 target. Same function as [`dot_exact`] up to float
/// reassociation (≤ ~1e-5 relative error on realistic data, pinned in
/// tests); **not** bit-identical, so approximate surfaces only.
#[inline]
pub fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        for lane in 0..LANES {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in a[main..].iter().zip(&b[main..]) {
        tail += x * y;
    }
    // Pairwise lane reduction (tree order, fixed): keeps the reduction
    // deterministic across calls even though it differs from the exact
    // left-to-right order.
    let even = (acc[0] + acc[4]) + (acc[2] + acc[6]);
    let odd = (acc[1] + acc[5]) + (acc[3] + acc[7]);
    (even + odd) + tail
}

/// `N` [`dot_fast`] computations sharing one pass over `b`: each of
/// the `N` queries keeps its own [`LANES`]-lane accumulator block,
/// scalar remainder, and pairwise reduction — exactly the operation
/// sequence of a standalone `dot_fast(a[j], b)` call, so every slot of
/// the result is **bit-identical** to the corresponding single call
/// (regression-pinned in tests). What fusing buys is instruction-level
/// parallelism: `N` independent accumulation chains interleave over
/// one load of each `b` chunk, hiding the FMA latency a single chain
/// stalls on. This is the mini-kernel under `glodyne-ann`'s
/// cell-grouped batch scan, where one posting row is scored for every
/// query probing its cell.
///
/// All `N` query slices must have `b`'s length (like `dot_fast`,
/// enforced by `debug_assert` only).
#[inline]
pub fn dot_fast_multi<const N: usize>(a: [&[f32]; N], b: &[f32]) -> [f32; N] {
    // Specialized bodies for the group widths the cell-grouped scan
    // emits: the nested `chunks_exact().zip()` shape is the one idiom
    // the autovectorizer reliably turns into branch-free vector code
    // (an array of iterators or manual indexing reintroduces bounds
    // checks and spills the accumulators). Other widths fall back to
    // per-slot `dot_fast`, which is the same computation by definition.
    match N {
        2 => {
            let (d0, d1) = dot_fast_x2(a[0], a[1], b);
            let mut out = [0.0f32; N];
            out[0] = d0;
            out[1] = d1;
            out
        }
        3 => {
            let (d0, d1) = dot_fast_x2(a[0], a[1], b);
            let mut out = [0.0f32; N];
            out[0] = d0;
            out[1] = d1;
            out[2] = dot_fast(a[2], b);
            out
        }
        4 => {
            let (d0, d1, d2, d3) = dot_fast_x4(a[0], a[1], a[2], a[3], b);
            let mut out = [0.0f32; N];
            out[0] = d0;
            out[1] = d1;
            out[2] = d2;
            out[3] = d3;
            out
        }
        _ => std::array::from_fn(|j| dot_fast(a[j], b)),
    }
}

/// Finish one fused accumulator block the way `dot_fast` does: the
/// query's scalar remainder, then the fixed pairwise lane reduction.
#[inline]
fn finish_lanes(acc: &[f32; LANES], a: &[f32], b: &[f32], main: usize) -> f32 {
    let mut tail = 0.0f32;
    for (&x, &y) in a[main..].iter().zip(&b[main..]) {
        tail += x * y;
    }
    let even = (acc[0] + acc[4]) + (acc[2] + acc[6]);
    let odd = (acc[1] + acc[5]) + (acc[3] + acc[7]);
    (even + odd) + tail
}

/// Two fused [`dot_fast`] chains over one pass of `b`.
#[inline]
fn dot_fast_x2(a0: &[f32], a1: &[f32], b: &[f32]) -> (f32, f32) {
    debug_assert_eq!(a0.len(), b.len());
    debug_assert_eq!(a1.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the `avx` feature was just detected at runtime.
        return unsafe { dot_fast_x2_avx(a0, a1, b) };
    }
    let main = b.len() - b.len() % LANES;
    let mut acc0 = [0.0f32; LANES];
    let mut acc1 = [0.0f32; LANES];
    for ((c0, c1), cb) in a0[..main]
        .chunks_exact(LANES)
        .zip(a1[..main].chunks_exact(LANES))
        .zip(b[..main].chunks_exact(LANES))
    {
        for lane in 0..LANES {
            acc0[lane] += c0[lane] * cb[lane];
            acc1[lane] += c1[lane] * cb[lane];
        }
    }
    (
        finish_lanes(&acc0, a0, b, main),
        finish_lanes(&acc1, a1, b, main),
    )
}

/// AVX body of [`dot_fast_x2`]. One 8-lane `vmulps` + `vaddps` pair
/// per query per chunk — the exact per-lane IEEE operations of the
/// scalar loop (deliberately *not* FMA, which would fuse the rounding
/// step and break bit-identity with [`dot_fast`]) — so results stay
/// bit-identical to the portable path on every platform.
///
/// # Safety
/// Caller must ensure the `avx` target feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn dot_fast_x2_avx(a0: &[f32], a1: &[f32], b: &[f32]) -> (f32, f32) {
    use std::arch::x86_64::*;
    let main = b.len() - b.len() % LANES;
    let mut v0 = _mm256_setzero_ps();
    let mut v1 = _mm256_setzero_ps();
    let mut i = 0;
    while i < main {
        // SAFETY: `i + LANES <= main <= len` of every slice, checked
        // by the debug asserts in the caller and the loop bound.
        unsafe {
            let cb = _mm256_loadu_ps(b.as_ptr().add(i));
            v0 = _mm256_add_ps(v0, _mm256_mul_ps(_mm256_loadu_ps(a0.as_ptr().add(i)), cb));
            v1 = _mm256_add_ps(v1, _mm256_mul_ps(_mm256_loadu_ps(a1.as_ptr().add(i)), cb));
        }
        i += LANES;
    }
    let mut acc0 = [0.0f32; LANES];
    let mut acc1 = [0.0f32; LANES];
    // SAFETY: `[f32; LANES]` holds exactly one 256-bit vector.
    unsafe {
        _mm256_storeu_ps(acc0.as_mut_ptr(), v0);
        _mm256_storeu_ps(acc1.as_mut_ptr(), v1);
    }
    (
        finish_lanes(&acc0, a0, b, main),
        finish_lanes(&acc1, a1, b, main),
    )
}

/// Four fused [`dot_fast`] chains over one pass of `b`.
#[inline]
fn dot_fast_x4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], b: &[f32]) -> (f32, f32, f32, f32) {
    debug_assert_eq!(a0.len(), b.len());
    debug_assert_eq!(a1.len(), b.len());
    debug_assert_eq!(a2.len(), b.len());
    debug_assert_eq!(a3.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: the `avx` feature was just detected at runtime.
        return unsafe { dot_fast_x4_avx(a0, a1, a2, a3, b) };
    }
    let main = b.len() - b.len() % LANES;
    let mut acc0 = [0.0f32; LANES];
    let mut acc1 = [0.0f32; LANES];
    let mut acc2 = [0.0f32; LANES];
    let mut acc3 = [0.0f32; LANES];
    for ((((c0, c1), c2), c3), cb) in a0[..main]
        .chunks_exact(LANES)
        .zip(a1[..main].chunks_exact(LANES))
        .zip(a2[..main].chunks_exact(LANES))
        .zip(a3[..main].chunks_exact(LANES))
        .zip(b[..main].chunks_exact(LANES))
    {
        for lane in 0..LANES {
            acc0[lane] += c0[lane] * cb[lane];
            acc1[lane] += c1[lane] * cb[lane];
            acc2[lane] += c2[lane] * cb[lane];
            acc3[lane] += c3[lane] * cb[lane];
        }
    }
    (
        finish_lanes(&acc0, a0, b, main),
        finish_lanes(&acc1, a1, b, main),
        finish_lanes(&acc2, a2, b, main),
        finish_lanes(&acc3, a3, b, main),
    )
}

/// AVX body of [`dot_fast_x4`] — see [`dot_fast_x2_avx`] for why this
/// is mul+add rather than FMA and why it is bit-identical to the
/// portable path.
///
/// # Safety
/// Caller must ensure the `avx` target feature is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn dot_fast_x4_avx(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    b: &[f32],
) -> (f32, f32, f32, f32) {
    use std::arch::x86_64::*;
    let main = b.len() - b.len() % LANES;
    let mut v0 = _mm256_setzero_ps();
    let mut v1 = _mm256_setzero_ps();
    let mut v2 = _mm256_setzero_ps();
    let mut v3 = _mm256_setzero_ps();
    let mut i = 0;
    while i < main {
        // SAFETY: `i + LANES <= main <= len` of every slice, checked
        // by the debug asserts in the caller and the loop bound.
        unsafe {
            let cb = _mm256_loadu_ps(b.as_ptr().add(i));
            v0 = _mm256_add_ps(v0, _mm256_mul_ps(_mm256_loadu_ps(a0.as_ptr().add(i)), cb));
            v1 = _mm256_add_ps(v1, _mm256_mul_ps(_mm256_loadu_ps(a1.as_ptr().add(i)), cb));
            v2 = _mm256_add_ps(v2, _mm256_mul_ps(_mm256_loadu_ps(a2.as_ptr().add(i)), cb));
            v3 = _mm256_add_ps(v3, _mm256_mul_ps(_mm256_loadu_ps(a3.as_ptr().add(i)), cb));
        }
        i += LANES;
    }
    let mut acc0 = [0.0f32; LANES];
    let mut acc1 = [0.0f32; LANES];
    let mut acc2 = [0.0f32; LANES];
    let mut acc3 = [0.0f32; LANES];
    // SAFETY: `[f32; LANES]` holds exactly one 256-bit vector.
    unsafe {
        _mm256_storeu_ps(acc0.as_mut_ptr(), v0);
        _mm256_storeu_ps(acc1.as_mut_ptr(), v1);
        _mm256_storeu_ps(acc2.as_mut_ptr(), v2);
        _mm256_storeu_ps(acc3.as_mut_ptr(), v3);
    }
    (
        finish_lanes(&acc0, a0, b, main),
        finish_lanes(&acc1, a1, b, main),
        finish_lanes(&acc2, a2, b, main),
        finish_lanes(&acc3, a3, b, main),
    )
}

/// L2 norm with the one accumulation order every norm cache in this
/// workspace shares (sum of squares, then one sqrt): the norms stored
/// by `Embedding::set` and the ones `glodyne-ann` caches per posting
/// list agree bit-for-bit because both come from here.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|&x| x * x).sum::<f32>().sqrt()
}

/// Guarded cosine similarity from precomputed norms — the shared
/// **exact** candidate kernel of `Embedding::top_k` and the full-probe
/// IVF scans in `glodyne-ann`: zero-norm operands score 0 (never a
/// division by zero), NaN operands propagate NaN. Keeping it
/// single-homed is what makes full-probe IVF results bit-exact with
/// the linear scan.
#[inline]
pub fn norm_cosine(a: &[f32], an: f32, b: &[f32], bn: f32) -> f32 {
    if an == 0.0 || bn == 0.0 {
        0.0
    } else {
        dot_exact(a, b) / (an * bn)
    }
}

/// [`norm_cosine`] through the fast kernel — same zero-norm and NaN
/// behaviour, reassociated accumulation. Approximate surfaces only
/// (IVF cell ranking, partial-probe scans, k-means assignment).
#[inline]
pub fn norm_cosine_fast(a: &[f32], an: f32, b: &[f32], bn: f32) -> f32 {
    if an == 0.0 || bn == 0.0 {
        0.0
    } else {
        dot_fast(a, b) / (an * bn)
    }
}

/// [`norm_cosine_fast`] with the `1/(an·bn)` factor precomputed by the
/// caller: the hot partial-probe scan multiplies each row's dot by a
/// cached reciprocal instead of dividing per row (a divide per
/// candidate is measurable at scan bandwidth). The caller owns the
/// zero-norm guard by storing `scale = 0` for zero-norm rows — the
/// product is then exactly 0, matching [`norm_cosine_fast`]; NaN dots
/// still propagate. Approximate surfaces only: reciprocal-multiply
/// rounds differently from the divide.
#[inline]
pub fn scaled_dot_fast(a: &[f32], b: &[f32], scale: f32) -> f32 {
    dot_fast(a, b) * scale
}

/// Cosine similarity of two equal-length vectors (0 for zero vectors),
/// delegating to [`dot_exact`] + [`l2_norm`] so there is exactly one
/// accumulation order per precision. Bit-exact with the historical
/// fused loop: that loop accumulated `dot`, `Σa²`, and `Σb²` each in
/// element order with independent accumulators — precisely what the
/// three delegated calls compute — and `sqrt(Σx²) == 0` iff `Σx² == 0`,
/// so the zero-vector guard is unchanged (regression-pinned in tests).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot_exact(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The workspace's SplitMix mixing recipe, for deterministic
    /// pseudo-random test vectors.
    fn pseudo_random(len: usize, salt: u64) -> Vec<f32> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ salt;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(0xd129_42e2_96fe_94e3).wrapping_add(1);
                ((state >> 40) as f32) / 1e6 - 8.0
            })
            .collect()
    }

    /// The fused dot/norm/norm loop `cosine` shipped with before it was
    /// collapsed onto the shared kernel — kept verbatim as the
    /// regression reference.
    fn cosine_old_fused(a: &[f32], b: &[f32]) -> f32 {
        let mut dot = 0.0f32;
        let mut na = 0.0f32;
        let mut nb = 0.0f32;
        for (&x, &y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    #[test]
    fn cosine_is_bit_exact_with_the_old_fused_loop() {
        for salt in 0..32u64 {
            for dim in [1usize, 2, 7, 8, 9, 16, 64, 128, 129] {
                let a = pseudo_random(dim, salt * 2 + 1);
                let b = pseudo_random(dim, salt * 2 + 2);
                assert_eq!(
                    cosine(&a, &b).to_bits(),
                    cosine_old_fused(&a, &b).to_bits(),
                    "salt={salt} dim={dim}"
                );
            }
        }
        // Zero-vector guard and degenerate inputs behave identically.
        let z = vec![0.0f32; 8];
        let v = pseudo_random(8, 9);
        assert_eq!(cosine(&z, &v).to_bits(), cosine_old_fused(&z, &v).to_bits());
        assert_eq!(cosine(&v, &z).to_bits(), cosine_old_fused(&v, &z).to_bits());
        let mut n = v.clone();
        n[3] = f32::NAN;
        assert_eq!(
            cosine(&n, &v).is_nan(),
            cosine_old_fused(&n, &v).is_nan(),
            "NaN propagates in both"
        );
    }

    #[test]
    fn fast_dot_is_within_1e5_relative_of_exact() {
        for salt in 0..64u64 {
            for dim in [1usize, 3, 7, 8, 9, 15, 16, 17, 31, 64, 127, 128, 200] {
                // Mixed-sign vectors: heavy cancellation makes the raw
                // dot an unstable scale, so bound the error relative to
                // ‖a‖·‖b‖ — the denominator every cosine divides by,
                // i.e. a ≤1e-5 error in similarity space.
                let a = pseudo_random(dim, salt * 2 + 100);
                let b = pseudo_random(dim, salt * 2 + 101);
                let exact = dot_exact(&a, &b);
                let fast = dot_fast(&a, &b);
                let scale = (l2_norm(&a) * l2_norm(&b)).max(1.0);
                assert!(
                    (fast - exact).abs() / scale <= 1e-5,
                    "salt={salt} dim={dim} exact={exact} fast={fast}"
                );
                // Non-cancelling vectors (all-positive): the dot itself
                // is a stable scale, so the plain relative error must
                // also sit within 1e-5.
                let ap: Vec<f32> = a.iter().map(|x| x.abs() + 0.125).collect();
                let bp: Vec<f32> = b.iter().map(|x| x.abs() + 0.125).collect();
                let exact = dot_exact(&ap, &bp);
                let fast = dot_fast(&ap, &bp);
                assert!(
                    (fast - exact).abs() / exact.abs().max(1.0) <= 1e-5,
                    "positive case salt={salt} dim={dim} exact={exact} fast={fast}"
                );
            }
        }
    }

    #[test]
    fn fast_dot_handles_every_remainder_length() {
        // Ones-dot-ones counts elements exactly in both kernels, so any
        // dropped or double-counted tail shows up as an integer error.
        for dim in 0..40usize {
            let a = vec![1.0f32; dim];
            assert_eq!(dot_fast(&a, &a), dim as f32);
            assert_eq!(dot_exact(&a, &a), dim as f32);
        }
    }

    #[test]
    fn fast_norm_cosine_matches_guards() {
        let v = pseudo_random(16, 5);
        let n = l2_norm(&v);
        assert_eq!(norm_cosine_fast(&v, 0.0, &v, n), 0.0);
        assert_eq!(norm_cosine_fast(&v, n, &v, 0.0), 0.0);
        let exact = norm_cosine(&v, n, &v, n);
        let fast = norm_cosine_fast(&v, n, &v, n);
        assert!((exact - fast).abs() <= 1e-5);
        assert!((exact - 1.0).abs() <= 1e-5, "self-similarity is 1");
    }

    #[test]
    fn empty_and_zero_length_inputs() {
        assert_eq!(dot_fast(&[], &[]), 0.0);
        assert_eq!(dot_exact(&[], &[]), 0.0);
        assert_eq!(cosine(&[], &[]), 0.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn fused_multi_dot_is_bit_identical_to_single_calls() {
        // The fused kernel's whole contract: each slot IS dot_fast for
        // that query, to the last bit, at every width and remainder.
        for dim in [0usize, 1, 7, 8, 9, 16, 33, 128] {
            let b = pseudo_random(dim, 99);
            let qs: Vec<Vec<f32>> = (0..4).map(|s| pseudo_random(dim, s)).collect();
            let quad = dot_fast_multi::<4>([&qs[0], &qs[1], &qs[2], &qs[3]], &b);
            let pair = dot_fast_multi::<2>([&qs[0], &qs[1]], &b);
            let one = dot_fast_multi::<1>([&qs[2]], &b);
            for j in 0..4 {
                assert_eq!(
                    quad[j].to_bits(),
                    dot_fast(&qs[j], &b).to_bits(),
                    "dim={dim} j={j}"
                );
            }
            assert_eq!(pair[0].to_bits(), dot_fast(&qs[0], &b).to_bits());
            assert_eq!(pair[1].to_bits(), dot_fast(&qs[1], &b).to_bits());
            assert_eq!(one[0].to_bits(), dot_fast(&qs[2], &b).to_bits());
        }
    }
}
