//! The incremental Skip-Gram Negative Sampling model (Eq. 6–11).
//!
//! The model holds two weight matrices ("input"/center vectors — the
//! embeddings `Z` — and "output"/context vectors) over a growable
//! vocabulary of [`NodeId`]s. Training maximises Eq. 9/10 with SGD:
//!
//! ```text
//! max log σ(Z_i · Z'_j) + Σ_q E_{j'~P_D} [log σ(−Z_i · Z'_j')]
//! ```
//!
//! Negatives are drawn from the unigram distribution of the current
//! corpus raised to the 3/4 power (word2vec's `P_D`). The incremental
//! paradigm (Eq. 11) falls out naturally: call
//! [`SgnsModel::train_corpus`] again with a new corpus — existing
//! vectors are reused (`f^t = f^{t-1}`, Algorithm 1 line 17) and new
//! nodes get fresh random rows.
//!
//! The hot path consumes a flat [`WalkCorpus`] directly: tokens are read
//! straight out of the contiguous arena, vocabulary mapping costs one
//! array lookup per token (hashing happens once per *distinct* node),
//! and Hogwild workers are scheduled over contiguous *ranges* of walks
//! with one learning-rate reservation and one reusable gradient scratch
//! buffer per range — not one atomic increment and one allocation per
//! pair/walk as the legacy path did. The inner loop applies the
//! standard word2vec micro-optimisations: a precomputed sigmoid table
//! instead of `exp()` per sample, a SplitMix64 negative-sampling stream
//! instead of a cryptographic RNG (walk *generation* keeps ChaCha8 so
//! walk content is stable; reference word2vec goes further and uses a
//! bare LCG here), and a hoisted center-row copy so the update loops
//! are tight zips the compiler can vectorise. The legacy
//! [`SgnsModel::train`]`(&[Vec<NodeId>])` entry point survives as a thin
//! shim over the corpus path.
//!
//! Parallelism is word2vec-style Hogwild: threads update the shared
//! matrices without locks. Races lose the occasional update, which SGD
//! tolerates; set [`SgnsConfig::parallel`] to `false` for bit-exact
//! deterministic runs (tests, debugging).

use crate::alias::AliasTable;
use crate::corpus::WalkCorpus;
use crate::embedding::Embedding;
use crate::pairs;
use glodyne_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// SGNS hyper-parameters. Paper defaults (§5.1.2): `d=128`, window
/// `s=10`, `q=5` negatives; walks provide the corpus.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Sliding-window radius `s`.
    pub window: usize,
    /// Negative samples per positive sample `q`.
    pub negatives: usize,
    /// Passes over the walk corpus per `train` call.
    pub epochs: usize,
    /// Initial learning rate (word2vec default 0.025); decays linearly
    /// to `0.0001` over the scheduled updates.
    pub initial_lr: f32,
    /// RNG seed for initialisation and negative draws.
    pub seed: u64,
    /// Hogwild-parallel training (non-deterministic but fast). When
    /// false, training is sequential and bit-exact reproducible.
    pub parallel: bool,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 128,
            window: 10,
            negatives: 5,
            epochs: 1,
            initial_lr: 0.025,
            seed: 0,
            parallel: true,
        }
    }
}

impl SgnsConfig {
    /// Validate the SGNS hyper-parameters.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::require;
        require(self.dim >= 1, "dim", "must be >= 1")?;
        require(self.window >= 1, "window", "must be >= 1")?;
        require(self.negatives >= 1, "negatives", "must be >= 1")?;
        require(self.epochs >= 1, "epochs", "must be >= 1")?;
        require(
            self.initial_lr.is_finite() && self.initial_lr > 0.0,
            "initial_lr",
            format!("must be a positive finite number, got {}", self.initial_lr),
        )?;
        Ok(())
    }
}

/// Growable two-matrix SGNS model.
#[derive(Debug, Clone)]
pub struct SgnsModel {
    cfg: SgnsConfig,
    vocab: HashMap<NodeId, u32>,
    ids: Vec<NodeId>,
    /// Center ("input") vectors — the embeddings. Row-major `n × d`.
    input: Vec<f32>,
    /// Context ("output") vectors. Row-major `n × d`.
    output: Vec<f32>,
    /// Per-`train`-call corpus frequencies (the unigram table is built
    /// from the *current* corpus `D^t`, per Eq. 9's `P_{D^t}`).
    counts: Vec<u64>,
    init_rng: ChaCha8Rng,
}

impl SgnsModel {
    /// Fresh model with an empty vocabulary.
    pub fn new(cfg: SgnsConfig) -> Self {
        let init_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xD1F3_5A7E);
        SgnsModel {
            cfg,
            vocab: HashMap::new(),
            ids: Vec::new(),
            input: Vec::new(),
            output: Vec::new(),
            counts: Vec::new(),
            init_rng,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SgnsConfig {
        &self.cfg
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.ids.len()
    }

    /// Node ids in model-row order: row `i` of both weight matrices
    /// belongs to `ids()[i]` (= interning order).
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// The context ("output") matrix, row-major `n × d`. Exposed for
    /// checkpointing: the input matrix round-trips through the
    /// persisted embedding, but warm-started training also needs the
    /// context rows to resume bit-exactly.
    pub fn output_weights(&self) -> &[f32] {
        &self.output
    }

    /// Keystream position of the row-initialisation RNG. Checkpointing
    /// this position (instead of the raw cipher state) keeps the
    /// snapshot format independent of the RNG internals: restore
    /// reseeds from the config seed and fast-forwards.
    pub fn init_rng_word_pos(&self) -> u64 {
        self.init_rng.word_pos()
    }

    /// Rebuild a model from checkpointed state: `ids` in row order,
    /// both weight matrices, and the init-RNG keystream position.
    ///
    /// `counts` restores zeroed — it is per-call scratch that every
    /// [`SgnsModel::train_corpus`] resets before use (Eq. 9 samples
    /// negatives from the *current* corpus only), so it carries no
    /// state across steps. The restored model continues training
    /// bit-exactly where the checkpointed one left off (sequential
    /// mode).
    pub fn restore(
        cfg: SgnsConfig,
        ids: Vec<NodeId>,
        input: Vec<f32>,
        output: Vec<f32>,
        init_rng_word_pos: u64,
    ) -> Result<Self, crate::config::ConfigError> {
        use crate::config::require;
        cfg.validate()?;
        let expect = ids.len() * cfg.dim;
        require(
            input.len() == expect,
            "input",
            format!("expected {expect} weights for {} rows", ids.len()),
        )?;
        require(
            output.len() == expect,
            "output",
            format!("expected {expect} weights for {} rows", ids.len()),
        )?;
        let vocab: HashMap<NodeId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        require(
            vocab.len() == ids.len(),
            "ids",
            "duplicate node id in checkpoint",
        )?;
        let mut init_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xD1F3_5A7E);
        init_rng.set_word_pos(init_rng_word_pos);
        let counts = vec![0; ids.len()];
        Ok(SgnsModel {
            cfg,
            vocab,
            ids,
            input,
            output,
            counts,
            init_rng,
        })
    }

    /// Register `id`, creating a randomly-initialised row on first sight
    /// (word2vec init: input uniform in ±0.5/d, output zero).
    fn intern(&mut self, id: NodeId) -> u32 {
        if let Some(&i) = self.vocab.get(&id) {
            return i;
        }
        let i = self.ids.len() as u32;
        self.vocab.insert(id, i);
        self.ids.push(id);
        let d = self.cfg.dim;
        let half = 0.5 / d as f32;
        for _ in 0..d {
            self.input.push(self.init_rng.gen_range(-half..half));
        }
        self.output.extend(std::iter::repeat_n(0.0, d));
        self.counts.push(0);
        i
    }

    /// Legacy entry point: train on materialised `NodeId` walks. A thin
    /// shim that flattens into a [`WalkCorpus`] (interning in first-
    /// occurrence order, as the historical implementation did) and
    /// delegates to [`SgnsModel::train_corpus`]; sequential results are
    /// bit-exact with the corpus path.
    pub fn train(&mut self, walks: &[Vec<NodeId>]) -> usize {
        if walks.is_empty() {
            return 0;
        }
        let corpus = WalkCorpus::from_nodeid_walks(walks);
        self.train_corpus(&corpus)
    }

    /// Train on a flat walk corpus (one incremental step). Returns the
    /// number of positive pairs processed.
    ///
    /// Scheduling: walks are processed in contiguous ranges (~4 per
    /// Hogwild worker). Each range reserves its learning-rate schedule
    /// positions with a single `fetch_add` per walk and reuses one
    /// gradient scratch buffer; with `parallel: false` the single range
    /// `0..num_walks` reproduces the legacy per-pair schedule exactly.
    pub fn train_corpus(&mut self, corpus: &WalkCorpus) -> usize {
        if corpus.is_empty() {
            return 0;
        }
        // Map corpus tokens to model rows, interning each distinct node
        // the first time its token appears (= first-occurrence order in
        // the token stream), and count frequencies. Counts are reset per
        // call: Eq. 9 samples negatives from the unigram distribution of
        // the *current* `D^t`, which also keeps long-dead nodes (AS733
        // churn) out of the negative table.
        self.counts.iter_mut().for_each(|c| *c = 0);
        let node_ids = corpus.node_ids();
        let mut rows = vec![u32::MAX; node_ids.len()];
        for &tok in corpus.tokens() {
            let row = &mut rows[tok as usize];
            if *row == u32::MAX {
                *row = self.intern(node_ids[tok as usize]);
            }
            self.counts[*row as usize] += 1;
        }

        // Unigram^0.75 negative table over the current corpus.
        let weights: Vec<f64> = self.counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let negative_table = AliasTable::new(&weights);

        let total_pairs: usize = corpus
            .walks()
            .map(|w| pairs::pair_count(w.len(), self.cfg.window))
            .sum::<usize>()
            * self.cfg.epochs;
        if total_pairs == 0 {
            return 0;
        }

        let shared = SharedWeights {
            input: UnsafeCell::new(std::mem::take(&mut self.input)),
            output: UnsafeCell::new(std::mem::take(&mut self.output)),
        };
        let progress = AtomicUsize::new(0);
        let cfg = &self.cfg;
        let dim = cfg.dim;
        let rows = &rows;
        // Capture the whole struct reference (not its non-Sync fields)
        // so the closure is Sync via SharedWeights' unsafe impl.
        let shared_ref: &SharedWeights = &shared;

        // One contiguous range of walks, one set of scratch buffers
        // (`scratch` = [gradient accumulator | center-row copy]).
        let run_range = |epoch: usize, walk_lo: usize, walk_hi: usize, scratch: &mut [f32]| {
            // SAFETY: Hogwild — concurrent unsynchronised f32 writes are
            // tolerated by SGD (word2vec). Rows are disjoint per update
            // except when threads collide on a node, which is rare and
            // only perturbs the stochastic gradient.
            let input = unsafe { &mut *shared_ref.input.get() };
            let output = unsafe { &mut *shared_ref.output.get() };
            let (grad_acc, center_buf) = scratch.split_at_mut(dim);
            for wi in walk_lo..walk_hi {
                let walk = corpus.walk(wi);
                let walk_pairs = pairs::pair_count(walk.len(), cfg.window);
                if walk_pairs == 0 {
                    continue;
                }
                // Reserve this walk's slots in the global LR schedule in
                // one shot (the legacy path paid one contended atomic
                // per pair).
                let mut done = progress.fetch_add(walk_pairs, Ordering::Relaxed);
                let mut rng = FastRng::new(
                    cfg.seed
                        .wrapping_add((epoch as u64) << 40)
                        .wrapping_add((wi as u64).wrapping_mul(0x9E37_79B9)),
                );
                let n = walk.len();
                for ci in 0..n {
                    let center = rows[walk[ci] as usize] as usize;
                    let lo = ci.saturating_sub(cfg.window);
                    let hi = (ci + cfg.window).min(n - 1);
                    for xi in lo..=hi {
                        if xi == ci {
                            continue;
                        }
                        let context = rows[walk[xi] as usize] as usize;
                        let lr = (cfg.initial_lr * (1.0 - done as f32 / total_pairs as f32))
                            .max(cfg.initial_lr * 1e-2);
                        done += 1;
                        grad_acc.iter_mut().for_each(|g| *g = 0.0);
                        // Hoist the center row: the input matrix is not
                        // touched again until the pair's final update, so
                        // one copy frees the update loops below from
                        // aliasing `input` and `output` simultaneously.
                        center_buf.copy_from_slice(ci_row(input, center, dim));
                        // positive sample + q negatives
                        for neg in 0..=cfg.negatives {
                            let (target, label) = if neg == 0 {
                                (context, 1.0f32)
                            } else {
                                let t = negative_table.sample(&mut rng);
                                if t == context {
                                    continue;
                                }
                                (t, 0.0f32)
                            };
                            let trow = ci_row_mut(output, target, dim);
                            let mut dot = 0.0f32;
                            for (c, t) in center_buf.iter().zip(trow.iter()) {
                                dot += c * t;
                            }
                            let g = (label - sigmoid_table(dot)) * lr;
                            for ((acc, t), c) in grad_acc
                                .iter_mut()
                                .zip(trow.iter_mut())
                                .zip(center_buf.iter())
                            {
                                *acc += g * *t;
                                *t += g * c;
                            }
                        }
                        let crow = ci_row_mut(input, center, dim);
                        for (w, acc) in crow.iter_mut().zip(grad_acc.iter()) {
                            *w += acc;
                        }
                    }
                }
            }
        };

        let num_walks = corpus.num_walks();
        if cfg.parallel {
            // ~4 ranges per worker: large enough to amortise scratch
            // setup and scheduling, small enough to load-balance.
            let chunk = num_walks
                .div_ceil((rayon::current_num_threads() * 4).max(1))
                .max(1);
            for epoch in 0..cfg.epochs {
                let ranges: Vec<(usize, usize)> = (0..num_walks)
                    .step_by(chunk)
                    .map(|lo| (lo, (lo + chunk).min(num_walks)))
                    .collect();
                ranges.into_par_iter().for_each(|(lo, hi)| {
                    let mut scratch = vec![0.0f32; 2 * dim];
                    run_range(epoch, lo, hi, &mut scratch);
                });
            }
        } else {
            let mut scratch = vec![0.0f32; 2 * dim];
            for epoch in 0..cfg.epochs {
                run_range(epoch, 0, num_walks, &mut scratch);
            }
        }

        self.input = shared.input.into_inner();
        self.output = shared.output.into_inner();
        total_pairs
    }

    /// Current embedding (`Z^t` = the input/center vectors).
    pub fn embedding(&self) -> Embedding {
        let mut e = Embedding::new(self.cfg.dim);
        for (i, &id) in self.ids.iter().enumerate() {
            e.set(id, &self.input[i * self.cfg.dim..(i + 1) * self.cfg.dim]);
        }
        e
    }

    /// Average SGNS loss (negative Eq. 9) over a sample of pairs — a
    /// diagnostic used by tests to check training progress.
    pub fn corpus_loss(&self, walks: &[Vec<NodeId>]) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0xBEEF);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for walk in walks {
            let idx: Vec<Option<&u32>> = walk.iter().map(|id| self.vocab.get(id)).collect();
            for ci in 0..walk.len() {
                let Some(&c) = idx[ci] else { continue };
                let lo = ci.saturating_sub(self.cfg.window);
                let hi = (ci + self.cfg.window).min(walk.len().saturating_sub(1));
                for xi in lo..=hi {
                    if xi == ci {
                        continue;
                    }
                    let Some(&o) = idx[xi] else { continue };
                    let dot = self.dot_io(c as usize, o as usize);
                    total -= (sigmoid32(dot) as f64).max(1e-9).ln();
                    for _ in 0..self.cfg.negatives {
                        let t = rng.gen_range(0..self.ids.len());
                        let dot = self.dot_io(c as usize, t);
                        total -= (1.0 - sigmoid32(dot) as f64).max(1e-9).ln();
                    }
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    fn dot_io(&self, center: usize, target: usize) -> f32 {
        let d = self.cfg.dim;
        let a = &self.input[center * d..(center + 1) * d];
        let b = &self.output[target * d..(target + 1) * d];
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

/// Shared Hogwild weight buffers.
struct SharedWeights {
    input: UnsafeCell<Vec<f32>>,
    output: UnsafeCell<Vec<f32>>,
}
// SAFETY: see the Hogwild comment in `train_corpus` — racy f32 updates
// are an accepted part of the algorithm, as in the reference word2vec
// code.
unsafe impl Sync for SharedWeights {}

#[inline]
fn ci_row(buf: &[f32], row: usize, dim: usize) -> &[f32] {
    &buf[row * dim..(row + 1) * dim]
}

#[inline]
fn ci_row_mut(buf: &mut [f32], row: usize, dim: usize) -> &mut [f32] {
    &mut buf[row * dim..(row + 1) * dim]
}

#[inline]
fn sigmoid32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

const SIGMOID_TABLE_SIZE: usize = 1024;
const SIGMOID_MAX_X: f32 = 6.0;

/// word2vec's EXP_TABLE: σ precomputed over `[-6, 6]` at bucket
/// midpoints. σ saturates to within 2.5e-3 of {0, 1} outside the range,
/// and the ~1e-2 in-range quantisation is far below SGD's noise floor.
static SIGMOID_TABLE: std::sync::LazyLock<[f32; SIGMOID_TABLE_SIZE]> =
    std::sync::LazyLock::new(|| {
        std::array::from_fn(|i| {
            let x = ((i as f32 + 0.5) / SIGMOID_TABLE_SIZE as f32) * (2.0 * SIGMOID_MAX_X)
                - SIGMOID_MAX_X;
            sigmoid32(x)
        })
    });

/// Table-lookup sigmoid for the training hot loop.
#[inline]
fn sigmoid_table(x: f32) -> f32 {
    if x >= SIGMOID_MAX_X {
        1.0
    } else if x <= -SIGMOID_MAX_X {
        0.0
    } else {
        let scale = SIGMOID_TABLE_SIZE as f32 / (2.0 * SIGMOID_MAX_X);
        // The `.min` is load-bearing: for the largest f32 below 6.0,
        // `x + 6.0` rounds up to exactly 12.0 and would index one past
        // the table.
        SIGMOID_TABLE[(((x + SIGMOID_MAX_X) * scale) as usize).min(SIGMOID_TABLE_SIZE - 1)]
    }
}

/// SplitMix64 negative-sampling stream: ~3ns per draw where the block
/// cipher costs ~10× that, and statistically plenty for picking noise
/// samples (reference word2vec uses a bare LCG here). Deterministic per
/// `(seed, epoch, walk)` like the ChaCha stream it replaces.
struct FastRng(u64);

impl FastRng {
    #[inline]
    fn new(seed: u64) -> Self {
        FastRng(seed)
    }
}

impl rand::RngCore for FastRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        crate::walks::splitmix64_next(&mut self.0)
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_cfg(dim: usize) -> SgnsConfig {
        SgnsConfig {
            dim,
            window: 2,
            negatives: 3,
            epochs: 5,
            initial_lr: 0.05,
            seed: 1,
            parallel: false,
        }
    }

    /// Walks alternating inside two disjoint "communities".
    fn two_community_walks() -> Vec<Vec<NodeId>> {
        let mut walks = Vec::new();
        for rep in 0..30 {
            let a: Vec<NodeId> = (0..10).map(|i| NodeId((rep + i) % 5)).collect();
            let b: Vec<NodeId> = (0..10).map(|i| NodeId(5 + (rep + i) % 5)).collect();
            walks.push(a);
            walks.push(b);
        }
        walks
    }

    #[test]
    fn vocabulary_grows_with_corpus() {
        let mut m = SgnsModel::new(seq_cfg(8));
        m.train(&[vec![NodeId(0), NodeId(1), NodeId(2)]]);
        assert_eq!(m.vocab_len(), 3);
        m.train(&[vec![NodeId(2), NodeId(3)]]);
        assert_eq!(m.vocab_len(), 4);
    }

    #[test]
    fn training_reduces_loss() {
        let walks = two_community_walks();
        let mut m = SgnsModel::new(seq_cfg(16));
        m.train(&walks[..2]); // intern vocab, minimal training
        let before = m.corpus_loss(&walks);
        m.train(&walks);
        m.train(&walks);
        let after = m.corpus_loss(&walks);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let walks = two_community_walks();
        let mut m = SgnsModel::new(SgnsConfig {
            epochs: 20,
            ..seq_cfg(16)
        });
        m.train(&walks);
        let e = m.embedding();
        let intra = e.cosine(NodeId(0), NodeId(1)).unwrap();
        let inter = e.cosine(NodeId(0), NodeId(6)).unwrap();
        assert!(
            intra > inter,
            "intra-community cosine {intra} should exceed inter {inter}"
        );
    }

    #[test]
    fn sequential_training_is_deterministic() {
        let walks = two_community_walks();
        let run = || {
            let mut m = SgnsModel::new(seq_cfg(8));
            m.train(&walks);
            m.embedding()
        };
        let (a, b) = (run(), run());
        for (id, va) in a.iter() {
            assert_eq!(va, b.get(id).unwrap());
        }
    }

    #[test]
    fn train_corpus_bit_exact_with_legacy_shim() {
        // The shim flattens `NodeId` walks into a corpus; feeding an
        // equivalent corpus directly must produce identical bits in
        // sequential mode (same intern order, same LR schedule, same
        // RNG streams).
        let walks = two_community_walks();
        let mut via_shim = SgnsModel::new(seq_cfg(8));
        let shim_pairs = via_shim.train(&walks);

        let corpus = WalkCorpus::from_nodeid_walks(&walks);
        let mut via_corpus = SgnsModel::new(seq_cfg(8));
        let corpus_pairs = via_corpus.train_corpus(&corpus);

        assert_eq!(shim_pairs, corpus_pairs);
        let (a, b) = (via_shim.embedding(), via_corpus.embedding());
        assert_eq!(a.len(), b.len());
        for (id, va) in a.iter() {
            assert_eq!(va, b.get(id).unwrap(), "row for {id} diverged");
        }
    }

    #[test]
    fn incremental_train_corpus_warm_starts_like_train() {
        // Two-step incremental run through both entry points.
        let step1 = two_community_walks();
        let step2 = vec![vec![NodeId(0), NodeId(9), NodeId(0), NodeId(9)]];
        let mut shim = SgnsModel::new(seq_cfg(8));
        shim.train(&step1);
        shim.train(&step2);
        let mut direct = SgnsModel::new(seq_cfg(8));
        direct.train_corpus(&WalkCorpus::from_nodeid_walks(&step1));
        direct.train_corpus(&WalkCorpus::from_nodeid_walks(&step2));
        for (id, va) in shim.embedding().iter() {
            assert_eq!(va, direct.embedding().get(id).unwrap());
        }
    }

    #[test]
    fn incremental_training_preserves_old_vectors_roughly() {
        // Warm-start: vectors of untouched nodes must be identical after
        // a second train call on a disjoint corpus.
        let mut m = SgnsModel::new(seq_cfg(8));
        m.train(&two_community_walks());
        let before = m.embedding();
        m.train(&[vec![NodeId(100), NodeId(101), NodeId(100), NodeId(101)]]);
        let after = m.embedding();
        // old node 0..4 only move if they were sampled as negatives; with
        // a tiny new corpus the drift must be small
        let drift: f32 = before
            .iter()
            .map(|(id, v)| {
                let w = after.get(id).unwrap();
                v.iter().zip(w).map(|(a, b)| (a - b).abs()).sum::<f32>()
            })
            .sum();
        assert!(drift < 1.0, "warm-start drift too large: {drift}");
        assert!(after.get(NodeId(100)).is_some());
    }

    #[test]
    fn restore_resumes_training_bit_exactly() {
        // Checkpoint after step 1, restore, run step 2 on both the
        // original and the restored model. Step 2 introduces a brand
        // new node, so the restored init-RNG must be at the exact
        // keystream position the original left it at.
        let step1 = two_community_walks();
        let step2 = vec![vec![NodeId(0), NodeId(42), NodeId(9), NodeId(42)]];
        let mut original = SgnsModel::new(seq_cfg(8));
        original.train(&step1);

        let ids = original.ids().to_vec();
        let emb = original.embedding();
        let input: Vec<f32> = ids
            .iter()
            .flat_map(|&id| emb.get(id).unwrap().iter().copied())
            .collect();
        let mut restored = SgnsModel::restore(
            seq_cfg(8),
            ids,
            input,
            original.output_weights().to_vec(),
            original.init_rng_word_pos(),
        )
        .unwrap();

        original.train(&step2);
        restored.train(&step2);
        assert_eq!(original.vocab_len(), restored.vocab_len());
        for (id, va) in original.embedding().iter() {
            assert_eq!(va, restored.embedding().get(id).unwrap(), "row {id}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_weights() {
        assert!(
            SgnsModel::restore(seq_cfg(8), vec![NodeId(1)], vec![0.0; 4], vec![0.0; 8], 0).is_err()
        );
        assert!(SgnsModel::restore(
            seq_cfg(8),
            vec![NodeId(1), NodeId(1)],
            vec![0.0; 16],
            vec![0.0; 16],
            0
        )
        .is_err());
    }

    #[test]
    fn empty_corpus_is_noop() {
        let mut m = SgnsModel::new(seq_cfg(4));
        assert_eq!(m.train(&[]), 0);
        assert_eq!(m.vocab_len(), 0);
        assert_eq!(m.train_corpus(&WalkCorpus::from_nodeid_walks(&[])), 0);
        assert_eq!(m.vocab_len(), 0);
    }

    #[test]
    fn parallel_training_matches_quality() {
        let walks = two_community_walks();
        let mut m = SgnsModel::new(SgnsConfig {
            parallel: true,
            epochs: 20,
            ..seq_cfg(16)
        });
        m.train(&walks);
        let e = m.embedding();
        let intra = e.cosine(NodeId(0), NodeId(1)).unwrap();
        let inter = e.cosine(NodeId(0), NodeId(6)).unwrap();
        assert!(intra > inter);
    }

    #[test]
    fn parallel_train_corpus_matches_quality() {
        let walks = two_community_walks();
        let corpus = WalkCorpus::from_nodeid_walks(&walks);
        let mut m = SgnsModel::new(SgnsConfig {
            parallel: true,
            epochs: 20,
            ..seq_cfg(16)
        });
        m.train_corpus(&corpus);
        let e = m.embedding();
        let intra = e.cosine(NodeId(0), NodeId(1)).unwrap();
        let inter = e.cosine(NodeId(0), NodeId(6)).unwrap();
        assert!(intra > inter);
    }
}
