//! The incremental Skip-Gram Negative Sampling model (Eq. 6–11).
//!
//! The model holds two weight matrices ("input"/center vectors — the
//! embeddings `Z` — and "output"/context vectors) over a growable
//! vocabulary of [`NodeId`]s. Training maximises Eq. 9/10 with SGD:
//!
//! ```text
//! max log σ(Z_i · Z'_j) + Σ_q E_{j'~P_D} [log σ(−Z_i · Z'_j')]
//! ```
//!
//! Negatives are drawn from the unigram distribution of the current
//! corpus raised to the 3/4 power (word2vec's `P_D`). The incremental
//! paradigm (Eq. 11) falls out naturally: call [`SgnsModel::train`]
//! again with a new corpus — existing vectors are reused (`f^t = f^{t-1}`,
//! Algorithm 1 line 17) and new nodes get fresh random rows.
//!
//! Parallelism is word2vec-style Hogwild: threads update the shared
//! matrices without locks. Races lose the occasional update, which SGD
//! tolerates; set [`SgnsConfig::parallel`] to `false` for bit-exact
//! deterministic runs (tests, debugging).

use crate::alias::AliasTable;
use crate::embedding::Embedding;
use crate::pairs;
use glodyne_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// SGNS hyper-parameters. Paper defaults (§5.1.2): `d=128`, window
/// `s=10`, `q=5` negatives; walks provide the corpus.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Sliding-window radius `s`.
    pub window: usize,
    /// Negative samples per positive sample `q`.
    pub negatives: usize,
    /// Passes over the walk corpus per `train` call.
    pub epochs: usize,
    /// Initial learning rate (word2vec default 0.025); decays linearly
    /// to `0.0001` over the scheduled updates.
    pub initial_lr: f32,
    /// RNG seed for initialisation and negative draws.
    pub seed: u64,
    /// Hogwild-parallel training (non-deterministic but fast). When
    /// false, training is sequential and bit-exact reproducible.
    pub parallel: bool,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 128,
            window: 10,
            negatives: 5,
            epochs: 1,
            initial_lr: 0.025,
            seed: 0,
            parallel: true,
        }
    }
}

/// Growable two-matrix SGNS model.
#[derive(Debug, Clone)]
pub struct SgnsModel {
    cfg: SgnsConfig,
    vocab: HashMap<NodeId, u32>,
    ids: Vec<NodeId>,
    /// Center ("input") vectors — the embeddings. Row-major `n × d`.
    input: Vec<f32>,
    /// Context ("output") vectors. Row-major `n × d`.
    output: Vec<f32>,
    /// Per-`train`-call corpus frequencies (the unigram table is built
    /// from the *current* corpus `D^t`, per Eq. 9's `P_{D^t}`).
    counts: Vec<u64>,
    init_rng: ChaCha8Rng,
}

impl SgnsModel {
    /// Fresh model with an empty vocabulary.
    pub fn new(cfg: SgnsConfig) -> Self {
        let init_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xD1F3_5A7E);
        SgnsModel {
            cfg,
            vocab: HashMap::new(),
            ids: Vec::new(),
            input: Vec::new(),
            output: Vec::new(),
            counts: Vec::new(),
            init_rng,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SgnsConfig {
        &self.cfg
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.ids.len()
    }

    /// Register `id`, creating a randomly-initialised row on first sight
    /// (word2vec init: input uniform in ±0.5/d, output zero).
    fn intern(&mut self, id: NodeId) -> u32 {
        if let Some(&i) = self.vocab.get(&id) {
            return i;
        }
        let i = self.ids.len() as u32;
        self.vocab.insert(id, i);
        self.ids.push(id);
        let d = self.cfg.dim;
        let half = 0.5 / d as f32;
        for _ in 0..d {
            self.input.push(self.init_rng.gen_range(-half..half));
        }
        self.output.extend(std::iter::repeat_n(0.0, d));
        self.counts.push(0);
        i
    }

    /// Train on a walk corpus (one incremental step). Returns the number
    /// of positive pairs processed.
    pub fn train(&mut self, walks: &[Vec<NodeId>]) -> usize {
        if walks.is_empty() {
            return 0;
        }
        // Intern corpus, count frequencies, and translate to indices.
        // Counts are reset per call: Eq. 9 samples negatives from the
        // unigram distribution of the *current* `D^t`, which also keeps
        // long-dead nodes (AS733 churn) out of the negative table.
        self.counts.iter_mut().for_each(|c| *c = 0);
        let indexed: Vec<Vec<u32>> = walks
            .iter()
            .map(|walk| {
                walk.iter()
                    .map(|&id| {
                        let i = self.intern(id);
                        self.counts[i as usize] += 1;
                        i
                    })
                    .collect()
            })
            .collect();

        // Unigram^0.75 negative table over the current corpus.
        let weights: Vec<f64> = self
            .counts
            .iter()
            .map(|&c| (c as f64).powf(0.75))
            .collect();
        let negative_table = AliasTable::new(&weights);

        let total_pairs: usize = indexed
            .iter()
            .map(|w| pairs::pair_count(w.len(), self.cfg.window))
            .sum::<usize>()
            * self.cfg.epochs;
        if total_pairs == 0 {
            return 0;
        }

        let shared = SharedWeights {
            input: UnsafeCell::new(std::mem::take(&mut self.input)),
            output: UnsafeCell::new(std::mem::take(&mut self.output)),
        };
        let progress = AtomicUsize::new(0);
        let cfg = &self.cfg;
        let dim = cfg.dim;
        // Capture the whole struct reference (not its non-Sync fields)
        // so the closure is Sync via SharedWeights' unsafe impl.
        let shared_ref: &SharedWeights = &shared;

        let run_walk = |epoch: usize, wi: usize, walk: &Vec<u32>| {
            // SAFETY: Hogwild — concurrent unsynchronised f32 writes are
            // tolerated by SGD (word2vec). Rows are disjoint per update
            // except when threads collide on a node, which is rare and
            // only perturbs the stochastic gradient.
            let input = unsafe { &mut *shared_ref.input.get() };
            let output = unsafe { &mut *shared_ref.output.get() };
            let mut rng = ChaCha8Rng::seed_from_u64(
                cfg.seed
                    .wrapping_add((epoch as u64) << 40)
                    .wrapping_add((wi as u64).wrapping_mul(0x9E37_79B9)),
            );
            let mut grad_acc = vec![0.0f32; dim];
            let n = walk.len();
            for ci in 0..n {
                let center = walk[ci] as usize;
                let lo = ci.saturating_sub(cfg.window);
                let hi = (ci + cfg.window).min(n - 1);
                for xi in lo..=hi {
                    if xi == ci {
                        continue;
                    }
                    let context = walk[xi] as usize;
                    let done = progress.fetch_add(1, Ordering::Relaxed);
                    let lr = (cfg.initial_lr
                        * (1.0 - done as f32 / total_pairs as f32))
                        .max(cfg.initial_lr * 1e-2);
                    grad_acc.iter_mut().for_each(|g| *g = 0.0);
                    let crow = ci_row(input, center, dim);
                    // positive sample + q negatives
                    for neg in 0..=cfg.negatives {
                        let (target, label) = if neg == 0 {
                            (context, 1.0f32)
                        } else {
                            let t = negative_table.sample(&mut rng);
                            if t == context {
                                continue;
                            }
                            (t, 0.0f32)
                        };
                        let trow = ci_row(output, target, dim);
                        let mut dot = 0.0f32;
                        for k in 0..dim {
                            dot += crow[k] * trow[k];
                        }
                        let g = (label - sigmoid32(dot)) * lr;
                        for k in 0..dim {
                            grad_acc[k] += g * trow[k];
                        }
                        let trow = ci_row_mut(output, target, dim);
                        for k in 0..dim {
                            trow[k] += g * crow_cached(input, center, dim, k);
                        }
                    }
                    let crow = ci_row_mut(input, center, dim);
                    for k in 0..dim {
                        crow[k] += grad_acc[k];
                    }
                }
            }
        };

        for epoch in 0..cfg.epochs {
            if cfg.parallel {
                indexed
                    .par_iter()
                    .enumerate()
                    .for_each(|(wi, walk)| run_walk(epoch, wi, walk));
            } else {
                for (wi, walk) in indexed.iter().enumerate() {
                    run_walk(epoch, wi, walk);
                }
            }
        }

        self.input = shared.input.into_inner();
        self.output = shared.output.into_inner();
        total_pairs
    }

    /// Current embedding (`Z^t` = the input/center vectors).
    pub fn embedding(&self) -> Embedding {
        let mut e = Embedding::new(self.cfg.dim);
        for (i, &id) in self.ids.iter().enumerate() {
            e.set(id, &self.input[i * self.cfg.dim..(i + 1) * self.cfg.dim]);
        }
        e
    }

    /// Average SGNS loss (negative Eq. 9) over a sample of pairs — a
    /// diagnostic used by tests to check training progress.
    pub fn corpus_loss(&self, walks: &[Vec<NodeId>]) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed ^ 0xBEEF);
        let mut total = 0.0f64;
        let mut count = 0usize;
        for walk in walks {
            let idx: Vec<Option<&u32>> = walk.iter().map(|id| self.vocab.get(id)).collect();
            for ci in 0..walk.len() {
                let Some(&c) = idx[ci] else { continue };
                let lo = ci.saturating_sub(self.cfg.window);
                let hi = (ci + self.cfg.window).min(walk.len().saturating_sub(1));
                for xi in lo..=hi {
                    if xi == ci {
                        continue;
                    }
                    let Some(&o) = idx[xi] else { continue };
                    let dot = self.dot_io(c as usize, o as usize);
                    total -= (sigmoid32(dot) as f64).max(1e-9).ln();
                    for _ in 0..self.cfg.negatives {
                        let t = rng.gen_range(0..self.ids.len());
                        let dot = self.dot_io(c as usize, t);
                        total -= (1.0 - sigmoid32(dot) as f64).max(1e-9).ln();
                    }
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    fn dot_io(&self, center: usize, target: usize) -> f32 {
        let d = self.cfg.dim;
        let a = &self.input[center * d..(center + 1) * d];
        let b = &self.output[target * d..(target + 1) * d];
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

/// Shared Hogwild weight buffers.
struct SharedWeights {
    input: UnsafeCell<Vec<f32>>,
    output: UnsafeCell<Vec<f32>>,
}
// SAFETY: see the Hogwild comment in `train` — racy f32 updates are an
// accepted part of the algorithm, as in the reference word2vec code.
unsafe impl Sync for SharedWeights {}

#[inline]
fn ci_row(buf: &[f32], row: usize, dim: usize) -> &[f32] {
    &buf[row * dim..(row + 1) * dim]
}

#[inline]
fn ci_row_mut(buf: &mut [f32], row: usize, dim: usize) -> &mut [f32] {
    &mut buf[row * dim..(row + 1) * dim]
}

#[inline]
fn crow_cached(buf: &[f32], row: usize, dim: usize, k: usize) -> f32 {
    buf[row * dim + k]
}

#[inline]
fn sigmoid32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_cfg(dim: usize) -> SgnsConfig {
        SgnsConfig {
            dim,
            window: 2,
            negatives: 3,
            epochs: 5,
            initial_lr: 0.05,
            seed: 1,
            parallel: false,
        }
    }

    /// Walks alternating inside two disjoint "communities".
    fn two_community_walks() -> Vec<Vec<NodeId>> {
        let mut walks = Vec::new();
        for rep in 0..30 {
            let a: Vec<NodeId> = (0..10).map(|i| NodeId((rep + i) % 5)).collect();
            let b: Vec<NodeId> = (0..10).map(|i| NodeId(5 + (rep + i) % 5)).collect();
            walks.push(a);
            walks.push(b);
        }
        walks
    }

    #[test]
    fn vocabulary_grows_with_corpus() {
        let mut m = SgnsModel::new(seq_cfg(8));
        m.train(&[vec![NodeId(0), NodeId(1), NodeId(2)]]);
        assert_eq!(m.vocab_len(), 3);
        m.train(&[vec![NodeId(2), NodeId(3)]]);
        assert_eq!(m.vocab_len(), 4);
    }

    #[test]
    fn training_reduces_loss() {
        let walks = two_community_walks();
        let mut m = SgnsModel::new(seq_cfg(16));
        m.train(&walks[..2]); // intern vocab, minimal training
        let before = m.corpus_loss(&walks);
        m.train(&walks);
        m.train(&walks);
        let after = m.corpus_loss(&walks);
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let walks = two_community_walks();
        let mut m = SgnsModel::new(SgnsConfig {
            epochs: 20,
            ..seq_cfg(16)
        });
        m.train(&walks);
        let e = m.embedding();
        let intra = e.cosine(NodeId(0), NodeId(1)).unwrap();
        let inter = e.cosine(NodeId(0), NodeId(6)).unwrap();
        assert!(
            intra > inter,
            "intra-community cosine {intra} should exceed inter {inter}"
        );
    }

    #[test]
    fn sequential_training_is_deterministic() {
        let walks = two_community_walks();
        let run = || {
            let mut m = SgnsModel::new(seq_cfg(8));
            m.train(&walks);
            m.embedding()
        };
        let (a, b) = (run(), run());
        for (id, va) in a.iter() {
            assert_eq!(va, b.get(id).unwrap());
        }
    }

    #[test]
    fn incremental_training_preserves_old_vectors_roughly() {
        // Warm-start: vectors of untouched nodes must be identical after
        // a second train call on a disjoint corpus.
        let mut m = SgnsModel::new(seq_cfg(8));
        m.train(&two_community_walks());
        let before = m.embedding();
        m.train(&[vec![NodeId(100), NodeId(101), NodeId(100), NodeId(101)]]);
        let after = m.embedding();
        // old node 0..4 only move if they were sampled as negatives; with
        // a tiny new corpus the drift must be small
        let drift: f32 = before
            .iter()
            .map(|(id, v)| {
                let w = after.get(id).unwrap();
                v.iter().zip(w).map(|(a, b)| (a - b).abs()).sum::<f32>()
            })
            .sum();
        assert!(drift < 1.0, "warm-start drift too large: {drift}");
        assert!(after.get(NodeId(100)).is_some());
    }

    #[test]
    fn empty_corpus_is_noop() {
        let mut m = SgnsModel::new(seq_cfg(4));
        assert_eq!(m.train(&[]), 0);
        assert_eq!(m.vocab_len(), 0);
    }

    #[test]
    fn parallel_training_matches_quality() {
        let walks = two_community_walks();
        let mut m = SgnsModel::new(SgnsConfig {
            parallel: true,
            epochs: 20,
            ..seq_cfg(16)
        });
        m.train(&walks);
        let e = m.embedding();
        let intra = e.cosine(NodeId(0), NodeId(1)).unwrap();
        let inter = e.cosine(NodeId(0), NodeId(6)).unwrap();
        assert!(intra > inter);
    }
}
