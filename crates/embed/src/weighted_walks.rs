//! Weighted truncated random walks — the general case of Eq. 5:
//! `P(v_j | v_i) = w_ij / Σ_{j'∈N(v_i)} w_ij'`.
//!
//! Per-node alias tables give O(1) transitions after an O(|E|) build,
//! matching the complexity accounting of §4.3.

use crate::alias::AliasTable;
use glodyne_graph::weighted::WeightedSnapshot;
use glodyne_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// A weighted walker over one snapshot: alias table per node.
pub struct WeightedWalker<'a> {
    snapshot: &'a WeightedSnapshot,
    tables: Vec<Option<AliasTable>>,
}

impl<'a> WeightedWalker<'a> {
    /// Precompute transition tables for every node.
    pub fn new(snapshot: &'a WeightedSnapshot) -> Self {
        let n = snapshot.topology().num_nodes();
        let tables = (0..n)
            .map(|l| {
                let w = snapshot.neighbor_weights(l);
                if w.is_empty() {
                    None
                } else {
                    Some(AliasTable::new(w))
                }
            })
            .collect();
        WeightedWalker { snapshot, tables }
    }

    /// One weighted walk of `length` nodes from a local index.
    pub fn walk(&self, start: usize, length: usize, rng: &mut impl Rng) -> Vec<NodeId> {
        let t = self.snapshot.topology();
        let mut walk = Vec::with_capacity(length);
        let mut cur = start;
        walk.push(t.node_id(cur));
        for _ in 1..length {
            let Some(table) = &self.tables[cur] else {
                break;
            };
            let pos = table.sample(rng);
            cur = t.neighbors(cur)[pos] as usize;
            walk.push(t.node_id(cur));
        }
        walk
    }

    /// `r` walks from each start node, in parallel, deterministically
    /// seeded per (start, repetition).
    pub fn generate(
        &self,
        starts: &[u32],
        walks_per_node: usize,
        length: usize,
        seed: u64,
    ) -> Vec<Vec<NodeId>> {
        starts
            .par_iter()
            .flat_map_iter(|&start| {
                (0..walks_per_node).map(move |rep| {
                    let mut rng = ChaCha8Rng::seed_from_u64(
                        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
                            .wrapping_add((start as u64) << 18)
                            .wrapping_add(rep as u64),
                    );
                    self.walk(start as usize, length, &mut rng)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::weighted::WeightedEdge;

    fn wsnap(edges: &[(u32, u32, f64)]) -> WeightedSnapshot {
        let es: Vec<WeightedEdge> = edges
            .iter()
            .map(|&(a, b, w)| WeightedEdge::new(NodeId(a), NodeId(b), w))
            .collect();
        WeightedSnapshot::from_edges(&es)
    }

    #[test]
    fn transitions_follow_weights() {
        // node 0 connects to 1 (weight 9) and 2 (weight 1): ~90/10 split.
        let g = wsnap(&[(0, 1, 9.0), (0, 2, 1.0)]);
        let walker = WeightedWalker::new(&g);
        let start = g.topology().local_of(NodeId(0)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut to_1 = 0;
        for _ in 0..2000 {
            let w = walker.walk(start, 2, &mut rng);
            if w[1] == NodeId(1) {
                to_1 += 1;
            }
        }
        let frac = to_1 as f64 / 2000.0;
        assert!((frac - 0.9).abs() < 0.03, "heavy edge taken {frac}");
    }

    #[test]
    fn uniform_weights_behave_like_unweighted() {
        let g = wsnap(&[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]);
        let walker = WeightedWalker::new(&g);
        let start = g.topology().local_of(NodeId(0)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..3000 {
            let w = walker.walk(start, 2, &mut rng);
            *counts.entry(w[1]).or_insert(0usize) += 1;
        }
        for (_, c) in counts {
            assert!((c as f64 / 3000.0 - 1.0 / 3.0).abs() < 0.04);
        }
    }

    #[test]
    fn walks_are_edge_valid_and_deterministic() {
        let g = wsnap(&[(0, 1, 2.0), (1, 2, 1.0), (2, 0, 0.5), (2, 3, 4.0)]);
        let walker = WeightedWalker::new(&g);
        let starts: Vec<u32> = (0..g.topology().num_nodes() as u32).collect();
        let a = walker.generate(&starts, 3, 10, 7);
        let b = walker.generate(&starts, 3, 10, 7);
        assert_eq!(a, b);
        for w in &a {
            for pair in w.windows(2) {
                assert!(g.topology().has_edge_ids(pair[0], pair[1]));
            }
        }
    }
}
