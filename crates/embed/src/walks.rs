//! Truncated random walks (Step 3, Eq. 5).
//!
//! For an unweighted snapshot the transition probability of Eq. 5 is
//! uniform over the current node's neighbours — a DeepWalk-style walker.
//! Walk generation is embarrassingly parallel; we fan out over walks
//! with rayon, seeding each walk's RNG from a SplitMix64 mix of
//! `(seed, start, rep)` so that results are independent of thread
//! scheduling and distinct configured seeds yield distinct streams.
//!
//! Two output formats:
//! - [`generate_corpus`] / [`generate_corpus_all`] — the **flat path**:
//!   walk lengths are known up front (a walk stops early only at an
//!   isolated *start*, because an undirected edge can never lead to a
//!   degree-0 node), so the token arena of a [`WalkCorpus`] is pre-sized
//!   exactly and each walk is written in parallel into its own disjoint
//!   slice. No per-walk allocation, no `NodeId` hashing.
//! - [`generate_walks`] / [`generate_walks_all`] — the **legacy path**
//!   returning `Vec<Vec<NodeId>>`, kept for the compatibility shim and
//!   as the old-pipeline baseline in benchmarks. Walk contents are
//!   identical to the flat path for the same configuration.

use crate::corpus::WalkCorpus;
use glodyne_graph::{NodeId, Snapshot};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Walk-generation parameters: `r` walks of length `l` per start node.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Walks per start node (`r`, paper default 10).
    pub walks_per_node: usize,
    /// Nodes per walk including the start (`l`, paper default 80).
    pub walk_length: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_node: 10,
            walk_length: 80,
            seed: 0,
        }
    }
}

impl WalkConfig {
    /// Validate the walk parameters: at least one walk per node and a
    /// walk length of at least one node (the start itself).
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        crate::config::require(self.walks_per_node >= 1, "walks_per_node", "must be >= 1")?;
        crate::config::require(self.walk_length >= 1, "walk_length", "must be >= 1")?;
        Ok(())
    }
}

/// Advance a SplitMix64 state and return the next output. Shared by
/// the per-walk seed mixing below, the SGNS negative-sampling stream,
/// the IVF centroid initialisation in `glodyne-ann`, and the bench
/// data generators — the single home of the SplitMix64 constants in
/// this workspace.
#[inline]
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless one-shot SplitMix64 mix of `z`.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    splitmix64_next(&mut z)
}

/// Per-walk RNG seed: a SplitMix64 chain over `(seed, start, rep)`.
///
/// The previous scheme multiplied `seed` by a constant, so the default
/// `seed = 0` collapsed every configured stream onto one that depended
/// only on `(start, rep)`. Chaining through SplitMix64 keeps all three
/// inputs live regardless of their values.
#[inline]
pub fn walk_rng_seed(seed: u64, start: u64, rep: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed) ^ start) ^ rep)
}

/// One truncated random walk from `start` (a local index); output is
/// global [`NodeId`]s. A walk stops early only at an isolated node.
pub fn random_walk(g: &Snapshot, start: usize, length: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length);
    let mut cur = start;
    walk.push(g.node_id(cur));
    for _ in 1..length {
        let ns = g.neighbors(cur);
        if ns.is_empty() {
            break;
        }
        cur = ns[rng.gen_range(0..ns.len())] as usize;
        walk.push(g.node_id(cur));
    }
    walk
}

/// Write one walk of local-index tokens into `out`, whose length must
/// already equal the walk's exact length (see [`walk_len`]). Draws the
/// same RNG sequence as [`random_walk`], so both paths produce identical
/// node sequences for the same seed.
fn random_walk_into(g: &Snapshot, start: usize, out: &mut [u32], rng: &mut impl Rng) {
    let mut cur = start;
    out[0] = start as u32;
    for slot in out[1..].iter_mut() {
        let ns = g.neighbors(cur);
        cur = ns[rng.gen_range(0..ns.len())] as usize;
        *slot = cur as u32;
    }
}

/// Exact length of a walk from `start`: `l`, unless the start is
/// isolated (degree 0), in which case the walk is just the start itself.
/// Mid-walk early stops are impossible on an undirected snapshot — every
/// node reached over an edge has that edge back, hence degree ≥ 1.
#[inline]
fn walk_len(g: &Snapshot, start: usize, l: usize) -> usize {
    if g.degree(start) == 0 {
        1
    } else {
        l
    }
}

/// Generate `r` walks from every node in `starts` (local indices)
/// directly into a flat [`WalkCorpus`] arena, in parallel.
/// Deterministic for a fixed config regardless of thread count.
pub fn generate_corpus(g: &Snapshot, starts: &[u32], cfg: &WalkConfig) -> WalkCorpus {
    let r = cfg.walks_per_node;
    let l = cfg.walk_length.max(1);
    let num_walks = starts.len() * r;

    // Pre-size the arena: every walk's length is known a priori.
    let mut offsets = Vec::with_capacity(num_walks + 1);
    offsets.push(0usize);
    let mut total = 0usize;
    for &start in starts {
        let len = walk_len(g, start as usize, l);
        for _ in 0..r {
            total += len;
            offsets.push(total);
        }
    }
    let mut tokens = crate::aligned::AlignedBuf::zeroed(total);

    // Carve the arena into one disjoint slice per walk, then fill the
    // slices in parallel.
    let mut slices: Vec<&mut [u32]> = Vec::with_capacity(num_walks);
    let mut rest: &mut [u32] = tokens.as_mut_slice();
    for w in 0..num_walks {
        let len = offsets[w + 1] - offsets[w];
        let (head, tail) = rest.split_at_mut(len);
        slices.push(head);
        rest = tail;
    }
    slices.into_par_iter().enumerate().for_each(|(w, slice)| {
        let start = starts[w / r];
        let rep = w % r;
        let mut rng = ChaCha8Rng::seed_from_u64(walk_rng_seed(cfg.seed, start as u64, rep as u64));
        random_walk_into(g, start as usize, slice, &mut rng);
    });

    WalkCorpus::from_raw_parts(tokens, offsets, g.node_ids().to_vec())
}

/// Flat-corpus walks from *all* nodes — the offline stage (`V^0_all`,
/// Algorithm 1 line 2) and the SGNS-retrain/increment variants.
pub fn generate_corpus_all(g: &Snapshot, cfg: &WalkConfig) -> WalkCorpus {
    let starts: Vec<u32> = (0..g.num_nodes() as u32).collect();
    generate_corpus(g, &starts, cfg)
}

/// Legacy path: `r` walks from every node in `starts` as one `Vec` per
/// walk. Kept for the `train` compatibility shim and as the old-pipeline
/// baseline in benchmarks; new call sites should prefer
/// [`generate_corpus`].
pub fn generate_walks(g: &Snapshot, starts: &[u32], cfg: &WalkConfig) -> Vec<Vec<NodeId>> {
    starts
        .par_iter()
        .flat_map_iter(|&start| {
            (0..cfg.walks_per_node).map(move |rep| {
                let mut rng =
                    ChaCha8Rng::seed_from_u64(walk_rng_seed(cfg.seed, start as u64, rep as u64));
                random_walk(g, start as usize, cfg.walk_length, &mut rng)
            })
        })
        .collect()
}

/// Legacy-path walks from *all* nodes.
pub fn generate_walks_all(g: &Snapshot, cfg: &WalkConfig) -> Vec<Vec<NodeId>> {
    let starts: Vec<u32> = (0..g.num_nodes() as u32).collect();
    generate_walks(g, &starts, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::Edge;

    fn ring(n: u32) -> Snapshot {
        let edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn walk_has_requested_length() {
        let g = ring(10);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = random_walk(&g, 0, 15, &mut rng);
        assert_eq!(w.len(), 15);
    }

    #[test]
    fn consecutive_walk_nodes_are_adjacent() {
        let g = ring(12);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = random_walk(&g, 3, 30, &mut rng);
        for pair in w.windows(2) {
            assert!(
                g.has_edge_ids(pair[0], pair[1]),
                "{} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn isolated_node_walk_stops() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[NodeId(9)]);
        let iso = g.local_of(NodeId(9)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let w = random_walk(&g, iso, 10, &mut rng);
        assert_eq!(w, vec![NodeId(9)]);
    }

    #[test]
    fn generate_walks_counts() {
        let g = ring(8);
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 5,
            seed: 7,
        };
        let walks = generate_walks_all(&g, &cfg);
        assert_eq!(walks.len(), 24);
        assert!(walks.iter().all(|w| w.len() == 5));
    }

    #[test]
    fn walks_are_deterministic_across_runs() {
        let g = ring(16);
        let cfg = WalkConfig::default();
        let a = generate_walks(&g, &[0, 5, 9], &cfg);
        let b = generate_walks(&g, &[0, 5, 9], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = ring(16);
        let a = generate_walks(
            &g,
            &[0],
            &WalkConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let b = generate_walks(
            &g,
            &[0],
            &WalkConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_no_longer_collapses_the_stream() {
        // Regression: the old mixing multiplied `seed` by a constant, so
        // the default seed 0 contributed nothing to the per-walk seed —
        // the stream was a function of `(start, rep)` alone, with the
        // seed's entropy confined to a single linear offset for other
        // values. The SplitMix chain keeps all three inputs live.
        let g = ring(16);
        let zero = generate_walks(
            &g,
            &[0, 1],
            &WalkConfig {
                seed: 0,
                ..Default::default()
            },
        );
        let one = generate_walks(
            &g,
            &[0, 1],
            &WalkConfig {
                seed: 1,
                ..Default::default()
            },
        );
        assert_ne!(zero, one);
        // And the raw mix itself keeps all three inputs live.
        assert_ne!(walk_rng_seed(0, 3, 1), walk_rng_seed(1, 3, 1));
        assert_ne!(walk_rng_seed(0, 3, 1), walk_rng_seed(0, 4, 1));
        assert_ne!(walk_rng_seed(0, 3, 1), walk_rng_seed(0, 3, 2));
    }

    #[test]
    fn walker_visits_whole_ring_eventually() {
        let g = ring(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = random_walk(&g, 0, 500, &mut rng);
        let distinct: std::collections::HashSet<_> = w.into_iter().collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn corpus_matches_legacy_walks() {
        let g = ring(20);
        let cfg = WalkConfig {
            walks_per_node: 4,
            walk_length: 12,
            seed: 5,
        };
        let starts = [0u32, 3, 7, 19];
        let legacy = generate_walks(&g, &starts, &cfg);
        let corpus = generate_corpus(&g, &starts, &cfg);
        assert_eq!(corpus.num_walks(), legacy.len());
        for (i, walk) in legacy.iter().enumerate() {
            assert_eq!(&corpus.walk_node_ids(i), walk, "walk {i} differs");
        }
    }

    #[test]
    fn corpus_handles_isolated_starts() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[NodeId(9)]);
        let iso = g.local_of(NodeId(9)).unwrap() as u32;
        let cfg = WalkConfig {
            walks_per_node: 2,
            walk_length: 6,
            seed: 1,
        };
        let corpus = generate_corpus(&g, &[0, iso], &cfg);
        assert_eq!(corpus.num_walks(), 4);
        assert_eq!(corpus.walk(0).len(), 6);
        assert_eq!(
            corpus.walk(2).len(),
            1,
            "isolated start yields a length-1 walk"
        );
        assert_eq!(corpus.walk_node_ids(2), vec![NodeId(9)]);
        assert_eq!(
            corpus.num_tokens(),
            corpus.walks().map(<[u32]>::len).sum::<usize>()
        );
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let g = ring(30);
        let cfg = WalkConfig::default();
        let a = generate_corpus_all(&g, &cfg);
        let b = generate_corpus_all(&g, &cfg);
        assert_eq!(a.tokens(), b.tokens());
        assert_eq!(a.offsets(), b.offsets());
    }
}
