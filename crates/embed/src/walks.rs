//! Truncated random walks (Step 3, Eq. 5).
//!
//! For an unweighted snapshot the transition probability of Eq. 5 is
//! uniform over the current node's neighbours — a DeepWalk-style walker.
//! Walk generation is embarrassingly parallel; we fan out over starting
//! nodes with rayon, seeding each walk's RNG from `(seed, start, rep)` so
//! that results are independent of thread scheduling.

use glodyne_graph::{NodeId, Snapshot};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Walk-generation parameters: `r` walks of length `l` per start node.
#[derive(Debug, Clone, Copy)]
pub struct WalkConfig {
    /// Walks per start node (`r`, paper default 10).
    pub walks_per_node: usize,
    /// Nodes per walk including the start (`l`, paper default 80).
    pub walk_length: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_node: 10,
            walk_length: 80,
            seed: 0,
        }
    }
}

/// One truncated random walk from `start` (a local index); output is
/// global [`NodeId`]s. A walk stops early only at an isolated node.
pub fn random_walk(g: &Snapshot, start: usize, length: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length);
    let mut cur = start;
    walk.push(g.node_id(cur));
    for _ in 1..length {
        let ns = g.neighbors(cur);
        if ns.is_empty() {
            break;
        }
        cur = ns[rng.gen_range(0..ns.len())] as usize;
        walk.push(g.node_id(cur));
    }
    walk
}

/// Generate `r` walks from every node in `starts` (local indices), in
/// parallel. Deterministic for a fixed config regardless of thread count.
pub fn generate_walks(g: &Snapshot, starts: &[u32], cfg: &WalkConfig) -> Vec<Vec<NodeId>> {
    starts
        .par_iter()
        .flat_map_iter(|&start| {
            (0..cfg.walks_per_node).map(move |rep| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    cfg.seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((start as u64) << 20)
                        .wrapping_add(rep as u64),
                );
                random_walk(g, start as usize, cfg.walk_length, &mut rng)
            })
        })
        .collect()
}

/// Walks from *all* nodes — the offline stage (`V^0_all`, Algorithm 1
/// line 2) and the SGNS-retrain/increment variants.
pub fn generate_walks_all(g: &Snapshot, cfg: &WalkConfig) -> Vec<Vec<NodeId>> {
    let starts: Vec<u32> = (0..g.num_nodes() as u32).collect();
    generate_walks(g, &starts, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::Edge;

    fn ring(n: u32) -> Snapshot {
        let edges: Vec<Edge> = (0..n)
            .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
            .collect();
        Snapshot::from_edges(&edges, &[])
    }

    #[test]
    fn walk_has_requested_length() {
        let g = ring(10);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let w = random_walk(&g, 0, 15, &mut rng);
        assert_eq!(w.len(), 15);
    }

    #[test]
    fn consecutive_walk_nodes_are_adjacent() {
        let g = ring(12);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = random_walk(&g, 3, 30, &mut rng);
        for pair in w.windows(2) {
            assert!(g.has_edge_ids(pair[0], pair[1]), "{} -> {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn isolated_node_walk_stops() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[NodeId(9)]);
        let iso = g.local_of(NodeId(9)).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let w = random_walk(&g, iso, 10, &mut rng);
        assert_eq!(w, vec![NodeId(9)]);
    }

    #[test]
    fn generate_walks_counts() {
        let g = ring(8);
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 5,
            seed: 7,
        };
        let walks = generate_walks_all(&g, &cfg);
        assert_eq!(walks.len(), 24);
        assert!(walks.iter().all(|w| w.len() == 5));
    }

    #[test]
    fn walks_are_deterministic_across_runs() {
        let g = ring(16);
        let cfg = WalkConfig::default();
        let a = generate_walks(&g, &[0, 5, 9], &cfg);
        let b = generate_walks(&g, &[0, 5, 9], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = ring(16);
        let a = generate_walks(&g, &[0], &WalkConfig { seed: 1, ..Default::default() });
        let b = generate_walks(&g, &[0], &WalkConfig { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn walker_visits_whole_ring_eventually() {
        let g = ring(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = random_walk(&g, 0, 500, &mut rng);
        let distinct: std::collections::HashSet<_> = w.into_iter().collect();
        assert_eq!(distinct.len(), 6);
    }
}
