//! A cache-line-aligned growable buffer for the hot numeric arenas.
//!
//! The SIMD-shaped kernels scan the walk-corpus token arena and the IVF
//! posting arena in long contiguous sweeps; starting those sweeps on a
//! 64-byte boundary keeps every cache line they touch fully used and
//! lets aligned vector loads kick in from the first element. `Vec`'s
//! allocator only guarantees the element type's own alignment, so the
//! arenas use this buffer instead: a minimal `Vec`-alike over a
//! 64-byte-aligned allocation.
//!
//! Only the operations the arenas actually perform are provided
//! (`push`, `extend_from_slice`, zero-filled construction, slice
//! views). `T: Copy` keeps drop handling trivial — the arenas hold
//! `u32` tokens and `f32` components.

use std::alloc::{alloc, alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ptr::NonNull;

/// The alignment every [`AlignedBuf`] allocation starts on.
pub const CACHE_LINE: usize = 64;

/// A growable buffer whose backing allocation is 64-byte aligned.
pub struct AlignedBuf<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
    _marker: PhantomData<T>,
}

// SAFETY: the buffer uniquely owns its allocation of `T: Copy` values;
// sending or sharing it is no different from a `Vec<T>`.
unsafe impl<T: Copy + Send> Send for AlignedBuf<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedBuf<T> {}

impl<T: Copy> AlignedBuf<T> {
    /// An empty buffer. No allocation until the first push.
    pub fn new() -> Self {
        AlignedBuf {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
            _marker: PhantomData,
        }
    }

    /// An empty buffer with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let mut buf = Self::new();
        if cap > 0 {
            buf.grow_to(cap, false);
        }
        buf
    }

    /// A buffer of `len` zeroed elements (all-zero bytes are a valid
    /// value for the `u32`/`f32` element types the arenas use).
    pub fn zeroed(len: usize) -> Self {
        let mut buf = Self::new();
        if len > 0 {
            buf.grow_to(len, true);
            buf.len = len;
        }
        buf
    }

    fn layout(cap: usize) -> Layout {
        let bytes = cap
            .checked_mul(std::mem::size_of::<T>())
            .expect("AlignedBuf capacity overflows usize");
        Layout::from_size_align(bytes, CACHE_LINE.max(std::mem::align_of::<T>()))
            .expect("invalid AlignedBuf layout")
    }

    /// Reallocate to exactly `new_cap` (> current capacity), copying
    /// the live prefix across.
    fn grow_to(&mut self, new_cap: usize, zero: bool) {
        debug_assert!(new_cap > self.cap);
        let layout = Self::layout(new_cap);
        let raw = unsafe {
            if zero {
                alloc_zeroed(layout)
            } else {
                alloc(layout)
            }
        };
        let Some(new_ptr) = NonNull::new(raw as *mut T) else {
            handle_alloc_error(layout)
        };
        debug_assert_eq!(
            new_ptr.as_ptr() as usize % CACHE_LINE,
            0,
            "AlignedBuf allocation is not cache-line aligned"
        );
        if self.cap > 0 {
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), new_ptr.as_ptr(), self.len);
                dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap));
            }
        }
        self.ptr = new_ptr;
        self.cap = new_cap;
    }

    /// Ensure room for `extra` more elements, doubling like `Vec`.
    fn reserve(&mut self, extra: usize) {
        let needed = self.len.checked_add(extra).expect("AlignedBuf overflow");
        if needed <= self.cap {
            return;
        }
        let new_cap = needed.max(self.cap * 2).max(16);
        self.grow_to(new_cap, false);
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one element.
    pub fn push(&mut self, value: T) {
        self.reserve(1);
        unsafe { self.ptr.as_ptr().add(self.len).write(value) };
        self.len += 1;
    }

    /// Append a slice of elements.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.reserve(values.len());
        unsafe {
            std::ptr::copy_nonoverlapping(
                values.as_ptr(),
                self.ptr.as_ptr().add(self.len),
                values.len(),
            );
        }
        self.len += values.len();
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.cap == 0 {
            &[]
        } else {
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.cap == 0 {
            &mut []
        } else {
            unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
        }
    }
}

impl<T: Copy> Default for AlignedBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.cap > 0 {
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) };
        }
    }
}

impl<T: Copy> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        let mut out = Self::with_capacity(self.len);
        out.extend_from_slice(self.as_slice());
        out
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy> From<&[T]> for AlignedBuf<T> {
    fn from(values: &[T]) -> Self {
        let mut out = Self::with_capacity(values.len());
        out.extend_from_slice(values);
        out
    }
}

impl<T: Copy> std::ops::Deref for AlignedBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> std::ops::DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_cache_line_aligned() {
        for n in [1usize, 3, 16, 17, 1000] {
            let mut buf = AlignedBuf::<f32>::with_capacity(n);
            buf.push(1.0);
            assert_eq!(buf.as_slice().as_ptr() as usize % CACHE_LINE, 0);
            let z = AlignedBuf::<u32>::zeroed(n);
            assert_eq!(z.as_slice().as_ptr() as usize % CACHE_LINE, 0);
        }
    }

    #[test]
    fn zeroed_is_zero_filled() {
        let z = AlignedBuf::<u32>::zeroed(37);
        assert_eq!(z.len(), 37);
        assert!(z.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn push_and_extend_match_vec_semantics() {
        let mut buf = AlignedBuf::new();
        let mut reference = Vec::new();
        for i in 0..100u32 {
            if i % 3 == 0 {
                buf.push(i);
                reference.push(i);
            } else {
                buf.extend_from_slice(&[i, i + 1]);
                reference.extend_from_slice(&[i, i + 1]);
            }
        }
        assert_eq!(buf.as_slice(), reference.as_slice());
    }

    #[test]
    fn growth_preserves_contents_across_reallocation() {
        let mut buf = AlignedBuf::with_capacity(2);
        for i in 0..1000u32 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 1000);
        assert!(buf
            .as_slice()
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u32));
        assert_eq!(buf.as_slice().as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = AlignedBuf::from(&[1u32, 2, 3][..]);
        let b = a.clone();
        a.push(4);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert_eq!(a.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn empty_buffer_views_are_empty() {
        let mut buf = AlignedBuf::<f32>::new();
        assert!(buf.is_empty());
        assert!(buf.as_slice().is_empty());
        assert!(buf.as_mut_slice().is_empty());
    }

    #[test]
    fn mutation_through_slice_sticks() {
        let mut buf = AlignedBuf::<f32>::zeroed(8);
        buf.as_mut_slice()[3] = 2.5;
        assert_eq!(buf.as_slice()[3], 2.5);
    }
}
