//! Embedding persistence: a human-readable TSV format (the layout the
//! original GloDyNE release and word2vec use: one node per line,
//! `id\tv1\tv2...`) and a compact binary format for production reuse.
//!
//! Binary layout (little-endian, via `bytes`):
//! `magic "GDNE" | u32 version | u32 dim | u64 count | count × (u32 id,
//! dim × f32)`.

use crate::embedding::Embedding;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use glodyne_graph::NodeId;
use std::io::{self, BufRead, Read, Write};

const MAGIC: &[u8; 4] = b"GDNE";
const VERSION: u32 = 1;

/// Write an embedding as TSV: `node_id \t v0 \t v1 ...` per line.
pub fn write_tsv<W: Write>(writer: &mut W, emb: &Embedding) -> io::Result<()> {
    for (id, vector) in emb.iter() {
        write!(writer, "{}", id.0)?;
        for v in vector {
            write!(writer, "\t{v}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Read a TSV embedding; dimension is inferred from the first line and
/// enforced on the rest.
pub fn read_tsv<R: BufRead>(reader: R) -> io::Result<Embedding> {
    let mut emb: Option<Embedding> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}", lineno + 1),
            )
        };
        let id: u32 = parts
            .next()
            .ok_or_else(|| bad("missing id"))?
            .parse()
            .map_err(|_| bad("bad node id"))?;
        let vector: Vec<f32> = parts
            .map(|t| t.parse::<f32>().map_err(|_| bad("bad float")))
            .collect::<io::Result<_>>()?;
        if vector.is_empty() {
            return Err(bad("empty vector"));
        }
        let emb = emb.get_or_insert_with(|| Embedding::new(vector.len()));
        if vector.len() != emb.dim() {
            return Err(bad(&format!(
                "dimension {} != expected {}",
                vector.len(),
                emb.dim()
            )));
        }
        emb.set(NodeId(id), &vector);
    }
    Ok(emb.unwrap_or_else(|| Embedding::new(0)))
}

/// Serialise an embedding to the compact binary format.
pub fn to_bytes(emb: &Embedding) -> Bytes {
    let dim = emb.dim();
    let mut buf = BytesMut::with_capacity(16 + emb.len() * (4 + 4 * dim));
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(dim as u32);
    buf.put_u64_le(emb.len() as u64);
    for (id, vector) in emb.iter() {
        buf.put_u32_le(id.0);
        for &v in vector {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Write an embedding in the compact binary format to any writer.
pub fn write_binary<W: Write>(writer: &mut W, emb: &Embedding) -> io::Result<()> {
    writer.write_all(to_bytes(emb).as_ref())
}

/// Read an embedding in the compact binary format from any reader.
///
/// Corrupt input — truncation at any point, a bad magic, an unsupported
/// version, or a header whose dimensions don't match the body — returns
/// an `InvalidData` error; this function never panics.
pub fn read_binary<R: Read>(reader: &mut R) -> io::Result<Embedding> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_bytes(Bytes::from(buf))
}

/// Deserialise the binary format, validating header and length.
pub fn from_bytes(mut data: Bytes) -> io::Result<Embedding> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    if data.remaining() < 20 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic (not a GDNE embedding file)"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(bad("unsupported version"));
    }
    let dim = data.get_u32_le() as usize;
    let count = data.get_u64_le() as usize;
    let need = count
        .checked_mul(4 + 4 * dim)
        .ok_or_else(|| bad("size overflow"))?;
    if data.remaining() < need {
        return Err(bad("truncated body"));
    }
    let mut emb = Embedding::new(dim);
    let mut vector = vec![0.0f32; dim];
    for _ in 0..count {
        let id = data.get_u32_le();
        for v in vector.iter_mut() {
            *v = data.get_f32_le();
        }
        emb.set(NodeId(id), &vector);
    }
    Ok(emb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> Embedding {
        let mut e = Embedding::new(3);
        e.set(NodeId(7), &[1.5, -2.0, 0.25]);
        e.set(NodeId(0), &[0.0, 0.0, 1.0]);
        e.set(NodeId(42), &[9.0, 8.0, 7.0]);
        e
    }

    fn assert_same(a: &Embedding, b: &Embedding) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dim(), b.dim());
        for (id, v) in a.iter() {
            assert_eq!(b.get(id), Some(v));
        }
    }

    #[test]
    fn tsv_round_trip() {
        let e = sample();
        let mut buf = Vec::new();
        write_tsv(&mut buf, &e).unwrap();
        let parsed = read_tsv(BufReader::new(buf.as_slice())).unwrap();
        assert_same(&e, &parsed);
    }

    #[test]
    fn tsv_rejects_ragged_dimensions() {
        let text = "1\t1.0\t2.0\n2\t3.0\n";
        let err = read_tsv(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn tsv_skips_comments_and_blank_lines() {
        let text = "# header\n\n5\t1.0\t2.0\n";
        let e = read_tsv(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.get(NodeId(5)), Some(&[1.0f32, 2.0][..]));
    }

    #[test]
    fn binary_round_trip() {
        let e = sample();
        let bytes = to_bytes(&e);
        let parsed = from_bytes(bytes).unwrap();
        assert_same(&e, &parsed);
    }

    #[test]
    fn binary_rejects_corruption() {
        let e = sample();
        let bytes = to_bytes(&e);
        // flip the magic
        let mut corrupt = bytes.to_vec();
        corrupt[0] = b'X';
        assert!(from_bytes(Bytes::from(corrupt)).is_err());
        // truncate the body
        let short = bytes.slice(0..bytes.len() - 3);
        assert!(from_bytes(short).is_err());
        // truncated header
        assert!(from_bytes(Bytes::from_static(b"GD")).is_err());
    }

    #[test]
    fn empty_embedding_round_trips() {
        let e = Embedding::new(4);
        let parsed = from_bytes(to_bytes(&e)).unwrap();
        assert_eq!(parsed.len(), 0);
        assert_eq!(parsed.dim(), 4);
    }
}
