//! The `NodeId`-keyed embedding matrix handed to downstream tasks.

use glodyne_graph::NodeId;
use std::collections::HashMap;

/// A set of `d`-dimensional node embeddings (`Z^t ∈ R^{|V^t| × d}` of
/// Definition 4), keyed by stable [`NodeId`].
#[derive(Debug, Clone, Default)]
pub struct Embedding {
    dim: usize,
    index: HashMap<NodeId, u32>,
    ids: Vec<NodeId>,
    data: Vec<f32>,
}

impl Embedding {
    /// Empty embedding store of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Embedding {
            dim,
            index: HashMap::new(),
            ids: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Embedding dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no node has an embedding.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The vector for `id`, if present.
    pub fn get(&self, id: NodeId) -> Option<&[f32]> {
        self.index
            .get(&id)
            .map(|&i| &self.data[i as usize * self.dim..(i as usize + 1) * self.dim])
    }

    /// Insert or overwrite the vector for `id`.
    pub fn set(&mut self, id: NodeId, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        match self.index.get(&id) {
            Some(&i) => {
                self.data[i as usize * self.dim..(i as usize + 1) * self.dim]
                    .copy_from_slice(vector);
            }
            None => {
                let i = self.ids.len() as u32;
                self.index.insert(id, i);
                self.ids.push(id);
                self.data.extend_from_slice(vector);
            }
        }
    }

    /// Iterate `(id, vector)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[f32])> {
        self.ids
            .iter()
            .enumerate()
            .map(move |(i, &id)| (id, &self.data[i * self.dim..(i + 1) * self.dim]))
    }

    /// All embedded node ids in insertion order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Cosine similarity between two embedded nodes; `None` if either is
    /// missing. Zero vectors yield similarity 0.
    pub fn cosine(&self, a: NodeId, b: NodeId) -> Option<f32> {
        let va = self.get(a)?;
        let vb = self.get(b)?;
        Some(cosine(va, vb))
    }

    /// The `k` cosine-nearest embedded neighbours of `node` (excluding
    /// `node` itself), most similar first. Ties break toward the smaller
    /// id for determinism. Empty if `node` has no embedding.
    ///
    /// Linear scan over all embedded nodes — O(n·d) per query, the
    /// right tool for interactive session queries; batch consumers
    /// should rank candidate sets themselves.
    pub fn top_k(&self, node: NodeId, k: usize) -> Vec<(NodeId, f32)> {
        let Some(q) = self.get(node) else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(NodeId, f32)> = self
            .iter()
            .filter(|&(id, _)| id != node)
            .map(|(id, v)| (id, cosine(q, v)))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length vectors (0 for zero vectors).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut e = Embedding::new(3);
        e.set(NodeId(5), &[1.0, 2.0, 3.0]);
        assert_eq!(e.get(NodeId(5)), Some(&[1.0, 2.0, 3.0][..]));
        assert_eq!(e.get(NodeId(6)), None);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn overwrite_keeps_count() {
        let mut e = Embedding::new(2);
        e.set(NodeId(1), &[1.0, 0.0]);
        e.set(NodeId(1), &[0.0, 1.0]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.get(NodeId(1)), Some(&[0.0, 1.0][..]));
    }

    #[test]
    fn cosine_identities() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0, 0.0]);
        e.set(NodeId(1), &[0.0, 1.0]);
        e.set(NodeId(2), &[2.0, 0.0]);
        e.set(NodeId(3), &[0.0, 0.0]);
        assert!((e.cosine(NodeId(0), NodeId(1)).unwrap()).abs() < 1e-6);
        assert!((e.cosine(NodeId(0), NodeId(2)).unwrap() - 1.0).abs() < 1e-6);
        assert_eq!(e.cosine(NodeId(0), NodeId(3)), Some(0.0));
        assert_eq!(e.cosine(NodeId(0), NodeId(9)), None);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut e = Embedding::new(1);
        e.set(NodeId(9), &[9.0]);
        e.set(NodeId(3), &[3.0]);
        let ids: Vec<NodeId> = e.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(9), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0]);
    }

    #[test]
    fn top_k_ranks_by_cosine() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0, 0.0]);
        e.set(NodeId(1), &[1.0, 0.1]); // closest to 0
        e.set(NodeId(2), &[0.0, 1.0]); // orthogonal
        e.set(NodeId(3), &[-1.0, 0.0]); // opposite
        let top = e.top_k(NodeId(0), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, NodeId(1));
        assert_eq!(top[1].0, NodeId(2));
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn top_k_edge_cases() {
        let mut e = Embedding::new(1);
        e.set(NodeId(0), &[1.0]);
        assert!(e.top_k(NodeId(9), 3).is_empty(), "missing node");
        assert!(e.top_k(NodeId(0), 0).is_empty(), "k = 0");
        assert!(e.top_k(NodeId(0), 3).is_empty(), "no other nodes to return");
        e.set(NodeId(1), &[2.0]);
        let top = e.top_k(NodeId(0), 10);
        assert_eq!(top, vec![(NodeId(1), 1.0)], "k larger than population");
    }
}
