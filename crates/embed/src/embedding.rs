//! The `NodeId`-keyed embedding matrix handed to downstream tasks.

use glodyne_graph::NodeId;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A set of `d`-dimensional node embeddings (`Z^t ∈ R^{|V^t| × d}` of
/// Definition 4), keyed by stable [`NodeId`].
///
/// Each node's L2 norm is cached at write time (`set` is the only write
/// path), so cosine ranking over the whole store ([`Embedding::top_k`])
/// pays one dot product per candidate instead of three.
#[derive(Debug, Clone, Default)]
pub struct Embedding {
    dim: usize,
    index: HashMap<NodeId, u32>,
    ids: Vec<NodeId>,
    data: Vec<f32>,
    /// Per-node L2 norms, parallel to `ids`; entry `i` is recomputed
    /// whenever row `i` is overwritten.
    norms: Vec<f32>,
}

impl Embedding {
    /// Empty embedding store of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Embedding {
            dim,
            index: HashMap::new(),
            ids: Vec::new(),
            data: Vec::new(),
            norms: Vec::new(),
        }
    }

    /// Embedding dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no node has an embedding.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The vector for `id`, if present.
    pub fn get(&self, id: NodeId) -> Option<&[f32]> {
        self.index
            .get(&id)
            .map(|&i| &self.data[i as usize * self.dim..(i as usize + 1) * self.dim])
    }

    /// Insert or overwrite the vector for `id`, refreshing its cached
    /// norm.
    pub fn set(&mut self, id: NodeId, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        let norm = l2_norm(vector);
        match self.index.get(&id) {
            Some(&i) => {
                self.data[i as usize * self.dim..(i as usize + 1) * self.dim]
                    .copy_from_slice(vector);
                self.norms[i as usize] = norm;
            }
            None => {
                let i = self.ids.len() as u32;
                self.index.insert(id, i);
                self.ids.push(id);
                self.data.extend_from_slice(vector);
                self.norms.push(norm);
            }
        }
    }

    /// The cached L2 norm of `id`'s vector, if present.
    pub fn norm(&self, id: NodeId) -> Option<f32> {
        self.index.get(&id).map(|&i| self.norms[i as usize])
    }

    /// Iterate `(id, vector)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[f32])> {
        self.ids
            .iter()
            .enumerate()
            .map(move |(i, &id)| (id, &self.data[i * self.dim..(i + 1) * self.dim]))
    }

    /// Iterate `(id, vector, cached_norm)` in insertion order — the
    /// scan shape every cosine-ranking surface wants: one dot product
    /// per candidate with no per-row norm lookup. The sharded fan-out
    /// merge in `glodyne-shard` scans shard embeddings through this.
    pub fn iter_with_norms(&self) -> impl Iterator<Item = (NodeId, &[f32], f32)> {
        self.ids
            .iter()
            .zip(&self.norms)
            .enumerate()
            .map(move |(i, (&id, &norm))| (id, &self.data[i * self.dim..(i + 1) * self.dim], norm))
    }

    /// All embedded node ids in insertion order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Cosine similarity between two embedded nodes; `None` if either is
    /// missing. Zero vectors yield similarity 0.
    pub fn cosine(&self, a: NodeId, b: NodeId) -> Option<f32> {
        let va = self.get(a)?;
        let vb = self.get(b)?;
        Some(cosine(va, vb))
    }

    /// The `k` cosine-nearest embedded neighbours of `node` (excluding
    /// `node` itself), ordered by [`rank_similarity`]: most similar
    /// first, ties toward the smaller id, NaN similarities last. Empty
    /// if `node` has no embedding.
    ///
    /// Linear scan over all embedded nodes, using the cached norms —
    /// one dot product per candidate, with the `k` best kept in a
    /// bounded heap ([`TopKSelector`]): O(n·d + n·log k) per query
    /// instead of the full sort's O(n·log n). The right tool for
    /// interactive session queries; batch consumers should rank
    /// candidate sets themselves. Bit-exact with [`reference_top_k`].
    pub fn top_k(&self, node: NodeId, k: usize) -> Vec<(NodeId, f32)> {
        let (Some(q), Some(qn)) = (self.get(node), self.norm(node)) else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new(); // skip the scan, not just the keep
        }
        let mut select = TopKSelector::new(k);
        for (id, v, vn) in self.iter_with_norms() {
            if id == node {
                continue;
            }
            select.push((id, norm_cosine(q, qn, v, vn)));
        }
        select.into_sorted()
    }

    /// [`Embedding::top_k`] for many query nodes in one pass: each
    /// stored row is streamed through the cache **once** and scored
    /// against every query while hot, instead of `nodes.len()` full
    /// re-scans. Results are positionally parallel to `nodes`; a node
    /// without an embedding yields an empty list, exactly like
    /// `top_k`.
    ///
    /// Bit-exact with calling `top_k` per node: every candidate is
    /// scored by the same exact kernel ([`norm_cosine`]) and selected
    /// through the same [`TopKSelector`], and the selector's result is
    /// scan-order-independent because [`rank_similarity`] is total.
    pub fn top_k_batch(&self, nodes: &[NodeId], k: usize) -> Vec<Vec<(NodeId, f32)>> {
        let queries: Vec<Option<(NodeId, &[f32], f32)>> = nodes
            .iter()
            .map(|&n| Some((n, self.get(n)?, self.norm(n)?)))
            .collect();
        if k == 0 {
            return nodes.iter().map(|_| Vec::new()).collect();
        }
        let mut selects: Vec<TopKSelector> = nodes.iter().map(|_| TopKSelector::new(k)).collect();
        for (id, v, vn) in self.iter_with_norms() {
            for (slot, select) in queries.iter().zip(&mut selects) {
                let Some((node, q, qn)) = *slot else { continue };
                if id == node {
                    continue;
                }
                select.push((id, norm_cosine(q, qn, v, vn)));
            }
        }
        selects.into_iter().map(TopKSelector::into_sorted).collect()
    }
}

/// Bounded top-`k` selection under the [`rank_similarity`] total order:
/// push any number of scored candidates, keep only the best `k`, read
/// them back fully ordered. n pushes cost O(n·log k) against the full
/// sort's O(n·log n).
///
/// Because [`rank_similarity`] is a *total* order, the k best
/// candidates are uniquely determined and the final sort restores the
/// exact order a sort-everything-then-truncate pass would produce — so
/// selection through this type is bit-exact with [`reference_top_k`].
/// It is the shared merge primitive of the exact scan
/// ([`Embedding::top_k`]) and the IVF posting-list scan in
/// `glodyne-ann`.
#[derive(Debug, Clone)]
pub struct TopKSelector {
    k: usize,
    /// Binary max-heap under `rank_similarity`: the *worst* kept
    /// candidate sits at the root, so a new candidate only has to beat
    /// the root to displace it.
    heap: Vec<(NodeId, f32)>,
}

impl TopKSelector {
    /// A selector keeping the best `k` candidates (`k = 0` keeps none).
    pub fn new(k: usize) -> Self {
        TopKSelector {
            k,
            heap: Vec::with_capacity(k.min(1024)),
        }
    }

    /// Offer one scored candidate.
    pub fn push(&mut self, candidate: (NodeId, f32)) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(candidate);
            self.sift_up(self.heap.len() - 1);
        } else if rank_similarity(&candidate, &self.heap[0]) == Ordering::Less {
            self.heap[0] = candidate;
            self.sift_down(0);
        }
    }

    /// The kept candidates in [`rank_similarity`] order (best first).
    pub fn into_sorted(mut self) -> Vec<(NodeId, f32)> {
        self.heap.sort_by(rank_similarity);
        self.heap
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if rank_similarity(&self.heap[i], &self.heap[parent]) == Ordering::Greater {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut worst = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len()
                    && rank_similarity(&self.heap[child], &self.heap[worst]) == Ordering::Greater
                {
                    worst = child;
                }
            }
            if worst == i {
                break;
            }
            self.heap.swap(i, worst);
            i = worst;
        }
    }
}

/// The canonical neighbour ordering shared by every ranking surface
/// (`Embedding::top_k`, `EmbedderSession::nearest`, the `glodyne-serve`
/// wire protocol): descending similarity, ties toward the smaller node
/// id, NaN similarities after every real number (mutually equal).
///
/// This is a total order, so it is safe under `sort_by` even when
/// stored vectors contain NaN components.
pub fn rank_similarity(a: &(NodeId, f32), b: &(NodeId, f32)) -> Ordering {
    let sim = match (a.1.is_nan(), b.1.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        // Neither is NaN, so partial_cmp cannot fail.
        (false, false) => a.1.partial_cmp(&b.1).unwrap(),
    };
    sim.reverse().then(a.0.cmp(&b.0))
}

/// Executable specification of [`Embedding::top_k`]: the naive
/// from-scratch scan (full [`cosine`] per candidate, no cached norms),
/// ordered by the same [`rank_similarity`] contract.
///
/// Kept public as the shared test helper: the session layer, the
/// serving layer, and the norm-cache bit-exactness tests all compare
/// their ranking surfaces against this one function.
pub fn reference_top_k(emb: &Embedding, node: NodeId, k: usize) -> Vec<(NodeId, f32)> {
    let Some(q) = emb.get(node) else {
        return Vec::new();
    };
    if k == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(NodeId, f32)> = emb
        .iter()
        .filter(|&(id, _)| id != node)
        .map(|(id, v)| (id, cosine(q, v)))
        .collect();
    scored.sort_by(rank_similarity);
    scored.truncate(k);
    scored
}

// The similarity kernels moved to [`crate::kernel`] (one exact
// accumulation order, one SIMD-shaped fast path); re-exported here so
// every historical `embedding::dot` / `embedding::cosine` path keeps
// resolving to the exact kernel.
pub use crate::kernel::{cosine, l2_norm, norm_cosine};

/// Dot product of two equal-length vectors in the frozen **exact**
/// accumulation order — an alias of [`crate::kernel::dot_exact`], kept
/// under the historical name so cached-norm scans (here and in
/// `glodyne-ann`) stay bit-exact with the from-scratch [`cosine`].
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::kernel::dot_exact(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut e = Embedding::new(3);
        e.set(NodeId(5), &[1.0, 2.0, 3.0]);
        assert_eq!(e.get(NodeId(5)), Some(&[1.0, 2.0, 3.0][..]));
        assert_eq!(e.get(NodeId(6)), None);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn overwrite_keeps_count() {
        let mut e = Embedding::new(2);
        e.set(NodeId(1), &[1.0, 0.0]);
        e.set(NodeId(1), &[0.0, 1.0]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.get(NodeId(1)), Some(&[0.0, 1.0][..]));
    }

    #[test]
    fn top_k_batch_is_bit_exact_with_per_query_top_k() {
        let mut e = Embedding::new(5);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..60u32 {
            let v: Vec<f32> = (0..5)
                .map(|_| {
                    state = state.wrapping_mul(0xd129_42e2_96fe_94e3).wrapping_add(1);
                    ((state >> 40) as f32) / 1e6 - 8.0
                })
                .collect();
            e.set(NodeId(i), &v);
        }
        let nodes = [NodeId(0), NodeId(17), NodeId(999), NodeId(42), NodeId(0)];
        for k in [0usize, 1, 5, 60, 100] {
            let batch = e.top_k_batch(&nodes, k);
            assert_eq!(batch.len(), nodes.len());
            for (&n, got) in nodes.iter().zip(&batch) {
                let single = e.top_k(n, k);
                assert_eq!(got.len(), single.len(), "node {n:?} k {k}");
                for (a, b) in got.iter().zip(&single) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
        }
    }

    #[test]
    fn cosine_identities() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0, 0.0]);
        e.set(NodeId(1), &[0.0, 1.0]);
        e.set(NodeId(2), &[2.0, 0.0]);
        e.set(NodeId(3), &[0.0, 0.0]);
        assert!((e.cosine(NodeId(0), NodeId(1)).unwrap()).abs() < 1e-6);
        assert!((e.cosine(NodeId(0), NodeId(2)).unwrap() - 1.0).abs() < 1e-6);
        assert_eq!(e.cosine(NodeId(0), NodeId(3)), Some(0.0));
        assert_eq!(e.cosine(NodeId(0), NodeId(9)), None);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut e = Embedding::new(1);
        e.set(NodeId(9), &[9.0]);
        e.set(NodeId(3), &[3.0]);
        let ids: Vec<NodeId> = e.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(9), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0]);
    }

    #[test]
    fn top_k_ranks_by_cosine() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0, 0.0]);
        e.set(NodeId(1), &[1.0, 0.1]); // closest to 0
        e.set(NodeId(2), &[0.0, 1.0]); // orthogonal
        e.set(NodeId(3), &[-1.0, 0.0]); // opposite
        let top = e.top_k(NodeId(0), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, NodeId(1));
        assert_eq!(top[1].0, NodeId(2));
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn iter_with_norms_agrees_with_point_lookups() {
        let mut e = Embedding::new(2);
        e.set(NodeId(4), &[3.0, 4.0]);
        e.set(NodeId(1), &[0.0, 2.0]);
        e.set(NodeId(4), &[6.0, 8.0]); // overwrite refreshes in place
        let rows: Vec<(NodeId, Vec<f32>, f32)> = e
            .iter_with_norms()
            .map(|(id, v, n)| (id, v.to_vec(), n))
            .collect();
        assert_eq!(rows.len(), 2);
        for (id, v, n) in rows {
            assert_eq!(e.get(id).unwrap(), &v[..]);
            assert_eq!(e.norm(id).unwrap().to_bits(), n.to_bits());
        }
    }

    #[test]
    fn norm_cache_tracks_writes() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[3.0, 4.0]);
        assert_eq!(e.norm(NodeId(0)), Some(5.0));
        assert_eq!(e.norm(NodeId(1)), None);
        // Overwrite must refresh the cached norm, not keep the stale one.
        e.set(NodeId(0), &[0.0, 2.0]);
        assert_eq!(e.norm(NodeId(0)), Some(2.0));
        e.set(NodeId(1), &[0.0, 0.0]);
        assert_eq!(e.norm(NodeId(1)), Some(0.0));
    }

    #[test]
    fn top_k_bit_exact_with_reference_scan() {
        // Deterministic pseudo-random vectors (SplitMix64-style mixing)
        // over a population large enough to exercise real float
        // accumulation, including one zero vector and overwrites.
        let dim = 17;
        let mut e = Embedding::new(dim);
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(0xd129_42e2_96fe_94e3).wrapping_add(1);
            ((state >> 40) as f32) / 1e6 - 8.0
        };
        for i in 0..60u32 {
            let v: Vec<f32> = (0..dim).map(|_| next()).collect();
            e.set(NodeId(i * 7 % 59), &v);
        }
        e.set(NodeId(1000), &vec![0.0; dim]);
        for &probe in &[NodeId(0), NodeId(7), NodeId(1000), NodeId(52)] {
            let fast = e.top_k(probe, 25);
            let slow = reference_top_k(&e, probe, 25);
            assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.0, s.0, "probe {probe:?}");
                assert_eq!(
                    f.1.to_bits(),
                    s.1.to_bits(),
                    "probe {probe:?}: similarity drifted"
                );
            }
        }
    }

    #[test]
    fn nan_similarities_rank_last_and_never_panic() {
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0, 0.0]);
        e.set(NodeId(1), &[1.0, 0.1]);
        e.set(NodeId(2), &[f32::NAN, 1.0]);
        e.set(NodeId(3), &[f32::NAN, 2.0]);
        e.set(NodeId(4), &[-1.0, 0.0]);
        let top = e.top_k(NodeId(0), 10);
        assert_eq!(top.len(), 4);
        assert_eq!(top[0].0, NodeId(1));
        assert_eq!(top[1].0, NodeId(4));
        // NaN candidates sink below every real similarity, mutual ties
        // broken toward the smaller id.
        assert_eq!(top[2].0, NodeId(2));
        assert_eq!(top[3].0, NodeId(3));
        assert!(top[2].1.is_nan() && top[3].1.is_nan());
        // Same contract from the reference scan.
        let slow = reference_top_k(&e, NodeId(0), 10);
        let ids: Vec<NodeId> = slow.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(1), NodeId(4), NodeId(2), NodeId(3)]);
        // Querying from a NaN vector is also total-order safe.
        let from_nan = e.top_k(NodeId(2), 10);
        assert_eq!(from_nan.len(), 4);
        assert!(from_nan.iter().all(|s| s.1.is_nan()));
        let ids: Vec<NodeId> = from_nan.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn selector_matches_full_sort_for_every_k() {
        // Pseudo-random scores with repeats, NaNs, and ±inf: the heap
        // select must agree with sort-then-truncate for every cut-off.
        let mut state = 7u64;
        let mut next = move || {
            state = state.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(11);
            state
        };
        let mut candidates: Vec<(NodeId, f32)> = (0..120u32)
            .map(|i| {
                let raw = next();
                let sim = match raw % 11 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    2 => f32::NEG_INFINITY,
                    _ => ((raw >> 32) as f32) / 1e9 - 2.0,
                };
                (NodeId(i % 37), sim)
            })
            .collect();
        for k in [0usize, 1, 2, 7, 119, 120, 500] {
            let mut select = TopKSelector::new(k);
            for &c in &candidates {
                select.push(c);
            }
            let fast = select.into_sorted();
            let mut slow = candidates.clone();
            slow.sort_by(rank_similarity);
            slow.truncate(k);
            assert_eq!(fast.len(), slow.len(), "k={k}");
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.0, s.0, "k={k}");
                assert_eq!(f.1.to_bits(), s.1.to_bits(), "k={k}");
            }
        }
        // Order of arrival must not matter either.
        candidates.reverse();
        let mut select = TopKSelector::new(9);
        for &c in &candidates {
            select.push(c);
        }
        let reversed_feed = select.into_sorted();
        candidates.sort_by(rank_similarity);
        candidates.truncate(9);
        assert_eq!(reversed_feed.len(), candidates.len());
        for (f, s) in reversed_feed.iter().zip(&candidates) {
            assert_eq!((f.0, f.1.to_bits()), (s.0, s.1.to_bits()));
        }
    }

    #[test]
    fn top_k_edge_cases() {
        let mut e = Embedding::new(1);
        e.set(NodeId(0), &[1.0]);
        assert!(e.top_k(NodeId(9), 3).is_empty(), "missing node");
        assert!(e.top_k(NodeId(0), 0).is_empty(), "k = 0");
        assert!(e.top_k(NodeId(0), 3).is_empty(), "no other nodes to return");
        e.set(NodeId(1), &[2.0]);
        let top = e.top_k(NodeId(0), 10);
        assert_eq!(top, vec![(NodeId(1), 1.0)], "k larger than population");
    }
}
