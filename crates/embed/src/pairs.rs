//! Sliding-window positive-pair extraction (§4.1.4).
//!
//! "A sliding window with length s+1+s is used to slide along each walk,
//! and the positive node-pair samples in a set D^t are built via
//! (v_center+i, v_center) where i ∈ [−s, +s], i ≠ 0." Pairs encode
//! 1st…s-th order proximity of the centre node.

use glodyne_graph::NodeId;

/// Enumerate positive (context, center) pairs from one walk with window
/// radius `s`, invoking `f(center, context)` for each.
///
/// Using a callback (rather than materialising `D^t`) keeps the training
/// loop allocation-free; `#(v_i, v_j)` of Eq. 10 is realised by the
/// number of callback invocations per pair.
pub fn for_each_pair(walk: &[NodeId], s: usize, mut f: impl FnMut(NodeId, NodeId)) {
    for (center_idx, &center) in walk.iter().enumerate() {
        let lo = center_idx.saturating_sub(s);
        let hi = (center_idx + s).min(walk.len().saturating_sub(1));
        for ctx_idx in lo..=hi {
            if ctx_idx != center_idx {
                f(center, walk[ctx_idx]);
            }
        }
    }
}

/// Materialised pair list — convenient for tests and small corpora.
pub fn pairs(walk: &[NodeId], s: usize) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    for_each_pair(walk, s, |c, x| out.push((c, x)));
    out
}

/// Total number of pairs that `for_each_pair` yields for a walk of
/// length `n` and window radius `s` (used for LR-decay scheduling).
pub fn pair_count(n: usize, s: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (0..n).map(|i| i.min(s) + (n - 1 - i).min(s)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn window_one_gives_adjacent_pairs() {
        let walk = ids(&[1, 2, 3]);
        let p = pairs(&walk, 1);
        assert_eq!(
            p,
            vec![
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(1)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(2)),
            ]
        );
    }

    #[test]
    fn window_covers_higher_orders() {
        let walk = ids(&[1, 2, 3, 4]);
        let p = pairs(&walk, 2);
        // node 1 pairs with 2 (1st order) and 3 (2nd order) but not 4
        assert!(p.contains(&(NodeId(1), NodeId(3))));
        assert!(!p.contains(&(NodeId(1), NodeId(4))));
    }

    #[test]
    fn short_walks_yield_no_pairs() {
        assert!(pairs(&ids(&[7]), 5).is_empty());
        assert!(pairs(&[], 5).is_empty());
    }

    #[test]
    fn pair_count_matches_enumeration() {
        for n in 0..12 {
            for s in 1..5 {
                let walk: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
                assert_eq!(pairs(&walk, s).len(), pair_count(n, s), "n={n}, s={s}");
            }
        }
    }

    #[test]
    fn repeated_nodes_produce_repeated_pairs() {
        // Eq. 10's #(v_i, v_j) frequency weighting arises naturally.
        let walk = ids(&[1, 2, 1, 2]);
        let p = pairs(&walk, 1);
        let count = p
            .iter()
            .filter(|&&(a, b)| a == NodeId(1) && b == NodeId(2))
            .count();
        assert_eq!(count, 3);
    }
}
