//! Random-walk + Skip-Gram Negative Sampling embedding machinery —
//! Steps 3 and 4 of GloDyNE (§4.1.3–4.1.4), shared by the core method,
//! its variants, and several baselines.
//!
//! - [`alias`] — O(1) discrete sampling (alias method), used for negative
//!   sampling and for the paper's per-sub-network node selection.
//! - [`walks`] — truncated random walks (Eq. 5).
//! - [`corpus`] — the flat zero-copy walk corpus: one contiguous token
//!   arena + walk offsets shared by walk generation and SGNS training.
//! - [`pairs`] — sliding-window positive-pair extraction (§4.1.4).
//! - [`sgns`] — the incremental SGNS model (Eq. 6–11): warm-startable,
//!   Hogwild-parallel, with new-node vocabulary growth.
//! - [`embedding`] — the `NodeId`-keyed embedding matrix handed to
//!   downstream tasks, plus cosine-similarity and nearest-neighbour
//!   helpers.
//! - [`kernel`] — the similarity kernels: the frozen exact accumulation
//!   order every bit-exactness pin references, and the SIMD-shaped fast
//!   path approximate surfaces scan with.
//! - [`traits`] — the step-shaped `DynamicEmbedder` interface every
//!   method in this workspace implements: one `step(StepContext)` per
//!   snapshot boundary returning a structured `StepReport`, with batch
//!   adapters (`run_over`) mirroring the paper's protocol of feeding
//!   every method's output to identical downstream tasks.
//! - [`config`] — fallible hyper-parameter validation (`ConfigError`)
//!   shared by every method's constructor.

pub mod alias;
pub mod aligned;
pub mod biased_walks;
pub mod config;
pub mod corpus;
pub mod embedding;
pub mod kernel;
pub mod pairs;
pub mod persist;
pub mod sgns;
pub mod traits;
pub mod walks;
pub mod weighted_walks;

pub use aligned::AlignedBuf;
pub use config::ConfigError;
pub use corpus::WalkCorpus;
pub use embedding::{rank_similarity, reference_top_k, Embedding, TopKSelector};
pub use sgns::{SgnsConfig, SgnsModel};
pub use traits::{CheckpointEmbedder, DynamicEmbedder, PhaseTimes, StepContext, StepReport};
