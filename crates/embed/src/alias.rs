//! Alias method for O(1) sampling from a fixed discrete distribution.
//!
//! The paper cites node2vec's alias sampling for its O(|V|) selection
//! step (§4.3). Construction is O(n), each draw is O(1).

use rand::Rng;

/// Pre-processed discrete distribution supporting O(1) draws.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from unnormalised non-negative weights. Panics if the
    /// weights are empty or sum to zero/NaN.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers are 1.0 up to float error.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Draw one index.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_distribution() {
        let freqs = empirical(&[1.0, 1.0, 1.0, 1.0], 40_000, 0);
        for f in freqs {
            assert!((f - 0.25).abs() < 0.02, "freq {f}");
        }
    }

    #[test]
    fn skewed_distribution() {
        let freqs = empirical(&[8.0, 1.0, 1.0], 50_000, 1);
        assert!((freqs[0] - 0.8).abs() < 0.02);
        assert!((freqs[1] - 0.1).abs() < 0.02);
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let freqs = empirical(&[1.0, 0.0, 1.0], 20_000, 2);
        assert_eq!(freqs[1], 0.0);
    }

    #[test]
    fn single_outcome() {
        let freqs = empirical(&[3.5], 100, 3);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }
}
