//! The common interface every dynamic-network-embedding method
//! implements, mirroring Definition 4:
//! `Z^t = f^t(G^t, G^{t-1}, f^{t-1}, Z^{t-1})`.

use crate::embedding::Embedding;
use glodyne_graph::Snapshot;

/// A dynamic network embedding method under the incremental protocol.
///
/// The harness drives each method through the snapshot sequence with
/// [`DynamicEmbedder::advance`]; after each call the method's latest
/// embeddings are read with [`DynamicEmbedder::embedding`] and fed to
/// the downstream tasks — exactly the paper's evaluation protocol
/// ("we first take out the node embeddings obtained by each method ...
/// and then feed them to exactly the same downstream tasks", §5.2).
pub trait DynamicEmbedder {
    /// Consume the next snapshot. `prev` is `None` at `t = 0` (the
    /// offline stage of Algorithm 1).
    fn advance(&mut self, prev: Option<&Snapshot>, curr: &Snapshot);

    /// The current embeddings `Z^t`.
    fn embedding(&self) -> Embedding;

    /// Human-readable method name (table row label).
    fn name(&self) -> &'static str;
}

/// Drive an embedder across an entire snapshot sequence, returning the
/// embedding after each step.
pub fn run_over<E: DynamicEmbedder>(embedder: &mut E, snapshots: &[Snapshot]) -> Vec<Embedding> {
    let mut out = Vec::with_capacity(snapshots.len());
    let mut prev: Option<&Snapshot> = None;
    for snap in snapshots {
        embedder.advance(prev, snap);
        out.push(embedder.embedding());
        prev = Some(snap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};

    /// A trivial embedder: every node's vector is its degree.
    struct DegreeEmbedder {
        emb: Embedding,
    }

    impl DynamicEmbedder for DegreeEmbedder {
        fn advance(&mut self, _prev: Option<&Snapshot>, curr: &Snapshot) {
            for l in 0..curr.num_nodes() {
                self.emb.set(curr.node_id(l), &[curr.degree(l) as f32]);
            }
        }
        fn embedding(&self) -> Embedding {
            self.emb.clone()
        }
        fn name(&self) -> &'static str {
            "degree"
        }
    }

    #[test]
    fn run_over_visits_all_snapshots() {
        let s0 = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let s1 = Snapshot::from_edges(
            &[
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2)),
            ],
            &[],
        );
        let mut e = DegreeEmbedder {
            emb: Embedding::new(1),
        };
        let embs = run_over(&mut e, &[s0, s1]);
        assert_eq!(embs.len(), 2);
        assert_eq!(embs[0].get(NodeId(1)), Some(&[1.0f32][..]));
        assert_eq!(embs[1].get(NodeId(1)), Some(&[2.0f32][..]));
    }
}
