//! The common interface every dynamic-network-embedding method
//! implements, mirroring Definition 4:
//! `Z^t = f^t(G^t, G^{t-1}, f^{t-1}, Z^{t-1})`.
//!
//! The interface is *step-shaped*: the driver hands the method a
//! [`StepContext`] (current snapshot, previous snapshot if any, and the
//! precomputed [`SnapshotDiff`] between them) and receives a structured
//! [`StepReport`] back — phase timings, how many nodes were selected,
//! how many SGNS pairs were trained, how large the walk corpus was.
//! Every method reports through the same struct, so harnesses and the
//! streaming session layer read telemetry uniformly instead of through
//! per-method `last_*()` getters.
//!
//! Batch drivers ([`run_over`], [`run_over_reports`], [`step_with`])
//! adapt a plain snapshot sequence to the step interface — exactly the
//! paper's evaluation protocol ("we first take out the node embeddings
//! obtained by each method ... and then feed them to exactly the same
//! downstream tasks", §5.2).

use crate::embedding::Embedding;
use glodyne_graph::{Snapshot, SnapshotDiff};
use std::cell::OnceCell;
use std::time::Duration;

/// Wall-clock breakdown of one embedding step, matching the §5.2.4
/// scale test's reporting (partition+selection / walks / training).
///
/// Methods without a walk stage fold their whole step into `train`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Steps 1–2: partition and node selection.
    pub select: Duration,
    /// Step 3: random walks.
    pub walks: Duration,
    /// Step 4: model training.
    pub train: Duration,
}

impl PhaseTimes {
    /// Total step time.
    pub fn total(&self) -> Duration {
        self.select + self.walks + self.train
    }
}

/// Everything a method may consume for one step of the incremental
/// protocol (the arguments of Definition 4).
///
/// `prev` is `None` at `t = 0` — the offline stage of Algorithm 1.
/// [`StepContext::diff`] yields the edge-stream difference `ΔE^t`
/// between `prev` and `curr`: a driver that already tracks deltas can
/// hand one in via [`StepContext::transition`]; otherwise it is
/// computed lazily on first access, so methods that never read it
/// (most baselines) pay nothing.
#[derive(Debug)]
pub struct StepContext<'a> {
    /// `G^{t-1}`, absent at the offline step.
    pub prev: Option<&'a Snapshot>,
    /// `G^t`.
    pub curr: &'a Snapshot,
    /// Driver-supplied diff, if it already had one.
    precomputed: Option<&'a SnapshotDiff>,
    /// Lazily computed diff for drivers that didn't.
    lazy: OnceCell<SnapshotDiff>,
}

impl<'a> StepContext<'a> {
    /// The offline step context (`t = 0`): no previous snapshot.
    pub fn initial(curr: &'a Snapshot) -> Self {
        StepContext {
            prev: None,
            curr,
            precomputed: None,
            lazy: OnceCell::new(),
        }
    }

    /// An online step context with a diff the driver already computed.
    pub fn transition(prev: &'a Snapshot, curr: &'a Snapshot, diff: &'a SnapshotDiff) -> Self {
        StepContext {
            prev: Some(prev),
            curr,
            precomputed: Some(diff),
            lazy: OnceCell::new(),
        }
    }

    /// An online step context that computes the diff only if the method
    /// asks for it.
    pub fn transition_lazy(prev: &'a Snapshot, curr: &'a Snapshot) -> Self {
        StepContext {
            prev: Some(prev),
            curr,
            precomputed: None,
            lazy: OnceCell::new(),
        }
    }

    /// `ΔE^t` between `prev` and `curr`; `None` at the offline step.
    /// Computed at most once per context when not driver-supplied.
    pub fn diff(&self) -> Option<&SnapshotDiff> {
        let prev = self.prev?;
        Some(match self.precomputed {
            Some(d) => d,
            None => self
                .lazy
                .get_or_init(|| SnapshotDiff::compute(prev, self.curr)),
        })
    }

    /// Whether this is the offline (`t = 0`) step.
    pub fn is_initial(&self) -> bool {
        self.prev.is_none()
    }
}

/// Structured result of one embedding step, shared by all methods.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepReport {
    /// Wall-clock phase breakdown.
    pub phases: PhaseTimes,
    /// Nodes whose vectors this step updated (`|V^t_sel|`; for
    /// full-graph methods this is `|V^t|`).
    pub selected: usize,
    /// Positive training pairs/samples consumed — the numerator of the
    /// pairs/sec throughput the scale test reports. 0 for methods
    /// without a pair-sampling objective.
    pub trained_pairs: usize,
    /// Total tokens in the walk corpus trained on this step. 0 for
    /// walk-free methods.
    pub corpus_tokens: usize,
    /// Rows of the live embedding whose vector actually changed across
    /// this step (mutated or newly added) — the churn the incremental
    /// ANN maintenance reassigns. Methods report 0; drivers that can
    /// diff the embedding (`EmbedderSession` in `glodyne-core`) fill
    /// it in at commit time, so it is exact rather than an estimate
    /// like `selected`.
    pub dirty_rows: usize,
}

impl StepReport {
    /// Total wall-clock time of the step.
    pub fn total_time(&self) -> Duration {
        self.phases.total()
    }
}

/// A dynamic network embedding method under the incremental protocol.
///
/// The driver (batch harness or streaming session) calls
/// [`DynamicEmbedder::step`] once per snapshot boundary; after each call
/// the method's latest embeddings are read with
/// [`DynamicEmbedder::embedding`] and fed to downstream consumers.
pub trait DynamicEmbedder {
    /// Consume the next snapshot boundary and report what was done.
    fn step(&mut self, ctx: StepContext<'_>) -> StepReport;

    /// The current embeddings `Z^t`.
    fn embedding(&self) -> Embedding;

    /// Human-readable method name (table row label).
    fn name(&self) -> &'static str;
}

/// A [`DynamicEmbedder`] whose hidden state can round-trip through a
/// byte checkpoint — the contract the durability layer snapshots
/// against.
///
/// The pinned property is *bit-exact resumption*: restore a method
/// from `(export_state(), embedding())` and drive both the original
/// and the restored instance through the same subsequent steps (with
/// deterministic training configured) — every later `embedding()` must
/// agree bit for bit.
///
/// The embedding rows themselves travel separately (via the persist
/// layer's binary format, which snapshots already write); the exported
/// state carries only what the embedding cannot reconstruct — RNG
/// stream positions, auxiliary matrices, method-internal counters.
pub trait CheckpointEmbedder: DynamicEmbedder {
    /// Serialise the method's hidden state. The format is private to
    /// the method; only [`CheckpointEmbedder::import_state`] reads it.
    fn export_state(&self) -> Vec<u8>;

    /// Restore hidden state exported by the same method, paired with
    /// the embedding that was persisted alongside it. Fails on
    /// malformed or mismatching bytes (wrong method, wrong config
    /// shape) — never panics on corrupt input.
    fn import_state(&mut self, bytes: &[u8], embedding: &Embedding) -> Result<(), String>;
}

/// Run one step over a `(prev, curr)` snapshot pair — the batch adapter
/// from the old `advance(prev, curr)` call shape to [`StepContext`].
/// The diff is provided lazily: only methods that read it pay for it.
pub fn step_with<E: DynamicEmbedder + ?Sized>(
    embedder: &mut E,
    prev: Option<&Snapshot>,
    curr: &Snapshot,
) -> StepReport {
    match prev {
        None => embedder.step(StepContext::initial(curr)),
        Some(p) => embedder.step(StepContext::transition_lazy(p, curr)),
    }
}

/// Drive an embedder across an entire snapshot sequence, returning the
/// embedding after each step.
pub fn run_over<E: DynamicEmbedder + ?Sized>(
    embedder: &mut E,
    snapshots: &[Snapshot],
) -> Vec<Embedding> {
    run_over_reports(embedder, snapshots)
        .into_iter()
        .map(|(emb, _)| emb)
        .collect()
}

/// Like [`run_over`], but also return every step's [`StepReport`].
pub fn run_over_reports<E: DynamicEmbedder + ?Sized>(
    embedder: &mut E,
    snapshots: &[Snapshot],
) -> Vec<(Embedding, StepReport)> {
    let mut out = Vec::with_capacity(snapshots.len());
    let mut prev: Option<&Snapshot> = None;
    for snap in snapshots {
        let report = step_with(embedder, prev, snap);
        out.push((embedder.embedding(), report));
        prev = Some(snap);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};

    /// A trivial embedder: every node's vector is its degree.
    struct DegreeEmbedder {
        emb: Embedding,
    }

    impl DynamicEmbedder for DegreeEmbedder {
        fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
            for l in 0..ctx.curr.num_nodes() {
                self.emb
                    .set(ctx.curr.node_id(l), &[ctx.curr.degree(l) as f32]);
            }
            StepReport {
                selected: ctx.curr.num_nodes(),
                ..StepReport::default()
            }
        }
        fn embedding(&self) -> Embedding {
            self.emb.clone()
        }
        fn name(&self) -> &'static str {
            "degree"
        }
    }

    #[test]
    fn run_over_visits_all_snapshots() {
        let s0 = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let s1 = Snapshot::from_edges(
            &[
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2)),
            ],
            &[],
        );
        let mut e = DegreeEmbedder {
            emb: Embedding::new(1),
        };
        let embs = run_over(&mut e, &[s0, s1]);
        assert_eq!(embs.len(), 2);
        assert_eq!(embs[0].get(NodeId(1)), Some(&[1.0f32][..]));
        assert_eq!(embs[1].get(NodeId(1)), Some(&[2.0f32][..]));
    }

    #[test]
    fn reports_and_diff_are_provided() {
        struct DiffChecker {
            saw_initial: bool,
            saw_diff_edges: usize,
        }
        impl DynamicEmbedder for DiffChecker {
            fn step(&mut self, ctx: StepContext<'_>) -> StepReport {
                if ctx.is_initial() {
                    self.saw_initial = true;
                    assert!(ctx.diff().is_none());
                } else {
                    self.saw_diff_edges = ctx.diff().expect("online diff").num_changed_edges();
                }
                StepReport::default()
            }
            fn embedding(&self) -> Embedding {
                Embedding::new(0)
            }
            fn name(&self) -> &'static str {
                "diff-checker"
            }
        }
        let s0 = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let s1 = Snapshot::from_edges(
            &[
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2)),
            ],
            &[],
        );
        let mut c = DiffChecker {
            saw_initial: false,
            saw_diff_edges: 0,
        };
        let reports = run_over_reports(&mut c, &[s0, s1]);
        assert_eq!(reports.len(), 2);
        assert!(c.saw_initial);
        assert_eq!(c.saw_diff_edges, 1, "one edge added between snapshots");
    }

    #[test]
    fn lazy_diff_computes_once_and_precomputed_wins() {
        let s0 = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let s1 = Snapshot::from_edges(
            &[
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(1), NodeId(2)),
            ],
            &[],
        );
        let lazy = StepContext::transition_lazy(&s0, &s1);
        let a = lazy.diff().unwrap() as *const SnapshotDiff;
        let b = lazy.diff().unwrap() as *const SnapshotDiff;
        assert_eq!(a, b, "computed once, then cached");

        let pre = SnapshotDiff::compute(&s0, &s1);
        let ctx = StepContext::transition(&s0, &s1, &pre);
        assert!(
            std::ptr::eq(ctx.diff().unwrap(), &pre),
            "driver diff reused"
        );

        assert!(StepContext::initial(&s1).diff().is_none());
    }

    #[test]
    fn phase_times_total_sums() {
        let p = PhaseTimes {
            select: Duration::from_millis(1),
            walks: Duration::from_millis(2),
            train: Duration::from_millis(3),
        };
        assert_eq!(p.total(), Duration::from_millis(6));
        assert_eq!(
            StepReport {
                phases: p,
                ..Default::default()
            }
            .total_time(),
            Duration::from_millis(6)
        );
    }
}
