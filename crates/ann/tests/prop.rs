//! Property tests for the IVF index: `search` must never panic on
//! degenerate inputs, always respect its output contract, and recall
//! the exact scan's answers when every cell is probed.

use glodyne_ann::sq8::Sq8Arena;
use glodyne_ann::{BatchQuery, IvfConfig, IvfIndex};
use glodyne_embed::{rank_similarity, reference_top_k, Embedding};
use glodyne_graph::NodeId;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Ordering;

/// A random embedding seeded from `(n, dim, seed)`, salted with
/// degenerate rows: every 7th row is all zeros, every 11th row carries
/// a NaN component.
fn build_embedding(n: usize, dim: usize, seed: u64) -> Embedding {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut emb = Embedding::new(dim);
    for i in 0..n {
        let mut v: Vec<f32> = (0..dim)
            .map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0))
            .collect();
        if i % 7 == 3 {
            v.iter_mut().for_each(|x| *x = 0.0);
        }
        if i % 11 == 5 {
            v[0] = f32::NAN;
        }
        emb.set(NodeId(i as u32), &v);
    }
    emb
}

/// Approximately-Gaussian components (sum of 12 uniforms − 6).
fn gaussian_embedding(n: usize, dim: usize, seed: u64) -> Embedding {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut emb = Embedding::new(dim);
    for i in 0..n {
        let v: Vec<f32> = (0..dim)
            .map(|_| {
                (0..12)
                    .map(|_| rand::Rng::gen_range(&mut rng, 0.0f32..1.0))
                    .sum::<f32>()
                    - 6.0
            })
            .collect();
        emb.set(NodeId(i as u32), &v);
    }
    emb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Build + search never panic — including the empty epoch, k = 0,
    /// k > n, a single cell, cells > n, nprobe = 0, nprobe > cells,
    /// zero vectors, and NaN rows — and the results always honour the
    /// contract: self excluded, no duplicates, at most k hits, sorted
    /// by `rank_similarity`.
    #[test]
    fn search_never_panics_and_output_is_well_formed(
        (n, dim) in (0usize..40, 1usize..9),
        seed in 0u64..500,
        cells in 1usize..50,
        kmeans_iters in 1usize..5,
        k in 0usize..50,
        nprobe in 0usize..60,
        probe in 0u32..50,
        quantize in (0u8..2).prop_map(|b| b == 1),
        rerank_factor in 1usize..5,
    ) {
        let emb = build_embedding(n, dim, seed);
        let cfg = IvfConfig { cells, kmeans_iters, seed, quantize, rerank_factor, ..Default::default() };
        let index = IvfIndex::build(&emb, &cfg);
        prop_assert_eq!(index.len(), n);
        prop_assert!(index.cells() <= cells.max(1));

        let probe = NodeId(probe);
        let hits = match emb.get(probe) {
            Some(q) => index.search(q, k, nprobe, Some(probe)),
            // Probe without an embedding: search an arbitrary query
            // vector instead (no exclusion).
            None => index.search(&vec![0.5f32; dim], k, nprobe, None),
        };
        prop_assert!(hits.len() <= k.min(n));
        prop_assert!(hits.iter().all(|&(id, _)| id != probe || emb.get(probe).is_none()));
        for w in hits.windows(2) {
            prop_assert!(
                rank_similarity(&w[0], &w[1]) != Ordering::Greater,
                "results must be sorted by rank_similarity"
            );
        }
        let mut ids: Vec<NodeId> = hits.iter().map(|&(id, _)| id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len(), "no duplicate ids");

        // The re-ranking entry point honours the same contract on both
        // storage modes.
        let reranked = match emb.get(probe) {
            Some(q) => index.search_in(&emb, q, k, nprobe, Some(probe)),
            None => index.search_in(&emb, &vec![0.5f32; dim], k, nprobe, None),
        };
        prop_assert!(reranked.len() <= k.min(n));
        prop_assert!(reranked.iter().all(|&(id, _)| id != probe || emb.get(probe).is_none()));
        for w in reranked.windows(2) {
            prop_assert!(rank_similarity(&w[0], &w[1]) != Ordering::Greater);
        }
    }

    /// At `nprobe = cells` the candidate set is the whole epoch, so
    /// recall@10 against the executable spec (`reference_top_k`) is at
    /// least 0.9 on Gaussian embeddings. (It is in fact 1.0 — the
    /// kernel is shared bit-for-bit — but 0.9 is the contract.)
    #[test]
    fn full_probe_recall_at_10_is_high(
        n in 12usize..60,
        dim in 4usize..24,
        seed in 0u64..500,
        cells in 1usize..12,
    ) {
        let emb = gaussian_embedding(n, dim, seed);
        let cfg = IvfConfig { cells, ..Default::default() };
        let index = IvfIndex::build(&emb, &cfg);
        let mut overlap = 0usize;
        let mut expected = 0usize;
        for probe in (0..n as u32).step_by(5) {
            let probe = NodeId(probe);
            let exact = reference_top_k(&emb, probe, 10);
            let ann = index.search(emb.get(probe).unwrap(), 10, index.cells(), Some(probe));
            expected += exact.len();
            overlap += exact
                .iter()
                .filter(|(id, _)| ann.iter().any(|(aid, _)| aid == id))
                .count();
        }
        prop_assert!(expected > 0);
        let recall = overlap as f64 / expected as f64;
        prop_assert!(recall >= 0.9, "recall@10 = {recall} < 0.9 at nprobe = cells");
    }

    /// Rebuilding from the same embedding and config reproduces the
    /// same answers (the whole pipeline is deterministic).
    #[test]
    fn builds_are_reproducible(
        n in 1usize..30,
        seed in 0u64..200,
        cells in 1usize..8,
    ) {
        let emb = build_embedding(n, 6, seed);
        let cfg = IvfConfig { cells, ..Default::default() };
        let a = IvfIndex::build(&emb, &cfg);
        let b = IvfIndex::build(&emb, &cfg);
        for probe in 0..n as u32 {
            let probe = NodeId(probe);
            let q = emb.get(probe).unwrap();
            let ra = a.search(q, 5, 2, Some(probe));
            let rb = b.search(q, 5, 2, Some(probe));
            prop_assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(&rb) {
                prop_assert_eq!(x.0, y.0);
                prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    /// SQ8 round trip: every finite component dequantizes back within
    /// half a code step of its original value.
    #[test]
    fn sq8_round_trip_error_is_bounded(
        data in proptest::collection::vec(-100.0f32..100.0, 1..300),
    ) {
        let arena = Sq8Arena::quantize(&data);
        let bound = arena.max_component_error() * 1.001 + 1e-5;
        for (i, &x) in data.iter().enumerate() {
            let back = arena.dequantize(arena.row(i, 1)[0]);
            prop_assert!(
                (back - x).abs() <= bound,
                "i={} x={} back={} bound={}", i, x, back, bound
            );
        }
    }

    /// Quantized storage, full probe, and a re-rank pool covering every
    /// candidate: `search_in` must be **bit-exact** with the exact scan
    /// — the pool is the whole epoch and the re-rank is the exact
    /// kernel, so quantization cannot cost recall.
    #[test]
    fn quantized_full_probe_with_covering_rerank_is_exact(
        n in 5usize..60,
        dim in 2usize..16,
        seed in 0u64..300,
        cells in 1usize..8,
    ) {
        let emb = gaussian_embedding(n, dim, seed);
        let k = 10usize;
        let cfg = IvfConfig {
            cells,
            quantize: true,
            // Pool of rerank_factor·k >= n: every candidate is rescored
            // exactly.
            rerank_factor: n.div_ceil(k),
            ..Default::default()
        };
        let index = IvfIndex::build(&emb, &cfg);
        for probe in (0..n as u32).step_by(3) {
            let probe = NodeId(probe);
            let exact = reference_top_k(&emb, probe, k);
            let ann = index.search_in(&emb, emb.get(probe).unwrap(), k, index.cells(), Some(probe));
            prop_assert_eq!(ann.len(), exact.len());
            for (a, e) in ann.iter().zip(&exact) {
                prop_assert_eq!(a.0, e.0);
                prop_assert_eq!(a.1.to_bits(), e.1.to_bits());
            }
        }
    }

    /// Random churn streams: mutate/add rows step by step, maintain the
    /// index incrementally (`update_from`), and compare a full probe
    /// against a fresh full k-means build of the same embedding. At
    /// `nprobe = cells` both scan every row with the exact kernel, so
    /// the result sets must be **identical bit for bit** no matter how
    /// churn redistributed the posting lists — the recall pin of
    /// incremental maintenance. With the staleness trigger disarmed
    /// (10000 bp) and gentle churn, the chain must also actually stay
    /// incremental rather than silently rebuilding.
    #[test]
    fn incremental_chain_full_probe_matches_fresh_full_build(
        n in 12usize..48,
        dim in 2usize..10,
        seed in 0u64..200,
        cells in 1usize..6,
        steps in 1usize..4,
        quantize in (0u8..2).prop_map(|b| b == 1),
    ) {
        let mut emb = gaussian_embedding(n, dim, seed);
        let k = 10usize;
        let cfg = IvfConfig {
            cells,
            quantize,
            // Pool covers any epoch this test grows, so SQ8 full probes
            // are exact too.
            rerank_factor: 16,
            drift_stale_bp: 10_000,
            ..Default::default()
        };
        let mut index = IvfIndex::build(&emb, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37_79b9);
        for _ in 0..steps {
            // Churn ~10% of rows: mutate existing ids and append a new
            // one past the current population.
            let mut dirty = Vec::new();
            for _ in 0..(n / 10).max(1) {
                let id = NodeId(rand::Rng::gen_range(&mut rng, 0..emb.len() as u32 + 1));
                let v: Vec<f32> = (0..dim)
                    .map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0))
                    .collect();
                emb.set(id, &v);
                dirty.push(id);
            }
            index = IvfIndex::update_from(&index, &emb, &dirty, &cfg);
            let fresh = IvfIndex::build(&emb, &cfg);
            prop_assert_eq!(index.len(), fresh.len());
            prop_assert_eq!(index.cells(), fresh.cells());
            for probe in (0..emb.len() as u32).step_by(4) {
                let probe = NodeId(probe);
                let q = emb.get(probe).unwrap();
                let a = index.search_in(&emb, q, k, index.cells(), Some(probe));
                let b = fresh.search_in(&emb, q, k, fresh.cells(), Some(probe));
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    prop_assert_eq!(x.0, y.0);
                    prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
                }
            }
        }
        // ≤ ~40% cumulative churn against a disarmed 100% trigger: the
        // chain must have stayed incremental (no silent full rebuilds).
        prop_assert_eq!(index.build_kind(), glodyne_ann::BuildKind::Incremental);
        prop_assert!(index.stale_rows() > 0);
    }

    /// The cell-grouped batch scan must be bit-exact per query with the
    /// per-query scan — same hits, same scores to the bit — for both
    /// storage modes, partial and full probes, including queries that
    /// share cells, dimension-mismatched queries, and k > n.
    #[test]
    fn grouped_batch_scan_is_bit_exact_with_per_query_scan(
        (n, dim) in (1usize..40, 1usize..9),
        seed in 0u64..300,
        cells in 1usize..10,
        k in 1usize..20,
        nprobe in 1usize..12,
        batch in 1usize..9,
        quantize in (0u8..2).prop_map(|b| b == 1),
    ) {
        let emb = build_embedding(n, dim, seed);
        let cfg = IvfConfig { cells, quantize, ..Default::default() };
        let index = IvfIndex::build(&emb, &cfg);

        let bad_dim = vec![0.5f32; dim + 1];
        let queries: Vec<BatchQuery> = (0..batch)
            .map(|b| {
                let probe = NodeId(((b * 13) % n.max(1)) as u32);
                match emb.get(probe) {
                    // Every 5th query is dimension-mismatched: its slot
                    // must come back empty without poisoning the batch.
                    _ if b % 5 == 4 => BatchQuery { query: &bad_dim, exclude: None },
                    Some(q) => BatchQuery { query: q, exclude: Some(probe) },
                    None => BatchQuery { query: &bad_dim[..dim], exclude: None },
                }
            })
            .collect();

        let grouped = index.search_in_batch(&emb, &queries, k, nprobe);
        prop_assert_eq!(grouped.len(), queries.len());
        for (q, batch_hits) in queries.iter().zip(&grouped) {
            let solo = index.search_in(&emb, q.query, k, nprobe, q.exclude);
            prop_assert_eq!(batch_hits.len(), solo.len());
            for (x, y) in batch_hits.iter().zip(&solo) {
                prop_assert_eq!(x.0, y.0);
                prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }

        // The storage-level batch entry point honours the same pin.
        let grouped = index.search_batch(&queries, k, nprobe);
        for (q, batch_hits) in queries.iter().zip(&grouped) {
            let solo = index.search(q.query, k, nprobe, q.exclude);
            prop_assert_eq!(batch_hits.len(), solo.len());
            for (x, y) in batch_hits.iter().zip(&solo) {
                prop_assert_eq!(x.0, y.0);
                prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }
}
