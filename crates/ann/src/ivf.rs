//! The inverted-file index: flat per-cell posting lists over one
//! epoch's embedding rows.

use crate::kmeans;
use crate::sq8::Sq8Arena;
use glodyne_embed::embedding::{l2_norm, norm_cosine};
use glodyne_embed::kernel::{dot_fast_multi, scaled_dot_fast};
use glodyne_embed::{AlignedBuf, ConfigError, Embedding, TopKSelector};
use glodyne_graph::NodeId;
use std::time::{Duration, Instant};

/// Build-time parameters of an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Target number of coarse cells `c`. Clamped to the number of
    /// indexed rows at build time (an epoch smaller than `c` simply
    /// gets one row per cell).
    pub cells: usize,
    /// Lloyd iterations of the k-means quantiser.
    pub kmeans_iters: usize,
    /// Seed of the deterministic centroid initialisation.
    pub seed: u64,
    /// Store posting lists as SQ8 codes (u8 per component, one
    /// min/scale domain per index) instead of f32 — 4× less scan
    /// traffic and arena memory. Quantized scans are candidate
    /// generation only; [`IvfIndex::search_in`] re-ranks against the
    /// exact embedding (see `rerank_factor`).
    pub quantize: bool,
    /// With `quantize`, how many candidates the SQ8 scan hands to the
    /// exact re-rank, as a multiple of `k` (`rerank_factor * k` codes
    /// rescored with the exact f32 kernel). Must be ≥ 1; ignored
    /// without `quantize`.
    pub rerank_factor: usize,
    /// Drift trigger for [`IvfIndex::update_from`], in **basis points**
    /// (1/10000, an integer so the config keeps `Eq`): once the rows
    /// reassigned since the last full k-means — this update's dirty
    /// rows plus everything already patched before them — exceed this
    /// fraction of the epoch, the warm-started centroids are considered
    /// drifted and the update falls back to a full rebuild. In
    /// `[1, 10000]`; the default 2500 refreshes after a quarter of the
    /// epoch has churned.
    pub drift_stale_bp: u32,
    /// Cell-imbalance drift trigger for [`IvfIndex::update_from`], in
    /// **tenths** (40 = 4.0×, an integer so the config keeps `Eq`):
    /// after patching, if the largest posting list exceeds this factor
    /// times the larger of the previous index's largest list and the
    /// ideal mean (`n / cells`), churn has piled onto one stale
    /// centroid and the update falls back to a full rebuild. Must be
    /// ≥ 10 (1.0×).
    pub drift_cell_factor_x10: u32,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            cells: 64,
            kmeans_iters: 8,
            seed: 0,
            quantize: false,
            rerank_factor: 4,
            drift_stale_bp: 2500,
            drift_cell_factor_x10: 40,
        }
    }
}

impl IvfConfig {
    /// Validate the parameters, following the workspace's fallible
    /// config convention (reject degenerate values, never repair them
    /// silently).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cells < 1 {
            return Err(ConfigError::new("cells", "must be >= 1"));
        }
        if self.kmeans_iters < 1 {
            return Err(ConfigError::new("kmeans_iters", "must be >= 1"));
        }
        if self.rerank_factor < 1 {
            return Err(ConfigError::new("rerank_factor", "must be >= 1"));
        }
        if self.drift_stale_bp < 1 || self.drift_stale_bp > 10_000 {
            return Err(ConfigError::new(
                "drift_stale_bp",
                "must be in [1, 10000] basis points",
            ));
        }
        if self.drift_cell_factor_x10 < 10 {
            return Err(ConfigError::new(
                "drift_cell_factor_x10",
                "must be >= 10 (1.0x)",
            ));
        }
        Ok(())
    }
}

/// How an [`IvfIndex`] came to be — a fresh k-means build or an
/// incremental patch of the previous epoch's index
/// ([`IvfIndex::update_from`]). Surfaced through `stats.ann` and the
/// kind-labelled `index_build` telemetry histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildKind {
    /// Full spherical k-means over every row.
    Full,
    /// Warm-started centroids, only dirty rows reassigned.
    Incremental,
}

impl BuildKind {
    /// Wire/CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BuildKind::Full => "full",
            BuildKind::Incremental => "incremental",
        }
    }
}

/// How an [`IvfIndex`] stores its posting-list vectors — surfaced
/// through `stats.ann` on the wire so operators can see what a running
/// epoch actually scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// Full-precision f32 arena.
    F32,
    /// SQ8 codes (u8 per component) + exact re-rank.
    Sq8,
}

impl StorageMode {
    /// Wire/CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            StorageMode::F32 => "f32",
            StorageMode::Sq8 => "sq8",
        }
    }
}

/// The posting-list arena in one of the two storage modes. The f32
/// arena is cache-line aligned: partial-probe scans sweep it with the
/// SIMD-shaped fast kernel.
#[derive(Debug, Clone)]
enum PostingStorage {
    F32(AlignedBuf<f32>),
    Sq8(Sq8Arena),
}

/// Reusable scan buffers for [`IvfIndex::search_with`] /
/// [`IvfIndex::search_in_with`]: batched callers allocate one and
/// thread it through every query so cell-ranking and re-rank pools
/// reuse their allocations instead of growing fresh vectors per query.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Per-cell centroid similarities, reused across queries.
    cell_sims: Vec<(NodeId, f32)>,
    /// SQ8 candidate pool awaiting exact re-rank.
    pool: Vec<(NodeId, f32)>,
    /// Cell-grouped batch scan: `(cell, query index)` probe pairs,
    /// sorted by cell so each posting list is visited once per batch.
    probe_pairs: Vec<(u32, u32)>,
}

impl SearchScratch {
    /// Empty scratch; buffers grow to steady state over the first
    /// query and are reused afterwards.
    pub fn new() -> Self {
        SearchScratch::default()
    }
}

/// One query of a cell-grouped batch scan
/// ([`IvfIndex::search_batch`] / [`IvfIndex::search_in_batch`]): the
/// query vector plus the per-query self-exclusion the single-query
/// path takes as an argument.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// The query vector (`dim` components).
    pub query: &'a [f32],
    /// Node id to drop from this query's candidates (the probe node
    /// itself, matching `Embedding::top_k`'s self-exclusion).
    pub exclude: Option<NodeId>,
}

/// An immutable IVF index over one epoch's [`Embedding`].
///
/// Storage is fully flat, mirroring `WalkCorpus`: one row-major vector
/// arena grouped by cell, a parallel node-id table, cached per-row L2
/// norms, and a `cells + 1` offset table bounding each posting list.
/// Building is O(iters·n·c·d); the index never mutates afterwards —
/// the serving layer rebuilds it per committed epoch and publishes it
/// behind the same `Arc` swap as the embedding itself.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dim: usize,
    config: IvfConfig,
    /// `cells × dim` centroid matrix.
    centroids: Vec<f32>,
    /// Per-centroid L2 norms.
    centroid_norms: Vec<f32>,
    /// `cells + 1` offsets into `ids`/`norms` (and, scaled by `dim`,
    /// into `vectors`): cell `j` owns rows `offsets[j]..offsets[j+1]`.
    cell_offsets: Vec<u32>,
    /// Node ids grouped by cell (insertion order within a cell).
    ids: Vec<NodeId>,
    /// Row-major vector arena, grouped like `ids` — f32 or SQ8 codes
    /// depending on `config.quantize`.
    storage: PostingStorage,
    /// Cached *true* (pre-quantization) L2 norms, parallel to `ids` —
    /// f32 storage only (the full-probe exact kernel divides by these);
    /// empty for SQ8 storage, whose scans only ever use the
    /// reciprocals.
    norms: Vec<f32>,
    /// Cached reciprocals of the true norms (0 for zero-norm rows) —
    /// the partial-probe scans multiply by these instead of dividing
    /// per candidate (see [`scaled_dot_fast`]).
    inv_norms: Vec<f32>,
    /// Cached reciprocals of `centroid_norms` for cell ranking.
    inv_centroid_norms: Vec<f32>,
    /// Wall-clock time [`IvfIndex::build`] took.
    build_time: Duration,
    /// Whether this index came from a full k-means or an incremental
    /// patch of the previous epoch's index.
    build_kind: BuildKind,
    /// Rows this build reassigned (0 for a fresh full build; for
    /// [`IvfIndex::update_from`], the changed + added + removed rows it
    /// actually patched — or the dirty count that tripped a drift
    /// fallback).
    dirty_rows: usize,
    /// Rows reassigned since the last full k-means, cumulative across
    /// an incremental chain — the centroid-staleness measure behind
    /// `drift_stale_bp`.
    stale_rows: usize,
}

impl IvfIndex {
    /// Cluster `embedding`'s rows and lay out the posting lists. The
    /// build is deterministic in `(embedding, config)`; degenerate
    /// inputs (empty embedding, `cells > n`, zero or NaN rows) produce
    /// a well-formed index rather than an error — searching them just
    /// returns what the data supports.
    pub fn build(embedding: &Embedding, config: &IvfConfig) -> IvfIndex {
        let start = Instant::now();
        let dim = embedding.dim();
        let n = embedding.len();
        if n == 0 {
            return IvfIndex {
                dim,
                config: *config,
                centroids: Vec::new(),
                centroid_norms: Vec::new(),
                cell_offsets: vec![0],
                ids: Vec::new(),
                storage: if config.quantize {
                    PostingStorage::Sq8(Sq8Arena::quantize(&[]))
                } else {
                    PostingStorage::F32(AlignedBuf::new())
                },
                norms: Vec::new(),
                inv_norms: Vec::new(),
                inv_centroid_norms: Vec::new(),
                build_time: start.elapsed(),
                build_kind: BuildKind::Full,
                dirty_rows: 0,
                stale_rows: 0,
            };
        }
        let c = config.cells.clamp(1, n);

        // Snapshot the rows in insertion order.
        let mut row_ids = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n * dim);
        for (id, v) in embedding.iter() {
            row_ids.push(id);
            data.extend_from_slice(v);
        }
        let row_norms: Vec<f32> = (0..n)
            .map(|i| l2_norm(&data[i * dim..(i + 1) * dim]))
            .collect();

        let clustering =
            kmeans::cluster(&data, &row_norms, dim, c, config.kmeans_iters, config.seed);

        // Counting sort into the flat per-cell arenas (stable, so rows
        // keep their insertion order within a cell — deterministic).
        let mut cell_offsets = vec![0u32; c + 1];
        for &cell in &clustering.assignment {
            cell_offsets[cell as usize + 1] += 1;
        }
        for j in 0..c {
            cell_offsets[j + 1] += cell_offsets[j];
        }
        let mut cursor: Vec<u32> = cell_offsets[..c].to_vec();
        let mut ids = vec![NodeId(0); n];
        let mut vectors = AlignedBuf::<f32>::zeroed(n * dim);
        let mut norms = vec![0.0f32; n];
        for (i, &cell) in clustering.assignment.iter().enumerate() {
            let pos = cursor[cell as usize] as usize;
            cursor[cell as usize] += 1;
            ids[pos] = row_ids[i];
            norms[pos] = row_norms[i];
            vectors[pos * dim..(pos + 1) * dim].copy_from_slice(&data[i * dim..(i + 1) * dim]);
        }

        // Quantization happens here, on the build (trainer) thread —
        // readers only ever see the finished arena.
        let storage = if config.quantize {
            PostingStorage::Sq8(Sq8Arena::quantize(&vectors))
        } else {
            PostingStorage::F32(vectors)
        };

        let inv = |n: &f32| if *n == 0.0 { 0.0 } else { 1.0 / *n };
        let inv_norms = norms.iter().map(inv).collect();
        let inv_centroid_norms = clustering.centroid_norms.iter().map(inv).collect();
        // SQ8 scans never touch the raw norms (quantized candidates
        // are scaled by the reciprocals; the re-rank uses the exact
        // embedding's own norm cache) — don't pay 4 bytes/row for them.
        let norms = if config.quantize { Vec::new() } else { norms };
        IvfIndex {
            dim,
            config: *config,
            centroids: clustering.centroids,
            centroid_norms: clustering.centroid_norms,
            cell_offsets,
            ids,
            storage,
            norms,
            inv_norms,
            inv_centroid_norms,
            build_time: start.elapsed(),
            build_kind: BuildKind::Full,
            dirty_rows: 0,
            stale_rows: 0,
        }
    }

    /// Incrementally maintain the index across one epoch: keep `prev`'s
    /// centroids (warm start — the coarse geometry of an embedding
    /// changes slowly between steps, the paper's incrementality insight
    /// applied to the index itself) and reassign only the **dirty**
    /// rows — nodes the step touched, plus any additions/removals the
    /// embedding diff implies — to their nearest existing centroid.
    /// Unchanged rows keep their cell, so the per-epoch index cost is
    /// proportional to *change*, not to graph size.
    ///
    /// `dirty` must contain every node whose vector differs between
    /// the embedding `prev` was built over and `embedding` (a superset
    /// is fine and merely reassigns more rows; additions and removals
    /// are detected from the embedding itself even when unlisted).
    ///
    /// Falls back to [`IvfIndex::build`] — a full k-means rebuild —
    /// when the warm start cannot apply (`prev` empty, dimensionality
    /// or config changed) or when a **drift trigger** fires:
    ///
    /// - *staleness*: cumulative reassigned rows since the last full
    ///   k-means exceed `drift_stale_bp` basis points of the epoch, or
    /// - *cell imbalance*: the largest posting list after patching
    ///   exceeds `drift_cell_factor_x10 / 10 ×` the larger of `prev`'s
    ///   largest list and the ideal mean.
    ///
    /// SQ8 arenas **patch in place** under the same affine domain:
    /// survivor rows copy their codes byte for byte, changed rows
    /// quantize into the inherited domain — all cells re-quantize only
    /// when a changed component falls outside the domain (min/max
    /// drift). At `nprobe = cells` the result answers identically to a
    /// fresh full build over `embedding` (full probes scan every row
    /// with the exact kernel regardless of cell layout) — property-
    /// pinned in `tests/prop.rs`.
    pub fn update_from(
        prev: &IvfIndex,
        embedding: &Embedding,
        dirty: &[NodeId],
        config: &IvfConfig,
    ) -> IvfIndex {
        let start = Instant::now();
        let dim = embedding.dim();
        let n = embedding.len();
        let full = |dirty_rows: usize| {
            let mut ix = IvfIndex::build(embedding, config);
            ix.dirty_rows = dirty_rows;
            ix.build_time = start.elapsed();
            ix
        };
        // Warm start needs a compatible previous index: same build
        // parameters, same dimensionality, and at least one centroid.
        if n == 0 || prev.is_empty() || prev.dim != dim || prev.config != *config {
            return full(dirty.len());
        }
        let c = prev.cells();

        // Previous layout: id → (cell, prev arena row).
        let mut prev_pos = std::collections::HashMap::with_capacity(prev.ids.len());
        for (j, _) in prev.centroid_norms.iter().enumerate() {
            let (lo, hi) = prev.cell_bounds(j);
            for i in lo..hi {
                prev_pos.insert(prev.ids[i], (j as u32, i as u32));
            }
        }
        let dirty_set: std::collections::HashSet<NodeId> = dirty.iter().copied().collect();

        // Churn accounting before committing to the patch: rows this
        // update must reassign (dirty or newly added) plus removals.
        let mut surviving = 0usize;
        let mut reassigned = 0usize;
        for (id, _) in embedding.iter() {
            let known = prev_pos.contains_key(&id);
            if known {
                surviving += 1;
            }
            if !known || dirty_set.contains(&id) {
                reassigned += 1;
            }
        }
        let removed = prev.len() - surviving;
        let dirty_rows = reassigned + removed;
        let stale_rows = prev.stale_rows + dirty_rows;
        if (stale_rows as u64) * 10_000 > u64::from(config.drift_stale_bp) * n as u64 {
            return full(dirty_rows);
        }

        // Assignment: survivors keep their cell, dirty/new rows go to
        // the nearest warm-started centroid. Row iteration follows
        // embedding insertion order, exactly like `build`, so the
        // within-cell order matches what a fresh build with the same
        // assignment would produce — deterministic.
        let mut row_ids = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n * dim);
        let mut assignment = Vec::with_capacity(n);
        // SQ8 in-place patch bookkeeping: prev arena row of each
        // survivor (u32::MAX = changed row, quantize fresh), and
        // whether any changed component escapes the inherited domain.
        let prev_arena = match &prev.storage {
            PostingStorage::Sq8(a) => Some(a),
            PostingStorage::F32(_) => None,
        };
        let mut prev_row: Vec<u32> = Vec::with_capacity(if prev_arena.is_some() { n } else { 0 });
        let mut domain_drifted = false;
        for (id, v) in embedding.iter() {
            let clean = !dirty_set.contains(&id);
            let cell = match prev_pos.get(&id) {
                Some(&(cell, row)) if clean => {
                    if prev_arena.is_some() {
                        prev_row.push(row);
                    }
                    cell
                }
                _ => {
                    if let Some(arena) = prev_arena {
                        prev_row.push(u32::MAX);
                        domain_drifted = domain_drifted || v.iter().any(|&x| !arena.covers(x));
                    }
                    kmeans::nearest_centroid(
                        v,
                        l2_norm(v),
                        dim,
                        &prev.centroids,
                        &prev.centroid_norms,
                    )
                }
            };
            row_ids.push(id);
            data.extend_from_slice(v);
            assignment.push(cell);
        }

        // Counting sort into the new flat layout (same recipe as
        // `build`).
        let mut cell_offsets = vec![0u32; c + 1];
        for &cell in &assignment {
            cell_offsets[cell as usize + 1] += 1;
        }
        for j in 0..c {
            cell_offsets[j + 1] += cell_offsets[j];
        }

        // Cell-imbalance drift trigger: compare the patched layout's
        // largest posting list against what the last k-means produced.
        let max_cell = |offsets: &[u32]| {
            offsets
                .windows(2)
                .map(|w| (w[1] - w[0]) as usize)
                .max()
                .unwrap_or(0)
        };
        let baseline = max_cell(&prev.cell_offsets).max(n.div_ceil(c));
        if max_cell(&cell_offsets) * 10
            > baseline * u64::from(config.drift_cell_factor_x10) as usize
        {
            return full(dirty_rows);
        }

        let mut cursor: Vec<u32> = cell_offsets[..c].to_vec();
        let mut ids = vec![NodeId(0); n];
        let mut positions = vec![0u32; n];
        for (i, &cell) in assignment.iter().enumerate() {
            let pos = cursor[cell as usize] as usize;
            cursor[cell as usize] += 1;
            ids[pos] = row_ids[i];
            positions[i] = pos as u32;
        }
        let mut norms = vec![0.0f32; n];
        for (i, &pos) in positions.iter().enumerate() {
            norms[pos as usize] = l2_norm(&data[i * dim..(i + 1) * dim]);
        }

        let storage = match prev_arena {
            None => {
                let mut vectors = AlignedBuf::<f32>::zeroed(n * dim);
                for (i, &pos) in positions.iter().enumerate() {
                    let pos = pos as usize;
                    vectors[pos * dim..(pos + 1) * dim]
                        .copy_from_slice(&data[i * dim..(i + 1) * dim]);
                }
                PostingStorage::F32(vectors)
            }
            Some(_) if domain_drifted => {
                // Min/max domain drift: re-quantize every cell from the
                // gathered f32 rows under a fresh domain.
                let mut vectors = vec![0.0f32; n * dim];
                for (i, &pos) in positions.iter().enumerate() {
                    let pos = pos as usize;
                    vectors[pos * dim..(pos + 1) * dim]
                        .copy_from_slice(&data[i * dim..(i + 1) * dim]);
                }
                PostingStorage::Sq8(Sq8Arena::quantize(&vectors))
            }
            Some(arena) => {
                // In-place patch under the inherited domain: survivors
                // copy codes byte for byte, changed rows encode fresh.
                let (min, scale) = arena.domain();
                let mut codes = vec![0u8; n * dim];
                for (i, &pos) in positions.iter().enumerate() {
                    let pos = pos as usize;
                    let dst = &mut codes[pos * dim..(pos + 1) * dim];
                    match prev_row[i] {
                        u32::MAX => {
                            for (code, &x) in dst.iter_mut().zip(&data[i * dim..(i + 1) * dim]) {
                                *code = arena.encode(x);
                            }
                        }
                        row => dst.copy_from_slice(arena.row(row as usize, dim)),
                    }
                }
                PostingStorage::Sq8(Sq8Arena::from_codes(codes, min, scale))
            }
        };

        let inv = |n: &f32| if *n == 0.0 { 0.0 } else { 1.0 / *n };
        let inv_norms = norms.iter().map(inv).collect();
        let norms = if config.quantize { Vec::new() } else { norms };
        IvfIndex {
            dim,
            config: *config,
            centroids: prev.centroids.clone(),
            centroid_norms: prev.centroid_norms.clone(),
            cell_offsets,
            ids,
            storage,
            norms,
            inv_norms,
            inv_centroid_norms: prev.inv_centroid_norms.clone(),
            build_time: start.elapsed(),
            build_kind: BuildKind::Incremental,
            dirty_rows,
            stale_rows,
        }
    }

    /// The `k` cosine-nearest indexed rows to `query`, probing the
    /// `nprobe` cells whose centroids are most similar to the query
    /// (`nprobe` is clamped to `[1, cells]`). `exclude` drops one node
    /// id from the candidates — pass the probe node itself to match
    /// `Embedding::top_k`'s self-exclusion.
    ///
    /// This is the **storage-level** scan. For f32 storage the merge
    /// order ([`rank_similarity`](glodyne_embed::rank_similarity)
    /// through [`TopKSelector`]) is shared with the exact scan and the
    /// kernel selection honours the exact-vs-fast contract: a **full
    /// probe** (`nprobe = cells`) scans with the frozen exact kernel
    /// and is bit-exact with `Embedding::top_k`, while partial probes
    /// — approximate by contract — scan with the SIMD-shaped fast
    /// kernel. For SQ8 storage the returned scores live in the
    /// quantized domain; production callers should go through
    /// [`IvfIndex::search_in`], which re-ranks against the exact
    /// embedding. A `query` of the wrong dimensionality returns empty
    /// instead of panicking (the serving read path must never unwind).
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exclude: Option<NodeId>,
    ) -> Vec<(NodeId, f32)> {
        self.search_with(query, k, nprobe, exclude, &mut SearchScratch::new())
    }

    /// [`IvfIndex::search`] with caller-owned [`SearchScratch`] —
    /// batched callers thread one scratch through every query of a
    /// batch so the cell-ranking buffer is reused instead of
    /// reallocated per query.
    pub fn search_with(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exclude: Option<NodeId>,
        scratch: &mut SearchScratch,
    ) -> Vec<(NodeId, f32)> {
        if self.ids.is_empty() || k == 0 || query.len() != self.dim {
            return Vec::new();
        }
        let qn = l2_norm(query);
        let inv_qn = if qn == 0.0 { 0.0 } else { 1.0 / qn };
        let nprobe = self.effective_nprobe(nprobe);
        let full_probe = nprobe == self.cells();
        self.rank_cells(query, inv_qn, scratch);

        let mut select = TopKSelector::new(k);
        match &self.storage {
            PostingStorage::F32(vectors) => {
                for &(cell, _) in scratch.cell_sims.iter().take(nprobe) {
                    let (lo, hi) = self.cell_bounds(cell.0 as usize);
                    for i in lo..hi {
                        let id = self.ids[i];
                        if exclude == Some(id) {
                            continue;
                        }
                        let row = &vectors[i * self.dim..(i + 1) * self.dim];
                        // Kernel selection: the full probe is the
                        // bit-exactness surface, partial probes are
                        // approximate by contract.
                        let sim = if full_probe {
                            norm_cosine(query, qn, row, self.norms[i])
                        } else {
                            scaled_dot_fast(query, row, inv_qn * self.inv_norms[i])
                        };
                        select.push((id, sim));
                    }
                }
            }
            PostingStorage::Sq8(arena) => {
                let qsum: f32 = query.iter().sum();
                for &(cell, _) in scratch.cell_sims.iter().take(nprobe) {
                    let (lo, hi) = self.cell_bounds(cell.0 as usize);
                    for i in lo..hi {
                        let id = self.ids[i];
                        if exclude == Some(id) {
                            continue;
                        }
                        select.push((id, self.sq8_sim(arena, i, query, inv_qn, qsum)));
                    }
                }
            }
        }
        select.into_sorted()
    }

    /// The production search: storage-level candidate scan, then — for
    /// SQ8 storage — an **exact re-rank** of the best
    /// `rerank_factor · k` candidates against `exact` (the embedding
    /// this index was built from, which every epoch carries alongside
    /// it). Served similarities therefore always come from the exact
    /// f32 kernel; the quantized domain only chooses candidates. With
    /// f32 storage this is exactly [`IvfIndex::search`].
    ///
    /// At `nprobe = cells` with a `rerank_factor · k` pool covering
    /// every candidate, the SQ8 result is bit-exact with
    /// `Embedding::top_k` (property-pinned in `tests/prop.rs`): the
    /// pool is the whole epoch and the re-rank *is* the exact scan.
    pub fn search_in(
        &self,
        exact: &Embedding,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exclude: Option<NodeId>,
    ) -> Vec<(NodeId, f32)> {
        self.search_in_with(exact, query, k, nprobe, exclude, &mut SearchScratch::new())
    }

    /// [`IvfIndex::search_in`] with caller-owned scratch (see
    /// [`IvfIndex::search_with`]).
    pub fn search_in_with(
        &self,
        exact: &Embedding,
        query: &[f32],
        k: usize,
        nprobe: usize,
        exclude: Option<NodeId>,
        scratch: &mut SearchScratch,
    ) -> Vec<(NodeId, f32)> {
        let PostingStorage::Sq8(arena) = &self.storage else {
            return self.search_with(query, k, nprobe, exclude, scratch);
        };
        if self.ids.is_empty() || k == 0 || query.len() != self.dim {
            return Vec::new();
        }
        let qn = l2_norm(query);
        let inv_qn = if qn == 0.0 { 0.0 } else { 1.0 / qn };
        let nprobe = self.effective_nprobe(nprobe);
        self.rank_cells(query, inv_qn, scratch);

        // Candidate generation in the quantized domain: keep the
        // rerank_factor·k best codes.
        let pool_k = self.config.rerank_factor.saturating_mul(k);
        let qsum: f32 = query.iter().sum();
        let mut pool_select = TopKSelector::new(pool_k);
        for &(cell, _) in scratch.cell_sims.iter().take(nprobe) {
            let (lo, hi) = self.cell_bounds(cell.0 as usize);
            for i in lo..hi {
                let id = self.ids[i];
                if exclude == Some(id) {
                    continue;
                }
                pool_select.push((id, self.sq8_sim(arena, i, query, inv_qn, qsum)));
            }
        }
        scratch.pool.clear();
        scratch.pool.extend(pool_select.into_sorted());

        // Exact re-rank: rescore the pool with the frozen exact kernel
        // against the true f32 rows. A pool id missing from `exact`
        // (callers passing a mismatched embedding) keeps its quantized
        // score rather than panicking.
        let mut select = TopKSelector::new(k);
        for &(id, sq8_sim) in scratch.pool.iter() {
            let sim = match (exact.get(id), exact.norm(id)) {
                (Some(row), Some(rn)) => norm_cosine(query, qn, row, rn),
                _ => sq8_sim,
            };
            select.push((id, sim));
        }
        select.into_sorted()
    }

    /// [`IvfIndex::search`] over a whole batch with the
    /// **cell-grouped scan**: the batch's probed cells are grouped so
    /// each posting list is swept once for *every* query probing it (a
    /// queries×codes mini-kernel per row), instead of once per query.
    /// A posting list probed by `q` queries is read from memory once
    /// rather than `q` times — the batch finally amortizes scan
    /// traffic. Per query the result is **bit-exact** with
    /// [`IvfIndex::search_with`]: the per-row kernel expressions are
    /// identical and [`TopKSelector`]'s total order makes the merged
    /// result independent of scan order (property-pinned in
    /// `tests/prop.rs`).
    pub fn search_batch(
        &self,
        queries: &[BatchQuery<'_>],
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<(NodeId, f32)>> {
        self.search_batch_with(queries, k, nprobe, &mut SearchScratch::new())
    }

    /// [`IvfIndex::search_batch`] with caller-owned scratch.
    pub fn search_batch_with(
        &self,
        queries: &[BatchQuery<'_>],
        k: usize,
        nprobe: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Vec<(NodeId, f32)>> {
        if self.ids.is_empty() || k == 0 {
            return queries.iter().map(|_| Vec::new()).collect();
        }
        let nprobe = self.effective_nprobe(nprobe);
        let full_probe = nprobe == self.cells();
        let prep = self.prepare_batch(queries, nprobe, scratch);

        let mut selectors: Vec<TopKSelector> =
            (0..queries.len()).map(|_| TopKSelector::new(k)).collect();
        match &self.storage {
            PostingStorage::F32(vectors) => {
                self.scan_grouped(&scratch.probe_pairs, |lo, hi, run| {
                    if full_probe {
                        // Full probes are the bit-exactness surface:
                        // the exact kernel, one query at a time.
                        for &(_, qi) in run {
                            let qi = qi as usize;
                            let q = queries[qi];
                            let select = &mut selectors[qi];
                            for i in lo..hi {
                                let id = self.ids[i];
                                if q.exclude == Some(id) {
                                    continue;
                                }
                                let row = &vectors[i * self.dim..(i + 1) * self.dim];
                                select.push((
                                    id,
                                    norm_cosine(q.query, prep[qi].0, row, self.norms[i]),
                                ));
                            }
                        }
                        return;
                    }
                    // Partial probes: sweep the cell once per group of
                    // up to 4 queries through the fused kernel — each
                    // query's score is bit-identical to its standalone
                    // `scaled_dot_fast`, the fusion only interleaves
                    // independent accumulation chains.
                    let mut rest = run;
                    while !rest.is_empty() {
                        let take = rest.len().min(4);
                        let (group, tail) = rest.split_at(take);
                        match take {
                            4 => scan_fused::<4>(
                                self,
                                vectors,
                                lo..hi,
                                group,
                                queries,
                                &prep,
                                &mut selectors,
                            ),
                            3 => scan_fused::<3>(
                                self,
                                vectors,
                                lo..hi,
                                group,
                                queries,
                                &prep,
                                &mut selectors,
                            ),
                            2 => scan_fused::<2>(
                                self,
                                vectors,
                                lo..hi,
                                group,
                                queries,
                                &prep,
                                &mut selectors,
                            ),
                            _ => scan_fused::<1>(
                                self,
                                vectors,
                                lo..hi,
                                group,
                                queries,
                                &prep,
                                &mut selectors,
                            ),
                        }
                        rest = tail;
                    }
                });
            }
            PostingStorage::Sq8(arena) => {
                self.scan_grouped(&scratch.probe_pairs, |lo, hi, run| {
                    for &(_, qi) in run {
                        let qi = qi as usize;
                        let q = queries[qi];
                        let select = &mut selectors[qi];
                        for i in lo..hi {
                            let id = self.ids[i];
                            if q.exclude == Some(id) {
                                continue;
                            }
                            select.push((
                                id,
                                self.sq8_sim(arena, i, q.query, prep[qi].1, prep[qi].2),
                            ));
                        }
                    }
                });
            }
        }
        selectors
            .into_iter()
            .map(TopKSelector::into_sorted)
            .collect()
    }

    /// [`IvfIndex::search_in`] over a whole batch: the cell-grouped
    /// candidate scan of [`IvfIndex::search_batch`], then — for SQ8
    /// storage — the same per-query exact re-rank as the single-query
    /// path. Per query, bit-exact with [`IvfIndex::search_in_with`].
    pub fn search_in_batch(
        &self,
        exact: &Embedding,
        queries: &[BatchQuery<'_>],
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<(NodeId, f32)>> {
        self.search_in_batch_with(exact, queries, k, nprobe, &mut SearchScratch::new())
    }

    /// [`IvfIndex::search_in_batch`] with caller-owned scratch.
    pub fn search_in_batch_with(
        &self,
        exact: &Embedding,
        queries: &[BatchQuery<'_>],
        k: usize,
        nprobe: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Vec<(NodeId, f32)>> {
        let PostingStorage::Sq8(arena) = &self.storage else {
            return self.search_batch_with(queries, k, nprobe, scratch);
        };
        if self.ids.is_empty() || k == 0 {
            return queries.iter().map(|_| Vec::new()).collect();
        }
        let nprobe = self.effective_nprobe(nprobe);
        let prep = self.prepare_batch(queries, nprobe, scratch);

        // Grouped candidate generation in the quantized domain, one
        // rerank_factor·k pool selector per query.
        let pool_k = self.config.rerank_factor.saturating_mul(k);
        let mut pools: Vec<TopKSelector> = (0..queries.len())
            .map(|_| TopKSelector::new(pool_k))
            .collect();
        self.scan_grouped(&scratch.probe_pairs, |lo, hi, run| {
            for &(_, qi) in run {
                let qi = qi as usize;
                let q = queries[qi];
                let pool = &mut pools[qi];
                for i in lo..hi {
                    let id = self.ids[i];
                    if q.exclude == Some(id) {
                        continue;
                    }
                    pool.push((id, self.sq8_sim(arena, i, q.query, prep[qi].1, prep[qi].2)));
                }
            }
        });

        // Per-query exact re-rank, identical to `search_in_with`.
        pools
            .into_iter()
            .enumerate()
            .map(|(qi, pool)| {
                let q = queries[qi];
                let qn = prep[qi].0;
                let mut select = TopKSelector::new(k);
                for (id, sq8_sim) in pool.into_sorted() {
                    let sim = match (exact.get(id), exact.norm(id)) {
                        (Some(row), Some(rn)) => norm_cosine(q.query, qn, row, rn),
                        _ => sq8_sim,
                    };
                    select.push((id, sim));
                }
                select.into_sorted()
            })
            .collect()
    }

    /// Shared batch preamble: per-query `(qn, inv_qn, qsum)` plus the
    /// `(cell, query)` probe pairs sorted by cell into
    /// `scratch.probe_pairs`. A query of the wrong dimensionality gets
    /// no probe pairs (so its result stays empty, matching the
    /// single-query contract).
    fn prepare_batch(
        &self,
        queries: &[BatchQuery<'_>],
        nprobe: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<(f32, f32, f32)> {
        scratch.probe_pairs.clear();
        let mut prep = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            if q.query.len() != self.dim {
                prep.push((0.0, 0.0, 0.0));
                continue;
            }
            let qn = l2_norm(q.query);
            let inv_qn = if qn == 0.0 { 0.0 } else { 1.0 / qn };
            let qsum: f32 = q.query.iter().sum();
            prep.push((qn, inv_qn, qsum));
            self.rank_cells(q.query, inv_qn, scratch);
            for &(cell, _) in scratch.cell_sims.iter().take(nprobe) {
                scratch.probe_pairs.push((cell.0, qi as u32));
            }
        }
        scratch.probe_pairs.sort_unstable();
        prep
    }

    /// Drive `body` over the sorted `(cell, query)` probe pairs one
    /// cell at a time: for each probed cell, `body(lo, hi, run)` fires
    /// once with the cell's posting-row bounds and the slice of pairs
    /// (the queries probing that cell). The callee sweeps the rows
    /// once per interested query — the first sweep pulls the posting
    /// list out of memory, the rest hit cache (a `√n`-cell list is far
    /// smaller than the arena), so a list probed by `q` queries costs
    /// one memory pass instead of `q` while each sweep keeps the tight
    /// single-query inner loop the kernel optimizes for.
    fn scan_grouped<F>(&self, probe_pairs: &[(u32, u32)], mut body: F)
    where
        F: FnMut(usize, usize, &[(u32, u32)]),
    {
        let mut p = 0;
        while p < probe_pairs.len() {
            let cell = probe_pairs[p].0;
            let mut end = p + 1;
            while end < probe_pairs.len() && probe_pairs[end].0 == cell {
                end += 1;
            }
            let (lo, hi) = self.cell_bounds(cell as usize);
            body(lo, hi, &probe_pairs[p..end]);
            p = end;
        }
    }

    /// Rank every cell by centroid similarity into
    /// `scratch.cell_sims`, best first under `rank_similarity` — the
    /// fast kernel, since cell ranking only chooses which posting
    /// lists to visit (a full probe visits all of them regardless of
    /// order, so the bit-exactness pins don't depend on it).
    fn rank_cells(&self, query: &[f32], inv_qn: f32, scratch: &mut SearchScratch) {
        scratch.cell_sims.clear();
        for j in 0..self.cells() {
            let sim = scaled_dot_fast(
                query,
                &self.centroids[j * self.dim..(j + 1) * self.dim],
                inv_qn * self.inv_centroid_norms[j],
            );
            // Cell index riding in the NodeId slot; cells <= n so it
            // always fits u32.
            scratch.cell_sims.push((NodeId(j as u32), sim));
        }
        scratch
            .cell_sims
            .sort_unstable_by(glodyne_embed::rank_similarity);
    }

    /// The posting-row bounds of cell `j`.
    #[inline]
    fn cell_bounds(&self, j: usize) -> (usize, usize) {
        (
            self.cell_offsets[j] as usize,
            self.cell_offsets[j + 1] as usize,
        )
    }

    /// Guarded cosine of `query` against SQ8 row `i`, in the
    /// dequantized domain over the row's *true* cached norm (via its
    /// cached reciprocal — see [`scaled_dot_fast`] for the contract).
    #[inline]
    fn sq8_sim(&self, arena: &Sq8Arena, i: usize, query: &[f32], inv_qn: f32, qsum: f32) -> f32 {
        let scale = inv_qn * self.inv_norms[i];
        if scale == 0.0 {
            0.0
        } else {
            arena.dot(i, self.dim, query, qsum) * scale
        }
    }

    /// Embedding dimensionality the index was built over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index holds no rows (empty epoch).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Effective number of coarse cells (the configured target clamped
    /// to the row count; 0 for an empty index).
    pub fn cells(&self) -> usize {
        self.centroid_norms.len()
    }

    /// The probe width [`IvfIndex::search`] will actually use for a
    /// requested `nprobe` — clamped into `[1, cells]`. The single home
    /// of that clamp: every surface that *reports* a probe width (the
    /// wire `nprobe` echo, the CLI output) derives it from here so it
    /// can never diverge from what the scan did.
    pub fn effective_nprobe(&self, nprobe: usize) -> usize {
        nprobe.min(self.cells()).max(1)
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &IvfConfig {
        &self.config
    }

    /// How the posting lists are stored (`f32` or `sq8`) — what
    /// `stats.ann` reports on the wire.
    pub fn storage_mode(&self) -> StorageMode {
        match self.storage {
            PostingStorage::F32(_) => StorageMode::F32,
            PostingStorage::Sq8(_) => StorageMode::Sq8,
        }
    }

    /// Resident bytes of the searchable structures: the posting arena
    /// (4 bytes/component for f32, 1 for SQ8) plus the id table,
    /// cached norms, offsets, and centroids. The memory story behind
    /// `quantize` — at d=128 the SQ8 arena shrinks this ~3.8×.
    pub fn index_bytes(&self) -> usize {
        let arena = match &self.storage {
            PostingStorage::F32(v) => std::mem::size_of_val(v.as_slice()),
            PostingStorage::Sq8(a) => a.bytes(),
        };
        arena
            + std::mem::size_of_val(self.ids.as_slice())
            + std::mem::size_of_val(self.norms.as_slice())
            + std::mem::size_of_val(self.inv_norms.as_slice())
            + std::mem::size_of_val(self.cell_offsets.as_slice())
            + std::mem::size_of_val(self.centroids.as_slice())
            + std::mem::size_of_val(self.centroid_norms.as_slice())
            + std::mem::size_of_val(self.inv_centroid_norms.as_slice())
    }

    /// Wall-clock time the build took — the per-epoch cost the serving
    /// layer reports through `stats`.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Whether this index came from a full k-means
    /// ([`IvfIndex::build`]) or an incremental patch
    /// ([`IvfIndex::update_from`]) — what `stats.ann.build_kind`
    /// reports on the wire.
    pub fn build_kind(&self) -> BuildKind {
        self.build_kind
    }

    /// Rows this build reassigned (see the field docs) — what
    /// `stats.ann.dirty_rows` reports on the wire.
    pub fn dirty_rows(&self) -> usize {
        self.dirty_rows
    }

    /// Cumulative rows reassigned since the last full k-means — the
    /// staleness measure the `drift_stale_bp` trigger compares against.
    pub fn stale_rows(&self) -> usize {
        self.stale_rows
    }
}

/// One fused partial-probe sweep of posting rows `lo..hi` for the `N`
/// queries in `group` (entries are `(cell, query)` probe pairs). Each
/// row is loaded once and dotted against all `N` queries via
/// [`dot_fast_multi`], whose per-slot result is bit-identical to a
/// standalone `dot_fast` — so each query's score here matches the
/// per-query scan's `scaled_dot_fast` to the bit, and the grouped path
/// stays bit-exact while hiding FMA latency across independent
/// accumulator chains.
fn scan_fused<const N: usize>(
    index: &IvfIndex,
    vectors: &[f32],
    rows: std::ops::Range<usize>,
    group: &[(u32, u32)],
    queries: &[BatchQuery<'_>],
    prep: &[(f32, f32, f32)],
    selectors: &mut [TopKSelector],
) {
    debug_assert_eq!(group.len(), N);
    let qv: [&[f32]; N] = std::array::from_fn(|j| queries[group[j].1 as usize].query);
    let dim = index.dim;
    for i in rows {
        let id = index.ids[i];
        let row = &vectors[i * dim..(i + 1) * dim];
        let dots = dot_fast_multi::<N>(qv, row);
        for j in 0..N {
            let qi = group[j].1 as usize;
            if queries[qi].exclude == Some(id) {
                continue;
            }
            // Same scaling expression as the per-query kernel:
            // `scaled_dot_fast` computes `dot_fast(q, row) * scale`.
            selectors[qi].push((id, dots[j] * (prep[qi].1 * index.inv_norms[i])));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::reference_top_k;

    /// Deterministic pseudo-random embedding (SplitMix64-style mixing,
    /// same recipe as the embed crate's bit-exactness test).
    fn pseudo_random_embedding(n: u32, dim: usize, salt: u64) -> Embedding {
        let mut e = Embedding::new(dim);
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ salt;
        let mut next = move || {
            state = state.wrapping_mul(0xd129_42e2_96fe_94e3).wrapping_add(1);
            ((state >> 40) as f32) / 1e6 - 8.0
        };
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| next()).collect();
            e.set(NodeId(i), &v);
        }
        e
    }

    fn assert_bit_exact(a: &[(NodeId, f32)], b: &[(NodeId, f32)]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn empty_embedding_builds_and_searches_empty() {
        let e = Embedding::new(4);
        let ix = IvfIndex::build(&e, &IvfConfig::default());
        assert!(ix.is_empty());
        assert_eq!(ix.cells(), 0);
        assert_eq!(ix.len(), 0);
        assert!(ix.search(&[1.0, 0.0, 0.0, 0.0], 5, 3, None).is_empty());
    }

    #[test]
    fn full_probe_is_bit_exact_with_the_linear_scan() {
        let e = pseudo_random_embedding(80, 9, 42);
        let cfg = IvfConfig {
            cells: 7,
            ..Default::default()
        };
        let ix = IvfIndex::build(&e, &cfg);
        assert_eq!(ix.cells(), 7);
        assert_eq!(ix.len(), 80);
        for probe in [0u32, 13, 79] {
            let node = NodeId(probe);
            let q = e.get(node).unwrap();
            let ann = ix.search(q, 12, ix.cells(), Some(node));
            let exact = e.top_k(node, 12);
            assert_bit_exact(&ann, &exact);
            // ...which is itself pinned to the executable spec.
            assert_bit_exact(&exact, &reference_top_k(&e, node, 12));
        }
    }

    #[test]
    fn single_cell_index_is_the_exact_scan() {
        let e = pseudo_random_embedding(30, 5, 7);
        let cfg = IvfConfig {
            cells: 1,
            ..Default::default()
        };
        let ix = IvfIndex::build(&e, &cfg);
        assert_eq!(ix.cells(), 1);
        let node = NodeId(11);
        let ann = ix.search(e.get(node).unwrap(), 8, 1, Some(node));
        assert_bit_exact(&ann, &e.top_k(node, 8));
    }

    #[test]
    fn builds_are_deterministic() {
        let e = pseudo_random_embedding(60, 6, 3);
        let cfg = IvfConfig {
            cells: 5,
            seed: 99,
            ..Default::default()
        };
        let a = IvfIndex::build(&e, &cfg);
        let b = IvfIndex::build(&e, &cfg);
        assert_eq!(a.cell_offsets, b.cell_offsets);
        assert_eq!(a.ids, b.ids);
        assert_eq!(
            a.centroids.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.centroids.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        let q = e.get(NodeId(4)).unwrap();
        assert_bit_exact(
            &a.search(q, 10, 2, Some(NodeId(4))),
            &b.search(q, 10, 2, Some(NodeId(4))),
        );
    }

    #[test]
    fn cells_clamp_to_population_and_k_clamps_to_candidates() {
        let e = pseudo_random_embedding(4, 3, 1);
        let cfg = IvfConfig {
            cells: 64,
            ..Default::default()
        };
        let ix = IvfIndex::build(&e, &cfg);
        assert_eq!(ix.cells(), 4, "cells clamp to n");
        let node = NodeId(0);
        let hits = ix.search(e.get(node).unwrap(), 100, 64, Some(node));
        assert_eq!(hits.len(), 3, "k > n returns every other row");
        assert_bit_exact(&hits, &e.top_k(node, 100));
    }

    #[test]
    fn degenerate_rows_never_panic_and_rank_last_on_full_probe() {
        let mut e = pseudo_random_embedding(20, 4, 5);
        e.set(NodeId(100), &[0.0; 4]); // zero vector
        e.set(NodeId(101), &[f32::NAN, 1.0, 0.0, 0.0]); // NaN row
        e.set(NodeId(102), &[f32::INFINITY, 0.0, 0.0, 0.0]); // inf row
        let cfg = IvfConfig {
            cells: 4,
            ..Default::default()
        };
        let ix = IvfIndex::build(&e, &cfg);
        let node = NodeId(3);
        let ann = ix.search(e.get(node).unwrap(), 30, ix.cells(), Some(node));
        assert_bit_exact(&ann, &e.top_k(node, 30));
        // Both the NaN row and the inf row (inf/inf) score NaN and sink
        // below every real similarity, mutual tie toward the smaller id.
        let tail: Vec<NodeId> = ann[ann.len() - 2..].iter().map(|&(id, _)| id).collect();
        assert_eq!(
            tail,
            vec![NodeId(101), NodeId(102)],
            "NaN candidates sink last"
        );
        // Searching *from* degenerate vectors is also panic-free.
        for probe in [NodeId(100), NodeId(101), NodeId(102)] {
            let hits = ix.search(e.get(probe).unwrap(), 5, 2, Some(probe));
            assert!(hits.len() <= 5);
            assert!(hits.iter().all(|&(id, _)| id != probe));
        }
    }

    #[test]
    fn wrong_dimension_query_is_empty_not_a_panic() {
        let e = pseudo_random_embedding(10, 4, 2);
        let ix = IvfIndex::build(&e, &IvfConfig::default());
        assert!(ix.search(&[1.0, 2.0], 3, 1, None).is_empty());
    }

    #[test]
    fn clustered_data_recalls_its_cluster_at_low_nprobe() {
        // Three tight, well-separated direction clusters: probing one
        // cell out of three must already return same-cluster members.
        let dim = 8;
        let mut e = Embedding::new(dim);
        let mut state = 11u64;
        let mut jitter = move || {
            state = state.wrapping_mul(0xd129_42e2_96fe_94e3).wrapping_add(1);
            ((state >> 40) as f32) / 1e7 - 0.8
        };
        for i in 0..45u32 {
            let axis = (i % 3) as usize;
            let mut v = vec![0.0f32; dim];
            for (d, x) in v.iter_mut().enumerate() {
                *x = if d == axis { 10.0 } else { 0.0 } + jitter();
            }
            e.set(NodeId(i), &v);
        }
        let cfg = IvfConfig {
            cells: 3,
            kmeans_iters: 10,
            seed: 4,
            ..Default::default()
        };
        let ix = IvfIndex::build(&e, &cfg);
        let node = NodeId(0); // cluster: ids ≡ 0 (mod 3)
        let hits = ix.search(e.get(node).unwrap(), 10, 1, Some(node));
        assert_eq!(hits.len(), 10);
        assert!(
            hits.iter().all(|&(id, _)| id.0 % 3 == 0),
            "one probed cell must be the probe's own cluster: {hits:?}"
        );
        let exact: Vec<NodeId> = e.top_k(node, 10).iter().map(|&(id, _)| id).collect();
        let got: Vec<NodeId> = hits.iter().map(|&(id, _)| id).collect();
        assert_eq!(got, exact, "recall@10 = 1 on separable clusters");
    }

    #[test]
    fn config_validation_rejects_degenerates() {
        assert!(IvfConfig::default().validate().is_ok());
        let bad = IvfConfig {
            cells: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "cells");
        let bad = IvfConfig {
            kmeans_iters: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "kmeans_iters");
        let bad = IvfConfig {
            rerank_factor: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "rerank_factor");
    }

    #[test]
    fn sq8_storage_shrinks_index_bytes_at_least_3_5x_at_d128() {
        // Enough rows that the arenas dominate the (shared-size)
        // centroid table, as in any production-sized epoch.
        let e = pseudo_random_embedding(2000, 128, 21);
        let cfg = IvfConfig {
            cells: 32,
            ..Default::default()
        };
        let f32_ix = IvfIndex::build(&e, &cfg);
        let sq8_ix = IvfIndex::build(
            &e,
            &IvfConfig {
                quantize: true,
                ..cfg
            },
        );
        assert_eq!(f32_ix.storage_mode(), StorageMode::F32);
        assert_eq!(sq8_ix.storage_mode(), StorageMode::Sq8);
        assert_eq!(f32_ix.storage_mode().as_str(), "f32");
        assert_eq!(sq8_ix.storage_mode().as_str(), "sq8");
        let ratio = f32_ix.index_bytes() as f64 / sq8_ix.index_bytes() as f64;
        assert!(
            ratio >= 3.5,
            "f32 {} bytes vs sq8 {} bytes: ratio {ratio:.2} < 3.5",
            f32_ix.index_bytes(),
            sq8_ix.index_bytes()
        );
    }

    #[test]
    fn quantized_full_probe_with_covering_rerank_is_bit_exact() {
        let e = pseudo_random_embedding(80, 9, 42);
        let cfg = IvfConfig {
            cells: 7,
            quantize: true,
            rerank_factor: 8, // 8 · 12 ≥ 80: the pool covers the epoch
            ..Default::default()
        };
        let ix = IvfIndex::build(&e, &cfg);
        for probe in [0u32, 13, 79] {
            let node = NodeId(probe);
            let q = e.get(node).unwrap();
            let ann = ix.search_in(&e, q, 12, ix.cells(), Some(node));
            assert_bit_exact(&ann, &e.top_k(node, 12));
        }
        // Degenerate rows stay panic-free through the quantized path
        // too.
        let mut e = e;
        e.set(NodeId(100), &[0.0; 9]);
        e.set(NodeId(101), &[f32::NAN; 9]);
        let ix = IvfIndex::build(&e, &cfg);
        for probe in [NodeId(0), NodeId(100), NodeId(101)] {
            let hits = ix.search_in(&e, e.get(probe).unwrap(), 5, 2, Some(probe));
            assert!(hits.len() <= 5);
            assert!(hits.iter().all(|&(id, _)| id != probe));
        }
    }

    #[test]
    fn update_from_reassigns_only_dirty_rows_and_keeps_centroids() {
        let e0 = pseudo_random_embedding(60, 6, 17);
        let cfg = IvfConfig {
            cells: 5,
            ..Default::default()
        };
        let prev = IvfIndex::build(&e0, &cfg);
        assert_eq!(prev.build_kind(), BuildKind::Full);
        assert_eq!(prev.dirty_rows(), 0);
        assert_eq!(prev.stale_rows(), 0);

        // Mutate two rows, add one.
        let mut e1 = e0.clone();
        e1.set(NodeId(3), &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        e1.set(NodeId(40), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        e1.set(NodeId(60), &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        let dirty = [NodeId(3), NodeId(40)];
        let ix = IvfIndex::update_from(&prev, &e1, &dirty, &cfg);
        assert_eq!(ix.build_kind(), BuildKind::Incremental);
        assert_eq!(ix.dirty_rows(), 3, "2 mutated + 1 added");
        assert_eq!(ix.stale_rows(), 3);
        assert_eq!(ix.len(), 61);
        // Warm start: the centroids are the previous epoch's, bit for
        // bit.
        assert_eq!(
            ix.centroids.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            prev.centroids
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
        // Full probe answers exactly like a fresh full build.
        let fresh = IvfIndex::build(&e1, &cfg);
        for probe in [0u32, 3, 40, 60] {
            let node = NodeId(probe);
            let q = e1.get(node).unwrap();
            assert_bit_exact(
                &ix.search(q, 10, ix.cells(), Some(node)),
                &fresh.search(q, 10, fresh.cells(), Some(node)),
            );
        }
        // Chaining accumulates staleness.
        let mut e2 = e1.clone();
        e2.set(NodeId(7), &[0.5; 6]);
        let ix2 = IvfIndex::update_from(&ix, &e2, &[NodeId(7)], &cfg);
        assert_eq!(ix2.build_kind(), BuildKind::Incremental);
        assert_eq!(ix2.dirty_rows(), 1);
        assert_eq!(ix2.stale_rows(), 4);
    }

    #[test]
    fn update_from_counts_removed_rows_and_drops_them() {
        let e0 = pseudo_random_embedding(30, 4, 8);
        let cfg = IvfConfig {
            cells: 4,
            ..Default::default()
        };
        let prev = IvfIndex::build(&e0, &cfg);
        // A shrunken epoch: rebuild the embedding without two nodes
        // (the sharded repartition path hands the trainer exactly this
        // shape).
        let mut e1 = Embedding::new(4);
        for (id, v) in e0.iter() {
            if id != NodeId(5) && id != NodeId(20) {
                e1.set(id, v);
            }
        }
        let ix = IvfIndex::update_from(&prev, &e1, &[], &cfg);
        assert_eq!(ix.build_kind(), BuildKind::Incremental);
        assert_eq!(ix.len(), 28);
        assert_eq!(ix.dirty_rows(), 2, "two removals count as churn");
        let hits = ix.search(e1.get(NodeId(0)).unwrap(), 30, ix.cells(), Some(NodeId(0)));
        assert!(hits
            .iter()
            .all(|&(id, _)| id != NodeId(5) && id != NodeId(20)));
        assert_bit_exact(&hits, &e1.top_k(NodeId(0), 30));
    }

    #[test]
    fn update_from_falls_back_to_full_on_drift_or_mismatch() {
        let e = pseudo_random_embedding(40, 5, 12);
        let cfg = IvfConfig {
            cells: 4,
            drift_stale_bp: 100, // 1%: a single dirty row of 40 trips it
            ..Default::default()
        };
        let prev = IvfIndex::build(&e, &cfg);
        let mut e1 = e.clone();
        e1.set(NodeId(2), &[9.0, 0.0, 0.0, 0.0, 0.0]);
        let ix = IvfIndex::update_from(&prev, &e1, &[NodeId(2)], &cfg);
        assert_eq!(
            ix.build_kind(),
            BuildKind::Full,
            "staleness trigger forces a full rebuild"
        );
        assert_eq!(ix.dirty_rows(), 1, "the tripping churn is still reported");
        assert_eq!(ix.stale_rows(), 0, "a full rebuild resets staleness");

        // A config change also disqualifies the warm start.
        let recfg = IvfConfig {
            cells: 8,
            ..Default::default()
        };
        let ix = IvfIndex::update_from(&prev, &e1, &[NodeId(2)], &recfg);
        assert_eq!(ix.build_kind(), BuildKind::Full);
        assert_eq!(ix.cells(), 8);

        // An empty previous index (cold start) builds full.
        let empty = IvfIndex::build(&Embedding::new(5), &cfg);
        let ix = IvfIndex::update_from(&empty, &e1, &[], &cfg);
        assert_eq!(ix.build_kind(), BuildKind::Full);
    }

    #[test]
    fn update_from_patches_sq8_codes_in_place_under_a_covered_domain() {
        let e0 = pseudo_random_embedding(50, 8, 33);
        let cfg = IvfConfig {
            cells: 4,
            quantize: true,
            rerank_factor: 16,
            ..Default::default()
        };
        let prev = IvfIndex::build(&e0, &cfg);
        let (min0, scale0) = match &prev.storage {
            PostingStorage::Sq8(a) => a.domain(),
            PostingStorage::F32(_) => unreachable!(),
        };
        // In-domain churn: new values inside the inherited domain keep
        // it (codes patch in place, no re-quantization).
        let mut e1 = e0.clone();
        e1.set(NodeId(10), &[0.25; 8]);
        let ix = IvfIndex::update_from(&prev, &e1, &[NodeId(10)], &cfg);
        assert_eq!(ix.build_kind(), BuildKind::Incremental);
        let (min1, scale1) = match &ix.storage {
            PostingStorage::Sq8(a) => a.domain(),
            PostingStorage::F32(_) => unreachable!(),
        };
        assert_eq!(min0.to_bits(), min1.to_bits(), "domain inherited");
        assert_eq!(scale0.to_bits(), scale1.to_bits(), "domain inherited");
        // ...and still answers exactly like a fresh quantized build at
        // full probe with a covering pool.
        for probe in [0u32, 10, 49] {
            let node = NodeId(probe);
            let q = e1.get(node).unwrap();
            assert_bit_exact(
                &ix.search_in(&e1, q, 10, ix.cells(), Some(node)),
                &e1.top_k(node, 10),
            );
        }
        // Out-of-domain churn drifts the domain: everything
        // re-quantizes under a fresh min/scale that covers the new
        // value.
        let mut e2 = e0.clone();
        e2.set(NodeId(10), &[1.0e4; 8]);
        let ix = IvfIndex::update_from(&prev, &e2, &[NodeId(10)], &cfg);
        assert_eq!(ix.build_kind(), BuildKind::Incremental);
        let (_, scale2) = match &ix.storage {
            PostingStorage::Sq8(a) => a.domain(),
            PostingStorage::F32(_) => unreachable!(),
        };
        assert!(scale2 > scale0, "domain widened to cover the outlier");
    }

    #[test]
    fn update_from_is_deterministic() {
        let e0 = pseudo_random_embedding(40, 6, 2);
        let cfg = IvfConfig {
            cells: 5,
            ..Default::default()
        };
        let prev = IvfIndex::build(&e0, &cfg);
        let mut e1 = e0.clone();
        e1.set(NodeId(9), &[0.1; 6]);
        e1.set(NodeId(40), &[0.2; 6]);
        let dirty = [NodeId(9)];
        let a = IvfIndex::update_from(&prev, &e1, &dirty, &cfg);
        let b = IvfIndex::update_from(&prev, &e1, &dirty, &cfg);
        assert_eq!(a.cell_offsets, b.cell_offsets);
        assert_eq!(a.ids, b.ids);
        let q = e1.get(NodeId(4)).unwrap();
        assert_bit_exact(
            &a.search(q, 10, 2, Some(NodeId(4))),
            &b.search(q, 10, 2, Some(NodeId(4))),
        );
    }

    #[test]
    fn drift_config_validation_rejects_degenerates() {
        let bad = IvfConfig {
            drift_stale_bp: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "drift_stale_bp");
        let bad = IvfConfig {
            drift_stale_bp: 10_001,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "drift_stale_bp");
        let bad = IvfConfig {
            drift_cell_factor_x10: 9,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "drift_cell_factor_x10");
        assert_eq!(BuildKind::Full.as_str(), "full");
        assert_eq!(BuildKind::Incremental.as_str(), "incremental");
    }

    #[test]
    fn batch_scan_on_empty_index_and_k0_returns_per_query_empties() {
        let e = pseudo_random_embedding(10, 4, 3);
        let ix = IvfIndex::build(&e, &IvfConfig::default());
        let q0 = [1.0f32, 0.0, 0.0, 0.0];
        let queries = [
            BatchQuery {
                query: &q0,
                exclude: None,
            },
            BatchQuery {
                query: &q0,
                exclude: Some(NodeId(1)),
            },
        ];
        assert_eq!(ix.search_batch(&queries, 0, 2), vec![vec![], vec![]]);
        let empty_ix = IvfIndex::build(&Embedding::new(4), &IvfConfig::default());
        assert_eq!(empty_ix.search_batch(&queries, 5, 2), vec![vec![], vec![]]);
        assert_eq!(
            empty_ix.search_in_batch(&e, &queries, 5, 2),
            vec![vec![], vec![]]
        );
    }

    #[test]
    fn scratch_reuse_changes_nothing() {
        let e = pseudo_random_embedding(50, 6, 9);
        for quantize in [false, true] {
            let cfg = IvfConfig {
                cells: 5,
                quantize,
                ..Default::default()
            };
            let ix = IvfIndex::build(&e, &cfg);
            let mut scratch = SearchScratch::new();
            for probe in 0..50u32 {
                let node = NodeId(probe);
                let q = e.get(node).unwrap();
                let fresh = ix.search_in(&e, q, 7, 2, Some(node));
                let reused = ix.search_in_with(&e, q, 7, 2, Some(node), &mut scratch);
                assert_bit_exact(&fresh, &reused);
            }
        }
    }
}
