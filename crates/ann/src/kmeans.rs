//! Deterministic spherical k-means: the coarse quantiser behind
//! [`IvfIndex`](crate::IvfIndex).
//!
//! Rows are assigned to the centroid of highest cosine similarity (the
//! same guarded kernel the search path uses), centroids are the
//! arithmetic mean of their members, and everything — including the
//! initial centroid draw — is seeded through SplitMix64, so a given
//! `(embedding, config)` pair always produces the same clustering.

// The RNG and the similarity kernel are *shared* with `glodyne_embed`
// — not re-implemented — so the determinism conventions and the
// bit-exactness contract have a single home. Assignment scores rows
// with the fast kernel: clustering only decides row *grouping*, and
// full-probe search visits every group regardless, so the
// bit-exactness pins never depend on which cell a row landed in.
use glodyne_embed::embedding::l2_norm;
use glodyne_embed::kernel::norm_cosine_fast;
use glodyne_embed::walks::splitmix64_next;

/// The result of one clustering run over `n` rows.
pub(crate) struct Clustering {
    /// `c × dim` centroid matrix, row-major.
    pub centroids: Vec<f32>,
    /// Per-centroid L2 norms, parallel to `centroids` rows.
    pub centroid_norms: Vec<f32>,
    /// Cell of each input row (`n` entries, each `< c`).
    pub assignment: Vec<u32>,
}

/// Cluster `n = norms.len()` rows of width `dim` (flat in `data`) into
/// `c` cells with `iters` Lloyd iterations. `1 <= c <= n` is the
/// caller's contract ([`IvfIndex::build`](crate::IvfIndex::build)
/// clamps).
pub(crate) fn cluster(
    data: &[f32],
    norms: &[f32],
    dim: usize,
    c: usize,
    iters: usize,
    seed: u64,
) -> Clustering {
    let n = norms.len();
    debug_assert!(c >= 1 && c <= n);
    debug_assert_eq!(data.len(), n * dim);

    let mut centroids = init_centroids(data, norms, dim, c, seed);
    let mut centroid_norms: Vec<f32> = (0..c)
        .map(|j| l2_norm(&centroids[j * dim..(j + 1) * dim]))
        .collect();
    let mut assignment = vec![0u32; n];

    for _ in 0..iters {
        assign(
            data,
            norms,
            dim,
            &centroids,
            &centroid_norms,
            &mut assignment,
        );
        // Recompute each centroid as the mean of its finite members;
        // a cell that lost all members (or holds only non-finite rows)
        // keeps its previous centroid rather than collapsing to zero.
        let mut sums = vec![0.0f32; c * dim];
        let mut counts = vec![0u32; c];
        for (i, &cell) in assignment.iter().enumerate() {
            if !norms[i].is_finite() {
                continue; // NaN/inf rows must not poison a centroid
            }
            let row = &data[i * dim..(i + 1) * dim];
            let acc = &mut sums[cell as usize * dim..(cell as usize + 1) * dim];
            for (a, &x) in acc.iter_mut().zip(row) {
                *a += x;
            }
            counts[cell as usize] += 1;
        }
        for j in 0..c {
            if counts[j] == 0 {
                continue;
            }
            let inv = 1.0 / counts[j] as f32;
            let dst = &mut centroids[j * dim..(j + 1) * dim];
            let src = &sums[j * dim..(j + 1) * dim];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s * inv;
            }
            centroid_norms[j] = l2_norm(dst);
        }
    }
    // Final assignment against the final centroids.
    assign(
        data,
        norms,
        dim,
        &centroids,
        &centroid_norms,
        &mut assignment,
    );
    Clustering {
        centroids,
        centroid_norms,
        assignment,
    }
}

/// Draw `c` distinct seed rows, preferring rows with a finite norm when
/// enough exist (a NaN seed centroid would attract nothing and waste a
/// cell).
fn init_centroids(data: &[f32], norms: &[f32], dim: usize, c: usize, seed: u64) -> Vec<f32> {
    let n = norms.len();
    let finite = norms.iter().filter(|n| n.is_finite()).count();
    let finite_only = finite >= c;
    let mut state = seed;
    let mut chosen = vec![false; n];
    let mut centroids = Vec::with_capacity(c * dim);
    let mut picked = 0;
    while picked < c {
        let i = (splitmix64_next(&mut state) % n as u64) as usize;
        if chosen[i] || (finite_only && !norms[i].is_finite()) {
            continue;
        }
        chosen[i] = true;
        centroids.extend_from_slice(&data[i * dim..(i + 1) * dim]);
        picked += 1;
    }
    centroids
}

/// The centroid of highest guarded cosine similarity for one row, ties
/// (and all-NaN rows) toward the smallest centroid index — fully
/// deterministic. Shared by the Lloyd assignment passes and the
/// incremental dirty-row reassignment
/// ([`IvfIndex::update_from`](crate::IvfIndex::update_from)).
pub(crate) fn nearest_centroid(
    row: &[f32],
    row_norm: f32,
    dim: usize,
    centroids: &[f32],
    centroid_norms: &[f32],
) -> u32 {
    let mut best = 0u32;
    let mut best_sim = f32::NEG_INFINITY;
    for (j, &cn) in centroid_norms.iter().enumerate() {
        let sim = norm_cosine_fast(row, row_norm, &centroids[j * dim..(j + 1) * dim], cn);
        // A NaN similarity is never `>`, so NaN rows stay at cell 0.
        if sim > best_sim {
            best_sim = sim;
            best = j as u32;
        }
    }
    best
}

/// Rows of independent work below which [`assign`] stays serial: the
/// scoped-thread spawn cost only pays for itself on epoch-sized inputs.
const PARALLEL_ASSIGN_MIN_ROWS: usize = 4096;

/// One assignment pass: each row goes to its [`nearest_centroid`].
///
/// Rows are independent, so the pass is chunked across threads with the
/// same contiguous-range idiom as Hogwild training (`chunks_mut` over
/// disjoint slices of the assignment table — no shared writes, no
/// reduction). Every slot's value depends only on its own row and the
/// frozen centroids, so the result is **identical** for any thread
/// count, and the centroid-mean reduction that follows in [`cluster`]
/// runs serially over rows in index order — the fixed reduction order
/// that keeps the full build deterministic and seed-reproducible.
fn assign(
    data: &[f32],
    norms: &[f32],
    dim: usize,
    centroids: &[f32],
    centroid_norms: &[f32],
    assignment: &mut [u32],
) {
    let n = assignment.len();
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(8);
    if threads <= 1 || n < PARALLEL_ASSIGN_MIN_ROWS {
        assign_range(data, norms, dim, centroids, centroid_norms, assignment, 0);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slots) in assignment.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                assign_range(
                    data,
                    norms,
                    dim,
                    centroids,
                    centroid_norms,
                    slots,
                    t * chunk,
                );
            });
        }
    });
}

/// Assign the rows `start..start + slots.len()` into `slots` — the
/// serial kernel both the single-threaded and the chunked pass share.
fn assign_range(
    data: &[f32],
    norms: &[f32],
    dim: usize,
    centroids: &[f32],
    centroid_norms: &[f32],
    slots: &mut [u32],
    start: usize,
) {
    for (off, slot) in slots.iter_mut().enumerate() {
        let i = start + off;
        *slot = nearest_centroid(
            &data[i * dim..(i + 1) * dim],
            norms[i],
            dim,
            centroids,
            centroid_norms,
        );
    }
}
