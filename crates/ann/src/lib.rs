//! `glodyne-ann`: approximate nearest-neighbour search over an epoch's
//! embeddings.
//!
//! The serving layer answers every `nearest` with an exhaustive
//! O(n·d) scan of the frozen epoch. That is the right default for
//! correctness, but the epoch is *immutable* between training steps —
//! so query work can be amortised: build an index once per committed
//! step, publish it alongside the embedding, and answer each query
//! from the index instead of the full matrix.
//!
//! [`IvfIndex`] is that index — an inverted file in the spirit of
//! Faiss-style coarse quantisation:
//!
//! - **Build** (once per epoch): spherical k-means clusters the
//!   embedding rows into `c` coarse cells. Both the clustering and its
//!   initialisation are seeded and deterministic (SplitMix64, the same
//!   RNG conventions as `glodyne_embed`'s walk engine), so the same
//!   epoch always yields the same index.
//! - **Storage**: per-cell posting lists laid out contiguously — one
//!   row-major vector arena plus a parallel node-id table and cached
//!   L2 norms, grouped by cell. The same flat, offset-indexed layout
//!   philosophy as `glodyne_embed::WalkCorpus`. The arena holds either
//!   full-precision `f32` rows or, with `quantize`, [`sq8`] codes (one
//!   u8 per component) — 4× less scan traffic and arena memory.
//! - **Search**: rank cells by centroid cosine similarity (the
//!   SIMD-shaped fast kernel), scan the posting lists of the `nprobe`
//!   best cells with the cached-norm dot product, and merge candidates
//!   through the bounded
//!   [`TopKSelector`](glodyne_embed::TopKSelector) heap under the
//!   workspace-wide [`rank_similarity`](glodyne_embed::rank_similarity)
//!   order. Quantized scans are candidate generation only: `search_in`
//!   re-ranks the best `rerank_factor · k` codes against the exact f32
//!   embedding, so served similarities always come from the exact
//!   kernel. Query cost drops from O(n·d) to O((c + n·nprobe/c)·d) in
//!   the balanced case.
//!
//! At `nprobe = c` every cell is probed and the candidate set is the
//! whole epoch: f32 storage scans with the frozen **exact** kernel
//! (`glodyne_embed::kernel`) so the result is *identical* to the exact
//! scan, not merely close, and SQ8 storage with a pool covering every
//! candidate re-ranks the whole epoch exactly — same guarantee.
//! Partial probes are approximate by contract and scan with the fast
//! kernel.

pub mod ivf;
pub mod sq8;

mod kmeans;

pub use ivf::{BatchQuery, BuildKind, IvfConfig, IvfIndex, SearchScratch, StorageMode};
