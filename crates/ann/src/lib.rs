//! `glodyne-ann`: approximate nearest-neighbour search over an epoch's
//! embeddings.
//!
//! The serving layer answers every `nearest` with an exhaustive
//! O(n·d) scan of the frozen epoch. That is the right default for
//! correctness, but the epoch is *immutable* between training steps —
//! so query work can be amortised: build an index once per committed
//! step, publish it alongside the embedding, and answer each query
//! from the index instead of the full matrix.
//!
//! [`IvfIndex`] is that index — an inverted file in the spirit of
//! Faiss-style coarse quantisation:
//!
//! - **Build** (once per epoch): spherical k-means clusters the
//!   embedding rows into `c` coarse cells. Both the clustering and its
//!   initialisation are seeded and deterministic (SplitMix64, the same
//!   RNG conventions as `glodyne_embed`'s walk engine), so the same
//!   epoch always yields the same index.
//! - **Storage**: per-cell posting lists laid out contiguously — one
//!   row-major `f32` vector arena plus a parallel node-id table and
//!   cached L2 norms, grouped by cell. The same flat, offset-indexed
//!   layout philosophy as `glodyne_embed::WalkCorpus`.
//! - **Search**: rank cells by centroid cosine similarity, scan the
//!   posting lists of the `nprobe` best cells with the cached-norm dot
//!   product, and merge candidates through the bounded
//!   [`TopKSelector`](glodyne_embed::TopKSelector) heap under the
//!   workspace-wide [`rank_similarity`](glodyne_embed::rank_similarity)
//!   order. Query cost drops from O(n·d) to O((c + n·nprobe/c)·d) in
//!   the balanced case.
//!
//! At `nprobe = c` every cell is probed, the candidate set is the whole
//! epoch, and — because the similarity kernel is shared bit-for-bit
//! with `Embedding::top_k` — the result is *identical* to the exact
//! scan, not merely close.

pub mod ivf;

mod kmeans;

pub use ivf::{IvfConfig, IvfIndex};
