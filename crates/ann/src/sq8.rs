//! SQ8 scalar quantization: u8-per-component posting storage.
//!
//! One affine code domain per arena (per-index min/scale): component
//! `x` is stored as `code = round((x − min) / scale)`, clamped into
//! `[0, 255]` by Rust's saturating float→int cast — NaN components map
//! to code 0 and +∞ to 255, so degenerate rows quantize without
//! panicking (their true f32 norms, cached separately, still carry the
//! NaN/inf into the similarity where the ranking contract handles it).
//!
//! The similarity scan never dequantizes per component. With
//! `qsum = Σ_j q_j` precomputed once per query,
//!
//! ```text
//! Σ_j q_j · (min + scale · code_j)  =  min · qsum + scale · Σ_j q_j · code_j
//! ```
//!
//! so one fused f32×u8 dot over the codes (8-lane chunked, the same
//! SIMD shape as `glodyne_embed::kernel::dot_fast`) plus two scalar
//! multiplies reconstructs the dot product in the dequantized domain —
//! scanning ¼ of the memory an f32 arena would. The absolute error per
//! component is bounded by `scale / 2` (round-to-nearest), which is why
//! SQ8 scans are **candidate generation only**: callers re-rank the
//! top `rerank_factor · k` codes against the exact f32 embedding (see
//! `IvfIndex::search_in`) so the served scores and the recall contract
//! come from the exact kernel, not from the quantized domain.

use glodyne_embed::kernel::LANES;

/// A flat arena of SQ8-quantized rows sharing one `min`/`scale` code
/// domain.
#[derive(Debug, Clone)]
pub struct Sq8Arena {
    /// One u8 code per component, row-major — same layout as the f32
    /// arena it replaces, at a quarter of the bytes.
    codes: Vec<u8>,
    /// Value of code 0.
    min: f32,
    /// Dequantization step between adjacent codes.
    scale: f32,
}

impl Sq8Arena {
    /// Quantize a flat row-major f32 arena. The code domain spans the
    /// finite components' `[min, max]`; an arena with no finite
    /// component (or all components equal) gets a degenerate but valid
    /// domain (`scale = 1`), never a division by zero.
    pub fn quantize(data: &[f32]) -> Sq8Arena {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &x in data {
            if x.is_finite() {
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            lo = 0.0;
            hi = 0.0;
        }
        let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
        let inv = 1.0 / scale;
        let codes = data
            .iter()
            // Saturating cast: NaN → 0, out-of-range → clamped.
            .map(|&x| ((x - lo) * inv).round() as u8)
            .collect();
        Sq8Arena {
            codes,
            min: lo,
            scale,
        }
    }

    /// Rebuild an arena from raw codes under an existing domain — the
    /// incremental index-maintenance path patches survivor rows by code
    /// copy and quantizes only changed rows, all under the *same*
    /// affine domain, so the result is bit-identical to a fresh
    /// [`Sq8Arena::quantize`] over the same values when the domain
    /// still covers them.
    pub(crate) fn from_codes(codes: Vec<u8>, min: f32, scale: f32) -> Sq8Arena {
        Sq8Arena { codes, min, scale }
    }

    /// The arena's affine code domain as `(min, scale)`: value of code
    /// 0 and the step between adjacent codes.
    pub fn domain(&self) -> (f32, f32) {
        (self.min, self.scale)
    }

    /// Whether a finite component value lands inside this arena's code
    /// domain (within half a code step of the representable span, the
    /// round-to-nearest tolerance). Values outside would saturate —
    /// the min/max **domain drift** that forces a full re-quantization
    /// of every cell during incremental maintenance. Non-finite values
    /// saturate by design and never count as drift.
    pub fn covers(&self, x: f32) -> bool {
        if !x.is_finite() {
            return true;
        }
        let half = self.scale * 0.5;
        x >= self.min - half && x <= self.min + self.scale * 255.0 + half
    }

    /// Quantize one value into this arena's domain (the same saturating
    /// cast as [`Sq8Arena::quantize`], so patched rows and fresh builds
    /// agree bit for bit).
    #[inline]
    pub(crate) fn encode(&self, x: f32) -> u8 {
        ((x - self.min) * (1.0 / self.scale)).round() as u8
    }

    /// The codes of row `i` for rows of width `dim`.
    #[inline]
    pub fn row(&self, i: usize, dim: usize) -> &[u8] {
        &self.codes[i * dim..(i + 1) * dim]
    }

    /// Dequantize one code back into the value domain.
    #[inline]
    pub fn dequantize(&self, code: u8) -> f32 {
        self.min + self.scale * code as f32
    }

    /// Dot product of an f32 query against quantized row `i`, in the
    /// dequantized domain: `min · qsum + scale · (q ⋅ codes)` with
    /// `qsum = Σ_j query_j` precomputed by the caller (once per query,
    /// not per row).
    #[inline]
    pub fn dot(&self, i: usize, dim: usize, query: &[f32], qsum: f32) -> f32 {
        self.min * qsum + self.scale * dot_f32_u8(query, self.row(i, dim))
    }

    /// Worst-case absolute quantization error of any finite in-range
    /// component: half a code step (round-to-nearest).
    pub fn max_component_error(&self) -> f32 {
        self.scale * 0.5
    }

    /// Heap bytes of the code arena plus the code-domain scalars.
    pub fn bytes(&self) -> usize {
        self.codes.len() + 2 * std::mem::size_of::<f32>()
    }

    /// Number of stored codes (rows × dim).
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the arena holds no codes.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// f32 × u8 dot product in the fast kernel's chunked shape: [`LANES`]
/// independent accumulators plus a scalar remainder, so LLVM widens the
/// u8 loads and vectorizes the multiply-adds. Approximate surfaces
/// only, like every fast-kernel reduction.
#[inline]
pub fn dot_f32_u8(query: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(query.len(), codes.len());
    let main = query.len() - query.len() % LANES;
    let mut acc = [0.0f32; LANES];
    for (cq, cc) in query[..main]
        .chunks_exact(LANES)
        .zip(codes[..main].chunks_exact(LANES))
    {
        for lane in 0..LANES {
            acc[lane] += cq[lane] * cc[lane] as f32;
        }
    }
    let mut tail = 0.0f32;
    for (&q, &c) in query[main..].iter().zip(&codes[main..]) {
        tail += q * c as f32;
    }
    let even = (acc[0] + acc[4]) + (acc[2] + acc[6]);
    let odd = (acc[1] + acc[5]) + (acc[3] + acc[7]);
    (even + odd) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, salt: u64) -> Vec<f32> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ salt;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(0xd129_42e2_96fe_94e3).wrapping_add(1);
                ((state >> 40) as f32) / 1e6 - 8.0
            })
            .collect()
    }

    #[test]
    fn round_trip_error_is_within_half_a_step() {
        for salt in 0..16u64 {
            let data = pseudo_random(257, salt);
            let arena = Sq8Arena::quantize(&data);
            let bound = arena.max_component_error() * 1.001 + 1e-6;
            for (i, &x) in data.iter().enumerate() {
                let back = arena.dequantize(arena.codes[i]);
                assert!(
                    (back - x).abs() <= bound,
                    "salt={salt} i={i} x={x} back={back} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn degenerate_components_saturate_instead_of_panicking() {
        let data = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.5, -0.5];
        let arena = Sq8Arena::quantize(&data);
        assert_eq!(arena.codes[0], 0, "NaN saturates to 0");
        assert_eq!(arena.codes[1], 255, "+inf saturates to 255");
        assert_eq!(arena.codes[2], 0, "-inf saturates to 0");
        // Finite components still round-trip within the bound.
        assert!(
            (arena.dequantize(arena.codes[3]) - 0.5).abs() <= arena.max_component_error() + 1e-6
        );
    }

    #[test]
    fn constant_and_empty_arenas_are_valid() {
        let arena = Sq8Arena::quantize(&[2.5; 9]);
        assert_eq!(arena.scale, 1.0, "flat data gets the degenerate domain");
        assert!(arena.codes.iter().all(|&c| c == 0));
        assert_eq!(arena.dequantize(0), 2.5);

        let empty = Sq8Arena::quantize(&[]);
        assert!(empty.is_empty());
        assert_eq!(Sq8Arena::quantize(&[f32::NAN]).codes, vec![0]);
    }

    #[test]
    fn fused_dot_matches_per_component_dequantized_dot() {
        for salt in 0..8u64 {
            for dim in [1usize, 7, 8, 9, 64, 128, 130] {
                let data = pseudo_random(dim * 3, salt);
                let arena = Sq8Arena::quantize(&data);
                let query = pseudo_random(dim, salt + 100);
                let qsum: f32 = query.iter().sum();
                for row in 0..3 {
                    let fused = arena.dot(row, dim, &query, qsum);
                    let naive: f32 = arena
                        .row(row, dim)
                        .iter()
                        .zip(&query)
                        .map(|(&c, &q)| q * arena.dequantize(c))
                        .sum();
                    let scale = naive.abs().max(1.0);
                    assert!(
                        (fused - naive).abs() / scale <= 1e-4,
                        "salt={salt} dim={dim} row={row} fused={fused} naive={naive}"
                    );
                }
            }
        }
    }

    #[test]
    fn bytes_are_one_per_component() {
        let arena = Sq8Arena::quantize(&pseudo_random(1000, 1));
        assert_eq!(arena.bytes(), 1000 + 8);
        assert_eq!(arena.len(), 1000);
    }
}
