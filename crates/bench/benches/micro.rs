//! Criterion micro-benchmarks for the building blocks whose complexity
//! §4.3 analyses: partitioning (Step 1), selection scoring (Step 2),
//! random walks (Step 3), SGNS training (Step 4), and the GR metric —
//! plus the flat-corpus vs legacy walk→train pipeline comparison
//! (`corpus_pipeline/*`), which reports pairs/sec for both paths on a
//! ≥10k-node synthetic graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glodyne::reservoir::Reservoir;
use glodyne::select::{select_nodes, Strategy};
use glodyne_bench::legacy::LegacySgnsModel;
use glodyne_embed::pairs::pair_count;
use glodyne_embed::walks::{generate_corpus_all, generate_walks_all, WalkConfig};
use glodyne_embed::{SgnsConfig, SgnsModel};
use glodyne_graph::id::{Edge, NodeId};
use glodyne_graph::{Snapshot, SnapshotDiff};
use glodyne_partition::{partition, PartitionConfig};
use glodyne_tasks::gr::mean_precision_at_k;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::Cell;
use std::time::Instant;

fn dataset(scale: f64) -> (Snapshot, Snapshot) {
    let d = glodyne_datasets::fbw(scale, 7);
    let n = d.network.len();
    (
        d.network.snapshot(n - 2).clone(),
        d.network.snapshot(n - 1).clone(),
    )
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for &scale in &[0.2, 0.5] {
        let (_, g) = dataset(scale);
        let k = (g.num_nodes() / 10).max(2);
        group.bench_with_input(
            BenchmarkId::new("multilevel_kway", g.num_nodes()),
            &g,
            |b, g| {
                b.iter(|| partition(g, &PartitionConfig::with_k(k)));
            },
        );
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let (prev, curr) = dataset(0.5);
    let mut reservoir = Reservoir::new();
    reservoir.absorb(&SnapshotDiff::compute(&prev, &curr));
    let k = (curr.num_nodes() / 10).max(2);
    let mut group = c.benchmark_group("selection");
    for strat in [Strategy::S1, Strategy::S3, Strategy::S4] {
        group.bench_function(strat.label(), |b| {
            let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(9);
            b.iter(|| select_nodes(strat, &curr, &prev, &reservoir, k, 0.1, &mut rng));
        });
    }
    group.finish();
}

fn bench_walks(c: &mut Criterion) {
    let (_, g) = dataset(0.5);
    let cfg = WalkConfig {
        walks_per_node: 4,
        walk_length: 40,
        seed: 3,
    };
    c.bench_function("walks/all_nodes_legacy", |b| {
        b.iter(|| generate_walks_all(&g, &cfg));
    });
    c.bench_function("walks/all_nodes_corpus", |b| {
        b.iter(|| generate_corpus_all(&g, &cfg));
    });
}

/// A connected ~`n`-node graph: a ring (guarantees no isolated nodes)
/// plus `2n` random chords for realistic degree spread.
fn synthetic_graph(n: u32, seed: u64) -> Snapshot {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = (0..n)
        .map(|i| Edge::new(NodeId(i), NodeId((i + 1) % n)))
        .collect();
    for _ in 0..2 * n {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push(Edge::new(NodeId(a), NodeId(b)));
        }
    }
    Snapshot::from_edges(&edges, &[])
}

/// Old vs new hot path on a ≥10k-node graph: generate walks *and* train
/// one SGNS epoch, reported as pairs/sec. The legacy path materialises
/// `Vec<Vec<NodeId>>` walks and runs the frozen pre-refactor engine
/// (per-token HashMap re-interning, per-pair atomic LR schedule,
/// `exp()` sigmoid, ChaCha negatives); the flat path writes walks into
/// one arena and trains straight from it with the new engine.
fn bench_corpus_pipeline(c: &mut Criterion) {
    let g = synthetic_graph(12_000, 99);
    let walk_cfg = WalkConfig {
        walks_per_node: 2,
        walk_length: 40,
        seed: 11,
    };
    let sgns_cfg = SgnsConfig {
        dim: 32,
        window: 5,
        negatives: 5,
        epochs: 1,
        parallel: true,
        ..Default::default()
    };
    let pairs_per_run =
        g.num_nodes() * walk_cfg.walks_per_node * pair_count(walk_cfg.walk_length, sgns_cfg.window);

    // Track the best wall clock each path achieves *inside* the
    // criterion group's own sampling, so the explicit speedup line below
    // (what the acceptance criterion reads) is a multi-sample estimate
    // without re-running these multi-second pipelines even once more.
    let (t_legacy, t_flat) = (Cell::new(f64::INFINITY), Cell::new(f64::INFINITY));
    let timed = |best: &Cell<f64>, f: &dyn Fn() -> usize| {
        let t = Instant::now();
        let pairs = std::hint::black_box(f());
        best.set(best.get().min(t.elapsed().as_secs_f64()));
        pairs
    };
    let legacy = || {
        timed(&t_legacy, &|| {
            let walks = generate_walks_all(&g, &walk_cfg);
            let mut model = LegacySgnsModel::new(sgns_cfg.clone());
            model.train(&walks)
        })
    };
    let flat = || {
        timed(&t_flat, &|| {
            let corpus = generate_corpus_all(&g, &walk_cfg);
            let mut model = SgnsModel::new(sgns_cfg.clone());
            model.train_corpus(&corpus)
        })
    };

    let mut group = c.benchmark_group("corpus_pipeline");
    group.throughput(Throughput::Elements(pairs_per_run as u64));
    group.bench_function("legacy_vec_of_vecs", |b| b.iter(legacy));
    group.bench_function("flat_corpus", |b| b.iter(flat));
    group.finish();

    let (t_legacy, t_flat) = (t_legacy.get(), t_flat.get());
    println!(
        "corpus_pipeline summary: |V|={} pairs/run={}  legacy {:.0} pairs/s  flat {:.0} pairs/s  speedup {:.2}x",
        g.num_nodes(),
        pairs_per_run,
        pairs_per_run as f64 / t_legacy,
        pairs_per_run as f64 / t_flat,
        t_legacy / t_flat
    );
}

fn bench_sgns(c: &mut Criterion) {
    let (_, g) = dataset(0.3);
    let walks = generate_walks_all(
        &g,
        &WalkConfig {
            walks_per_node: 2,
            walk_length: 30,
            seed: 4,
        },
    );
    c.bench_function("sgns/train_epoch", |b| {
        b.iter(|| {
            let mut model = SgnsModel::new(SgnsConfig {
                dim: 64,
                window: 5,
                negatives: 5,
                epochs: 1,
                parallel: true,
                ..Default::default()
            });
            model.train(&walks)
        });
    });
    let corpus = glodyne_embed::WalkCorpus::from_nodeid_walks(&walks);
    c.bench_function("sgns/train_epoch_corpus", |b| {
        b.iter(|| {
            let mut model = SgnsModel::new(SgnsConfig {
                dim: 64,
                window: 5,
                negatives: 5,
                epochs: 1,
                parallel: true,
                ..Default::default()
            });
            model.train_corpus(&corpus)
        });
    });
}

fn bench_gr_metric(c: &mut Criterion) {
    let (_, g) = dataset(0.3);
    let mut model = SgnsModel::new(SgnsConfig {
        dim: 64,
        epochs: 1,
        ..Default::default()
    });
    model.train(&generate_walks_all(
        &g,
        &WalkConfig {
            walks_per_node: 2,
            walk_length: 20,
            seed: 5,
        },
    ));
    let emb = model.embedding();
    c.bench_function("gr/mean_p_at_k", |b| {
        b.iter(|| mean_precision_at_k(&emb, &g, &[1, 5, 10, 20, 40]));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition, bench_selection, bench_walks, bench_sgns, bench_gr_metric, bench_corpus_pipeline
}
criterion_main!(benches);
