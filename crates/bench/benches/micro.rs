//! Criterion micro-benchmarks for the building blocks whose complexity
//! §4.3 analyses: partitioning (Step 1), selection scoring (Step 2),
//! random walks (Step 3), SGNS training (Step 4), and the GR metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glodyne::reservoir::Reservoir;
use glodyne::select::{select_nodes, Strategy};
use glodyne_embed::walks::{generate_walks_all, WalkConfig};
use glodyne_embed::{SgnsConfig, SgnsModel};
use glodyne_graph::{Snapshot, SnapshotDiff};
use glodyne_partition::{partition, PartitionConfig};
use glodyne_tasks::gr::mean_precision_at_k;

fn dataset(scale: f64) -> (Snapshot, Snapshot) {
    let d = glodyne_datasets::fbw(scale, 7);
    let n = d.network.len();
    (
        d.network.snapshot(n - 2).clone(),
        d.network.snapshot(n - 1).clone(),
    )
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for &scale in &[0.2, 0.5] {
        let (_, g) = dataset(scale);
        let k = (g.num_nodes() / 10).max(2);
        group.bench_with_input(
            BenchmarkId::new("multilevel_kway", g.num_nodes()),
            &g,
            |b, g| {
                b.iter(|| partition(g, &PartitionConfig::with_k(k)));
            },
        );
    }
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let (prev, curr) = dataset(0.5);
    let mut reservoir = Reservoir::new();
    reservoir.absorb(&SnapshotDiff::compute(&prev, &curr));
    let k = (curr.num_nodes() / 10).max(2);
    let mut group = c.benchmark_group("selection");
    for strat in [Strategy::S1, Strategy::S3, Strategy::S4] {
        group.bench_function(strat.label(), |b| {
            let mut rng: rand_chacha::ChaCha8Rng = rand::SeedableRng::seed_from_u64(9);
            b.iter(|| select_nodes(strat, &curr, &prev, &reservoir, k, 0.1, &mut rng));
        });
    }
    group.finish();
}

fn bench_walks(c: &mut Criterion) {
    let (_, g) = dataset(0.5);
    let cfg = WalkConfig {
        walks_per_node: 4,
        walk_length: 40,
        seed: 3,
    };
    c.bench_function("walks/all_nodes", |b| {
        b.iter(|| generate_walks_all(&g, &cfg));
    });
}

fn bench_sgns(c: &mut Criterion) {
    let (_, g) = dataset(0.3);
    let walks = generate_walks_all(
        &g,
        &WalkConfig {
            walks_per_node: 2,
            walk_length: 30,
            seed: 4,
        },
    );
    c.bench_function("sgns/train_epoch", |b| {
        b.iter(|| {
            let mut model = SgnsModel::new(SgnsConfig {
                dim: 64,
                window: 5,
                negatives: 5,
                epochs: 1,
                parallel: true,
                ..Default::default()
            });
            model.train(&walks)
        });
    });
}

fn bench_gr_metric(c: &mut Criterion) {
    let (_, g) = dataset(0.3);
    let mut model = SgnsModel::new(SgnsConfig {
        dim: 64,
        epochs: 1,
        ..Default::default()
    });
    model.train(&generate_walks_all(
        &g,
        &WalkConfig {
            walks_per_node: 2,
            walk_length: 20,
            seed: 5,
        },
    ));
    let emb = model.embedding();
    c.bench_function("gr/mean_p_at_k", |b| {
        b.iter(|| mean_precision_at_k(&emb, &g, &[1, 5, 10, 20, 40]));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_partition, bench_selection, bench_walks, bench_sgns, bench_gr_metric
}
criterion_main!(benches);
