//! Shared evaluation drivers: tie the runner's step results to the task
//! metrics the paper reports per table.

use crate::runner::StepResult;
use glodyne_graph::Snapshot;
use glodyne_tasks::{gr, lp};

/// Table-1 protocol: MeanP@k at every time step, averaged over steps.
/// Returns one value per `k`.
pub fn gr_mean_over_time(results: &[StepResult], snapshots: &[Snapshot], ks: &[usize]) -> Vec<f64> {
    let mut acc = vec![0.0; ks.len()];
    for (r, s) in results.iter().zip(snapshots) {
        let scores = gr::mean_precision_at_k(&r.embedding, s, ks);
        for (a, v) in acc.iter_mut().zip(scores) {
            *a += v;
        }
    }
    let n = results.len().max(1) as f64;
    acc.iter_mut().for_each(|a| *a /= n);
    acc
}

/// Per-step MeanP@k series (Figures 3/4).
pub fn gr_series(results: &[StepResult], snapshots: &[Snapshot], k: usize) -> Vec<f64> {
    results
        .iter()
        .zip(snapshots)
        .map(|(r, s)| gr::mean_precision_at_k(&r.embedding, s, &[k])[0])
        .collect()
}

/// Table-2 protocol: embeddings at `t` predict edges of `t+1`; AUC
/// averaged over all transitions.
pub fn lp_mean_over_time(results: &[StepResult], snapshots: &[Snapshot], seed: u64) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for t in 0..snapshots.len().saturating_sub(1) {
        let test = lp::build_test_set(&snapshots[t], &snapshots[t + 1], seed ^ (t as u64));
        if test.is_empty() {
            continue;
        }
        acc += lp::link_prediction_auc(&results[t].embedding, &test);
        n += 1;
    }
    if n == 0 {
        0.5
    } else {
        acc / n as f64
    }
}

/// Table-4 protocol: total embedding seconds over all steps.
pub fn total_seconds(results: &[StepResult]) -> f64 {
    results.iter().map(|r| r.seconds).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::Embedding;
    use glodyne_graph::id::{Edge, NodeId};

    fn step(e: Embedding, s: f64) -> StepResult {
        StepResult {
            embedding: e,
            seconds: s,
            report: Default::default(),
        }
    }

    #[test]
    fn totals_and_series_shapes() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let mut e = Embedding::new(2);
        e.set(NodeId(0), &[1.0, 0.0]);
        e.set(NodeId(1), &[1.0, 0.1]);
        let results = vec![step(e.clone(), 0.5), step(e, 0.25)];
        let snaps = vec![g.clone(), g];
        assert_eq!(total_seconds(&results), 0.75);
        assert_eq!(gr_series(&results, &snaps, 1).len(), 2);
        let m = gr_mean_over_time(&results, &snaps, &[1, 5]);
        assert_eq!(m.len(), 2);
        assert!(m[0] > 0.99, "adjacent pair is each other's top-1");
    }

    #[test]
    fn lp_over_single_snapshot_is_chance() {
        let g = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let results = vec![step(Embedding::new(2), 0.0)];
        assert_eq!(lp_mean_over_time(&results, &[g], 0), 0.5);
    }
}
