//! A tiny `--key value` argument parser for the experiment binaries.

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an explicit token stream.
    pub fn parse(tokens: impl Iterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut key: Option<String> = None;
        for tok in tokens {
            if let Some(stripped) = tok.strip_prefix("--") {
                if let Some(k) = key.take() {
                    values.insert(k, "true".to_string()); // bare flag
                }
                key = Some(stripped.to_string());
            } else if let Some(k) = key.take() {
                values.insert(k, tok);
            }
        }
        if let Some(k) = key {
            values.insert(k, "true".to_string());
        }
        Args { values }
    }

    /// Fetch a value parsed as `T`, or the default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.values.get(key).map(|v| v == "true").unwrap_or(false)
    }
}

/// Common experiment options shared by every binary.
#[derive(Debug, Clone, Copy)]
pub struct Common {
    /// Dataset scale factor (1.0 ≈ hundreds of nodes).
    pub scale: f64,
    /// Independent runs per cell (paper: 20).
    pub runs: usize,
    /// Embedding dimensionality (paper: 128).
    pub dim: usize,
    /// Base seed.
    pub seed: u64,
}

impl Common {
    /// Extract the common options with laptop-scale defaults.
    pub fn from(args: &Args) -> Self {
        Common {
            scale: args.get("scale", 0.25),
            runs: args.get("runs", 3),
            dim: args.get("dim", 64),
            seed: args.get("seed", 42),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_values() {
        let a = parse("--scale 0.5 --runs 7");
        assert_eq!(a.get("scale", 0.0), 0.5);
        assert_eq!(a.get("runs", 0usize), 7);
        assert_eq!(a.get("missing", 3usize), 3);
    }

    #[test]
    fn parses_bare_flags() {
        let a = parse("--fast --runs 2");
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
    }

    #[test]
    fn trailing_flag() {
        let a = parse("--runs 2 --verbose");
        assert!(a.flag("verbose"));
    }

    #[test]
    fn common_defaults() {
        let c = Common::from(&parse(""));
        assert_eq!(c.runs, 3);
        assert_eq!(c.dim, 64);
    }
}
