//! §5.2.4 scale test: per-phase wall-clock breakdown of GloDyNE on the
//! large hyperlink-network analogue.
//!
//! The paper reports, on a 2.1M-node hyperlink graph: offline Step 3+4 ≈
//! 110698s+12258s; online per-snapshot ≈ 2769s (Steps 1–2), 12388s
//! (Step 3), 1255s (Step 4) — i.e. walks dominate, selection is cheap,
//! training is fast thanks to α. The shape to reproduce: walks ≥
//! training, and selection a small fraction of the step.
//!
//! Run: `cargo run -p glodyne-bench --release --bin scale_test
//!       [--scale 1.0] [--dim 64] [--seed 42]`

use glodyne::{GloDyNE, GloDyNEConfig};
use glodyne_bench::args::{Args, Common};
use glodyne_bench::legacy::LegacySgnsModel;
use glodyne_bench::methods::MethodParams;
use glodyne_embed::traits::step_with;
use glodyne_embed::walks::{generate_corpus_all, generate_walks_all};
use glodyne_embed::SgnsModel;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let scale = args.get("scale", 1.0);

    let dataset = glodyne_datasets::hyperlink(scale, common.seed);
    let snaps = dataset.network.snapshots();
    println!(
        "# Scale test — hyperlink analogue: {} snapshots, initial |V|={} |E|={}",
        snaps.len(),
        snaps[0].num_nodes(),
        snaps[0].num_edges()
    );

    let params = MethodParams {
        dim: common.dim,
        seed: common.seed,
        ..Default::default()
    };
    let cfg = GloDyNEConfig {
        walk: params.walk(),
        sgns: params.sgns(),
        ..GloDyNEConfig::default()
    };
    let mut method = GloDyNE::new(cfg).expect("scale-test parameters are valid");

    println!(
        "{:<6}{:>10}{:>12}{:>12}{:>12}{:>10}{:>14}",
        "t", "|V|", "select(s)", "walks(s)", "train(s)", "K_sel", "pairs/s"
    );
    let mut online_phase_sums = [0.0f64; 3];
    let mut prev: Option<&glodyne_graph::Snapshot> = None;
    for (t, snap) in snaps.iter().enumerate() {
        let report = step_with(&mut method, prev, snap);
        let ph = report.phases;
        // Throughput of the walk→train hot path (Steps 3–4).
        let hot = (ph.walks + ph.train).as_secs_f64().max(1e-12);
        println!(
            "{:<6}{:>10}{:>12.3}{:>12.3}{:>12.3}{:>10}{:>14.0}",
            t,
            snap.num_nodes(),
            ph.select.as_secs_f64(),
            ph.walks.as_secs_f64(),
            ph.train.as_secs_f64(),
            report.selected,
            report.trained_pairs as f64 / hot,
        );
        if t > 0 {
            online_phase_sums[0] += ph.select.as_secs_f64();
            online_phase_sums[1] += ph.walks.as_secs_f64();
            online_phase_sums[2] += ph.train.as_secs_f64();
        }
        prev = Some(snap);
    }
    let steps = (snaps.len() - 1).max(1) as f64;
    let avg = [
        online_phase_sums[0] / steps,
        online_phase_sums[1] / steps,
        online_phase_sums[2] / steps,
    ];
    println!(
        "\nonline per-snapshot averages: select {:.3}s, walks {:.3}s, train {:.3}s",
        avg[0], avg[1], avg[2]
    );
    // The paper's walks dominated because its walk generation was
    // single-threaded Python — it explicitly lists parallelizing walks
    // as the fix ("one may further reduce the overall time by
    // parallelizing random walks over multiprocessors in Step 3").
    // This implementation applies that fix (rayon), so training becomes
    // the dominant phase. The structural claims that survive the fix:
    // selection (Steps 1-2) is a small fraction of the step, and the
    // offline stage costs ~|V|/K times an online step.
    let step_total = (avg[0] + avg[1] + avg[2]).max(1e-12);
    println!(
        "shape (selection is a small fraction of each online step): {}",
        if avg[0] < 0.2 * step_total {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!(
        "note: walks are rayon-parallel here (the paper's stated future fix), so \
         training, not walking, dominates the online stage."
    );

    // Old-vs-new hot-path throughput on the final snapshot: the legacy
    // Vec<Vec<NodeId>> walk corpus against the flat zero-copy arena.
    let last = snaps.last().unwrap();
    let (walk_cfg, sgns_cfg) = (params.walk(), params.sgns());
    let time_run = |f: &dyn Fn() -> usize| {
        let t = Instant::now();
        let pairs = f();
        (pairs, t.elapsed().as_secs_f64())
    };
    let (pairs_old, t_old) = time_run(&|| {
        let walks = generate_walks_all(last, &walk_cfg);
        LegacySgnsModel::new(sgns_cfg.clone()).train(&walks)
    });
    let (pairs_new, t_new) = time_run(&|| {
        let corpus = generate_corpus_all(last, &walk_cfg);
        SgnsModel::new(sgns_cfg.clone()).train_corpus(&corpus)
    });
    println!(
        "\nhot-path throughput on final snapshot (|V|={}):\n\
         legacy Vec<Vec> path: {:>12.0} pairs/s ({} pairs in {:.3}s)\n\
         flat corpus path:     {:>12.0} pairs/s ({} pairs in {:.3}s)\n\
         speedup: {:.2}x",
        last.num_nodes(),
        pairs_old as f64 / t_old.max(1e-12),
        pairs_old,
        t_old,
        pairs_new as f64 / t_new.max(1e-12),
        pairs_new,
        t_new,
        t_old / t_new.max(1e-12),
    );
}
