//! Overload-control benchmark: read latency while the write path is
//! saturated and a drift rebalance is in flight.
//!
//! Boots a real sharded [`Server`] in fast-fail mode with a small
//! ingest queue, then for `--duration-ms`:
//!
//! - writer threads hammer wire `ingest` with batches of edges whose
//!   node ids drift upward, forcing hash-placed growth and therefore
//!   drift rebalances at flush boundaries;
//! - a flusher thread issues bounded `flush` requests so epochs keep
//!   publishing and the rebalance queue drains under its budget;
//! - the main thread measures wire `nearest` latency on its own
//!   connection, sample by sample.
//!
//! The point of the exercise: the epoch-swap read path must not care.
//! `--assert-read-p99-ms <ms>` exits nonzero if the read p99 exceeds
//! the bound, and the run also fails if overload never actually
//! happened (no `overloaded` sheds) or no rebalance batch ran —
//! a green gate on an idle system would be meaningless.
//!
//! ```text
//! cargo run --release -p glodyne-bench --bin bench_overload
//! cargo run --release -p glodyne-bench --bin bench_overload -- \
//!     --shards 2 --duration-ms 3000 --writers 2 --assert-read-p99-ms 50
//! ```

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig};
use glodyne_bench::args::Args;
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;
use glodyne_serve::{json, Server, ServerConfig};
use glodyne_shard::ShardConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn model(seed: u64) -> GloDyNE {
    let cfg = GloDyNEConfig {
        alpha: 0.3,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 10,
            seed,
        },
        sgns: SgnsConfig {
            dim: 32,
            window: 3,
            negatives: 2,
            epochs: 1,
            parallel: false,
            seed,
            ..Default::default()
        },
        ..Default::default()
    };
    GloDyNE::new(cfg).unwrap()
}

struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Wire {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn round_trip(&mut self, request: &str) -> json::Json {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = Args::from_env();
    let shards: usize = args.get("shards", 2);
    let writers: usize = args.get("writers", 2);
    let duration_ms: u64 = args.get("duration-ms", 3000);
    let assert_p99_ms: f64 = args.get("assert-read-p99-ms", 0.0);
    let out = args.get("out", "BENCH_overload.json".to_string());

    let shard_cfg = ShardConfig {
        shards,
        min_partition_nodes: 32,
        drift_threshold: 0.05,
        rebalance_budget: 64,
        ..Default::default()
    };
    // No default deadline: a request-level deadline routes writes to
    // the bounded-blocking path, and this run wants pure fast-fail
    // shedding (the flusher sends its own `deadline_ms`).
    let cfg = ServerConfig {
        queue_capacity: 64,
        fast_fail: true,
        ..ServerConfig::default()
    };
    let sessions = (0..shards)
        .map(|s| EmbedderSession::new(model(s as u64), EpochPolicy::Manual).unwrap())
        .collect();
    let server = Server::bind_sharded(sessions, shard_cfg, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    // Seed two tight communities + a bridge and publish epoch 1, so
    // readers have something to answer from before the storm starts.
    let mut seeder = Wire::connect(addr);
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 40;
        for i in 0..40 {
            edges.push(format!("[{},{},0]", base + i, base + (i + 1) % 40));
            edges.push(format!("[{},{},0]", base + i, base + (i + 7) % 40));
        }
    }
    edges.push("[0,40,0]".to_string());
    let resp = seeder.round_trip(&format!(
        r#"{{"cmd":"ingest","edges":[{}]}}"#,
        edges.join(",")
    ));
    assert_eq!(
        resp.get("ok"),
        Some(&json::Json::Bool(true)),
        "seed ingest failed: {resp}"
    );
    let resp = seeder.round_trip(r#"{"cmd":"flush"}"#);
    assert_eq!(
        resp.get("ok"),
        Some(&json::Json::Bool(true)),
        "seed flush failed: {resp}"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let accepted = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_millis(duration_ms);

    // Writers: drifting node ids force hash placement and, at flush
    // boundaries, budgeted rebalance batches.
    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut wire = Wire::connect(addr);
                let mut next = 100u64 + w as u64 * 1_000_000;
                let mut t = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    let batch: Vec<String> = (0..64)
                        .map(|i| {
                            let u = (next + i) % 4_000;
                            let v = (next + i + 1) % 4_000;
                            format!("[{u},{v},{t}]")
                        })
                        .collect();
                    next += 64;
                    t += 1;
                    let sent = batch.len() as u64;
                    let resp = wire.round_trip(&format!(
                        r#"{{"cmd":"ingest","edges":[{}]}}"#,
                        batch.join(",")
                    ));
                    if resp.get("ok") == Some(&json::Json::Bool(true)) {
                        let n = resp
                            .get("accepted")
                            .and_then(json::Json::as_u64)
                            .unwrap_or(0);
                        accepted.fetch_add(n, Ordering::Relaxed);
                        // Fast-fail sheds mid-batch come back as a
                        // partial accept, not an error — both count as
                        // the queue refusing work.
                        if n < sent {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // Flusher: bounded flushes keep epochs publishing and drain the
    // rebalance queue under its per-flush budget.
    let flusher = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut wire = Wire::connect(addr);
            while !stop.load(Ordering::Relaxed) {
                let _ = wire.round_trip(r#"{"cmd":"flush","deadline_ms":500}"#);
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    };

    // Reader: the measurement. Every sample is one wire round-trip.
    let mut reader = Wire::connect(addr);
    let mut samples_ms: Vec<f64> = Vec::new();
    let mut probe = 0u32;
    while Instant::now() < deadline {
        let started = Instant::now();
        let resp = reader.round_trip(&format!(
            r#"{{"cmd":"nearest","node":{},"k":10}}"#,
            probe % 80
        ));
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        probe += 1;
        if resp.get("ok") == Some(&json::Json::Bool(true)) {
            samples_ms.push(elapsed);
        }
    }
    stop.store(true, Ordering::Relaxed);
    for h in writer_handles {
        let _ = h.join();
    }
    let _ = flusher.join();

    let stats = reader.round_trip(r#"{"cmd":"stats"}"#);
    let rebalance_batches = stats
        .get("rebalance")
        .and_then(|r| r.get("rebalance_batches"))
        .and_then(json::Json::as_u64)
        .unwrap_or(0);
    let migrated = stats
        .get("rebalance")
        .and_then(|r| r.get("migrated_nodes"))
        .and_then(json::Json::as_u64)
        .unwrap_or(0);
    server.request_shutdown();
    server.join();

    samples_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&samples_ms, 0.50);
    let p99 = percentile(&samples_ms, 0.99);
    let reads = samples_ms.len();
    let accepted = accepted.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    println!(
        "overload: {reads} reads in {duration_ms}ms  p50={p50:.2}ms p99={p99:.2}ms  \
         ingest accepted={accepted} shed_batches={shed}  \
         rebalance batches={rebalance_batches} migrated={migrated}"
    );

    let json_out = format!(
        "{{\n  \"bench\": \"overload\",\n  \"shards\": {shards},\n  \"writers\": {writers},\n  \
         \"duration_ms\": {duration_ms},\n  \"reads\": {reads},\n  \"read_p50_ms\": {p50:.3},\n  \
         \"read_p99_ms\": {p99:.3},\n  \"ingest_accepted\": {accepted},\n  \
         \"ingest_shed_batches\": {shed},\n  \"rebalance_batches\": {rebalance_batches},\n  \
         \"migrated_nodes\": {migrated}\n}}\n"
    );
    std::fs::write(&out, &json_out).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    if assert_p99_ms > 0.0 {
        // A bound on an unloaded system proves nothing: require that
        // the write path actually shed and a rebalance actually ran.
        if shed == 0 {
            eprintln!("bench_overload: ingest was never overloaded; gate is meaningless");
            std::process::exit(1);
        }
        if rebalance_batches == 0 {
            eprintln!("bench_overload: no rebalance batch ran; gate is meaningless");
            std::process::exit(1);
        }
        if p99.is_nan() || p99 > assert_p99_ms {
            eprintln!(
                "bench_overload: read p99 {p99:.2}ms exceeded the \
                 --assert-read-p99-ms bound {assert_p99_ms:.2}ms"
            );
            std::process::exit(1);
        }
        println!("read p99 bound {assert_p99_ms:.2}ms held ({p99:.2}ms) under overload");
    }
}
