//! Table 5: node-selection strategies S1–S4 × walk length `l` in graph
//! reconstruction (§5.3.4).
//!
//! Expected shape: S1 < S2 < S3 < S4 at short walk lengths, converging
//! as `l` grows (a long-enough walker explores the global topology from
//! anywhere).
//!
//! Run: `cargo run -p glodyne-bench --release --bin table5_strategies
//!       [--scale 0.25] [--runs 2] [--dim 64] [--seed 42]`

use glodyne::Strategy;
use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::gr_mean_over_time;
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::run_timed;
use glodyne_tasks::stats;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let lengths = [3usize, 5, 10, 20, 40, 80];
    let strategies = [Strategy::S1, Strategy::S2, Strategy::S3, Strategy::S4];

    for dataset in [
        glodyne_datasets::as733(common.scale, common.seed),
        glodyne_datasets::elec(common.scale, common.seed + 3),
    ] {
        let snaps = dataset.network.snapshots();
        for k in [10usize, 40] {
            println!(
                "\n# Table 5 — {} GR MeanP@{k} (%), strategies × walk length",
                dataset.name
            );
            println!("{:<6}{:>10}{:>10}{:>10}{:>10}", "l", "S1", "S2", "S3", "S4");
            let mut s4_wins = 0usize;
            for &l in &lengths {
                let mut row = Vec::new();
                for &strat in &strategies {
                    let mut samples = Vec::new();
                    for run in 0..common.runs {
                        let params = MethodParams {
                            dim: common.dim,
                            walk_length: l,
                            strategy: strat,
                            seed: common.seed + run as u64 * 1000,
                            ..Default::default()
                        };
                        let mut method = build(MethodKind::GloDyNE, &params);
                        let results = run_timed(method.as_mut(), snaps);
                        samples.push(gr_mean_over_time(&results, snaps, &[k])[0] * 100.0);
                    }
                    row.push(stats::mean(&samples));
                }
                println!(
                    "{:<6}{:>10.3}{:>10.3}{:>10.3}{:>10.3}",
                    l, row[0], row[1], row[2], row[3]
                );
                if row[3] >= row[0] {
                    s4_wins += 1;
                }
            }
            println!(
                "shape: S4 >= S1 at {s4_wins}/{} walk lengths (paper: S1<S2<S3<S4): {}",
                lengths.len(),
                if s4_wins * 2 >= lengths.len() {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
        }
    }
}
