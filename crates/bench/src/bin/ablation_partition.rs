//! Ablation: how much do the multilevel partitioner's design choices
//! matter to GloDyNE's Step 1?
//!
//! Three knobs are ablated on the largest snapshot of each dataset
//! analogue:
//! 1. **FM refinement** (`refine_passes` 0 vs 4) — the uncoarsening
//!    phase's boundary swaps (§4.1.1's third phase);
//! 2. **balance tolerance** ε (0.02 / 0.1 / 0.5) — Eq. 2's constraint
//!    tightness vs cut quality;
//! 3. **multilevel vs flat** — the full coarsen/refine pipeline against
//!    one-shot greedy growing (coarsen_threshold = |V| disables
//!    coarsening).
//!
//! Run: `cargo run -p glodyne-bench --release --bin ablation_partition
//!       [--scale 0.5] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_partition::{partition, PartitionConfig};

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let scale = args.get("scale", 0.5);

    for dataset in [
        glodyne_datasets::fbw(scale, common.seed),
        glodyne_datasets::elec(scale, common.seed + 3),
    ] {
        let net = &dataset.network;
        let g = net
            .snapshots()
            .iter()
            .max_by_key(|s| s.num_nodes())
            .unwrap();
        let k = (g.num_nodes() / 10).max(2);
        println!(
            "\n# Ablation — {} largest snapshot: |V|={} |E|={} K={k}",
            dataset.name,
            g.num_nodes(),
            g.num_edges()
        );

        // 1. refinement passes
        println!("{:<34}{:>10}{:>12}", "variant", "edge cut", "imbalance");
        let mut cuts = Vec::new();
        for passes in [0usize, 1, 4] {
            let cfg = PartitionConfig {
                k,
                refine_passes: passes,
                seed: common.seed,
                ..Default::default()
            };
            let p = partition(g, &cfg);
            println!(
                "{:<34}{:>10}{:>12.3}",
                format!("refine_passes = {passes}"),
                p.edge_cut(g),
                p.imbalance(g.num_nodes())
            );
            cuts.push(p.edge_cut(g));
        }
        println!(
            "shape: refinement reduces the cut ({} -> {}): {}",
            cuts[0],
            cuts[2],
            if cuts[2] <= cuts[0] { "PASS" } else { "FAIL" }
        );

        // 2. balance tolerance
        for eps in [0.02f64, 0.1, 0.5] {
            let cfg = PartitionConfig {
                k,
                epsilon: eps,
                seed: common.seed,
                ..Default::default()
            };
            let p = partition(g, &cfg);
            println!(
                "{:<34}{:>10}{:>12.3}",
                format!("epsilon = {eps}"),
                p.edge_cut(g),
                p.imbalance(g.num_nodes())
            );
        }

        // 3. multilevel vs flat
        let flat = partition(
            g,
            &PartitionConfig {
                k,
                coarsen_threshold: g.num_nodes(), // disables coarsening
                seed: common.seed,
                ..Default::default()
            },
        );
        let multi = partition(
            g,
            &PartitionConfig {
                k,
                seed: common.seed,
                ..Default::default()
            },
        );
        println!(
            "{:<34}{:>10}{:>12.3}",
            "flat (no coarsening)",
            flat.edge_cut(g),
            flat.imbalance(g.num_nodes())
        );
        println!(
            "{:<34}{:>10}{:>12.3}",
            "multilevel (default)",
            multi.edge_cut(g),
            multi.imbalance(g.num_nodes())
        );
    }
}
