//! `nearest` micro-benchmark: the exact heap-select scan
//! (`Embedding::top_k`) against the IVF index (`glodyne-ann`), on
//! embedding-shaped data — a mixture of Gaussian direction clusters,
//! which is what trained graph embeddings look like (communities).
//!
//! Emits one machine-readable JSON file (default `BENCH_nearest.json`)
//! with queries/sec for both paths, the ANN speedup, recall@10 against
//! the exact scan, and the per-epoch index build cost. This seeds the
//! serving-path benchmark trajectory the same way `micro.rs` seeds the
//! training-path one.
//!
//! ```text
//! cargo run --release -p glodyne-bench --bin bench_nearest
//! cargo run --release -p glodyne-bench --bin bench_nearest -- \
//!     --sizes 1000,10000 --dim 128 --queries 200 --out BENCH_nearest.json
//! ```

use glodyne_ann::{IvfConfig, IvfIndex};
use glodyne_bench::args::Args;
use glodyne_embed::walks::splitmix64_next;
use glodyne_embed::Embedding;
use glodyne_graph::NodeId;
use std::time::Instant;

const K: usize = 10;

/// SplitMix64 stream over the workspace's shared generator.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        splitmix64_next(&mut self.0)
    }

    fn uniform(&mut self) -> f64 {
        // 53 mantissa bits -> (0, 1).
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    /// Standard normal via Box-Muller.
    fn gaussian(&mut self) -> f32 {
        let u1 = self.uniform();
        let u2 = self.uniform();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

/// `n` rows of dimension `dim` drawn around `clusters` Gaussian centres
/// (centre components ~ N(0,1), within-cluster noise sd 0.25) — tight
/// direction clusters, like the communities a trained embedding forms.
fn clustered_embedding(n: usize, dim: usize, clusters: usize, seed: u64) -> Embedding {
    let mut rng = SplitMix(seed);
    let centres: Vec<f32> = (0..clusters * dim).map(|_| rng.gaussian()).collect();
    let mut emb = Embedding::new(dim);
    let mut row = vec![0.0f32; dim];
    for i in 0..n {
        let centre = &centres[(i % clusters) * dim..(i % clusters + 1) * dim];
        for (x, &c) in row.iter_mut().zip(centre) {
            *x = c + 0.25 * rng.gaussian();
        }
        emb.set(NodeId(i as u32), &row);
    }
    emb
}

struct SizeResult {
    n: usize,
    cells: usize,
    nprobe: usize,
    build_ms: f64,
    exact_qps: f64,
    ann_qps: f64,
    speedup: f64,
    recall_at_10: f64,
}

fn bench_one(n: usize, dim: usize, clusters: usize, queries: usize, seed: u64) -> SizeResult {
    let emb = clustered_embedding(n, dim, clusters, seed);
    // √n coarse cells, probing ~a tenth of them (at least 4): the
    // classical IVF operating point.
    let cells = (n as f64).sqrt().round() as usize;
    let nprobe = (cells / 10).max(4);
    let probes: Vec<NodeId> = (0..queries)
        .map(|i| NodeId(((i * 37) % n) as u32))
        .collect();

    let start = Instant::now();
    let exact: Vec<Vec<(NodeId, f32)>> = probes.iter().map(|&p| emb.top_k(p, K)).collect();
    let exact_secs = start.elapsed().as_secs_f64();

    let cfg = IvfConfig {
        cells,
        seed,
        ..Default::default()
    };
    let start = Instant::now();
    let index = IvfIndex::build(&emb, &cfg);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let ann: Vec<Vec<(NodeId, f32)>> = probes
        .iter()
        .map(|&p| index.search(emb.get(p).unwrap(), K, nprobe, Some(p)))
        .collect();
    let ann_secs = start.elapsed().as_secs_f64();

    let mut overlap = 0usize;
    let mut expected = 0usize;
    for (e, a) in exact.iter().zip(&ann) {
        expected += e.len();
        overlap += e
            .iter()
            .filter(|(id, _)| a.iter().any(|(aid, _)| aid == id))
            .count();
    }

    SizeResult {
        n,
        cells,
        nprobe,
        build_ms,
        exact_qps: queries as f64 / exact_secs,
        ann_qps: queries as f64 / ann_secs,
        speedup: exact_secs / ann_secs,
        recall_at_10: overlap as f64 / expected.max(1) as f64,
    }
}

fn main() {
    let args = Args::from_env();
    let dim: usize = args.get("dim", 128);
    let clusters: usize = args.get("clusters", 64);
    let queries: usize = args.get("queries", 200);
    let seed: u64 = args.get("seed", 0);
    let out = args.get("out", "BENCH_nearest.json".to_string());
    let raw_sizes = args.get("sizes", "1000,10000".to_string());
    let sizes: Vec<usize> = raw_sizes
        .split(',')
        .map(|s| s.trim().parse().unwrap_or(0))
        .collect();
    // Reject degenerate parameters with a message instead of panicking
    // on a modulo-by-zero mid-run.
    if dim == 0 || clusters == 0 || queries == 0 || sizes.contains(&0) {
        eprintln!(
            "bench_nearest: --dim, --clusters, --queries, and every --sizes entry \
             must be positive integers (got dim={dim} clusters={clusters} \
             queries={queries} sizes={raw_sizes})"
        );
        std::process::exit(2);
    }

    let mut results = Vec::new();
    for &n in &sizes {
        let r = bench_one(n, dim, clusters, queries, seed);
        println!(
            "n={:>6}  cells={:>4} nprobe={:>3}  exact={:>9.0} q/s  ann={:>9.0} q/s  \
             speedup={:>5.2}x  recall@10={:.4}  build={:.1}ms",
            r.n, r.cells, r.nprobe, r.exact_qps, r.ann_qps, r.speedup, r.recall_at_10, r.build_ms
        );
        results.push(r);
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"nearest\",\n");
    json.push_str(&format!("  \"dim\": {dim},\n  \"k\": {K},\n"));
    json.push_str(&format!(
        "  \"clusters\": {clusters},\n  \"queries\": {queries},\n  \"seed\": {seed},\n"
    ));
    json.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"cells\": {}, \"nprobe\": {}, \"build_ms\": {:.2}, \
             \"exact_qps\": {:.1}, \"ann_qps\": {:.1}, \"speedup\": {:.2}, \
             \"recall_at_10\": {:.4}}}{}\n",
            r.n,
            r.cells,
            r.nprobe,
            r.build_ms,
            r.exact_qps,
            r.ann_qps,
            r.speedup,
            r.recall_at_10,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
