//! `nearest` micro-benchmark: the exact heap-select scan
//! (`Embedding::top_k`) against the IVF index (`glodyne-ann`), on
//! embedding-shaped data — a mixture of Gaussian direction clusters,
//! which is what trained graph embeddings look like (communities).
//!
//! Emits one machine-readable JSON file (default `BENCH_nearest.json`)
//! with, per size tier:
//!
//! - the legacy comparable columns (exact/ann q/s, speedup, recall@10,
//!   build_ms) measured with f32 posting lists and per-query scratch,
//!   so rows stay comparable across benchmark generations;
//! - the SQ8 tier: quantized-scan + exact-re-rank q/s, recall@10,
//!   index bytes, and the compression ratio against f32 storage;
//! - a batch sweep ({1, 16, 64} probes per `SearchScratch`) for both
//!   storage modes, mirroring the serving layer's `nearest_batch`.
//!
//! A top-level `kernel` object reports the measured similarity-kernel
//! bandwidth (GB/s) for the exact and the SIMD-shaped fast dot.
//!
//! `--assert-recall <t>` exits nonzero if any reported recall@10
//! (f32 or SQ8) lands below `t` — CI's bench-smoke uses this to pin
//! the quantized re-rank contract.
//!
//! Two serving-observability sections ride the largest size tier:
//!
//! - `telemetry_overhead`: the same query loop with and without the
//!   per-request instrumentation the server performs (an `Instant`
//!   pair plus one lock-free histogram record), best-of-3 passes each;
//!   `--assert-telemetry-overhead <pct>` exits nonzero if the q/s
//!   regression exceeds `pct` percent.
//! - `probe_recall_at_10`: the serving layer's quality-probe
//!   definition (`glodyne_serve::probe_recall`) evaluated offline on
//!   the clustered embedding + IVF epoch; `--assert-probe-recall <t>`
//!   pins its floor in CI.
//! - `chaos_overhead`: the same loop with and without the *disarmed*
//!   failpoint checks the serving hot path now carries (one
//!   `fail_io` + one `shed` per request — each a relaxed atomic load
//!   when no failpoint is armed); `--assert-chaos-overhead <pct>`
//!   pins the fault-injection layer to near-zero production cost.
//!
//! ```text
//! cargo run --release -p glodyne-bench --bin bench_nearest
//! cargo run --release -p glodyne-bench --bin bench_nearest -- \
//!     --sizes 1000,10000,100000 --dim 128 --queries 200 \
//!     --assert-recall 0.95 --assert-probe-recall 0.9 \
//!     --assert-telemetry-overhead 3 --out BENCH_nearest.json
//! ```

use glodyne_ann::{BatchQuery, IvfConfig, IvfIndex, SearchScratch};
use glodyne_bench::args::Args;
use glodyne_embed::kernel::{dot_exact, dot_fast};
use glodyne_embed::walks::splitmix64_next;
use glodyne_embed::Embedding;
use glodyne_graph::NodeId;
use glodyne_serve::{probe_recall, EmbeddingEpoch};
use glodyne_telemetry::Registry;
use std::time::Instant;

const K: usize = 10;
const BATCH_SIZES: [usize; 3] = [1, 16, 64];

/// SplitMix64 stream over the workspace's shared generator.
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        splitmix64_next(&mut self.0)
    }

    fn uniform(&mut self) -> f64 {
        // 53 mantissa bits -> (0, 1).
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    /// Standard normal via Box-Muller.
    fn gaussian(&mut self) -> f32 {
        let u1 = self.uniform();
        let u2 = self.uniform();
        ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

/// `n` rows of dimension `dim` drawn around `clusters` Gaussian centres
/// (centre components ~ N(0,1), within-cluster noise sd 0.25) — tight
/// direction clusters, like the communities a trained embedding forms.
fn clustered_embedding(n: usize, dim: usize, clusters: usize, seed: u64) -> Embedding {
    let mut rng = SplitMix(seed);
    let centres: Vec<f32> = (0..clusters * dim).map(|_| rng.gaussian()).collect();
    let mut emb = Embedding::new(dim);
    let mut row = vec![0.0f32; dim];
    for i in 0..n {
        let centre = &centres[(i % clusters) * dim..(i % clusters + 1) * dim];
        for (x, &c) in row.iter_mut().zip(centre) {
            *x = c + 0.25 * rng.gaussian();
        }
        emb.set(NodeId(i as u32), &row);
    }
    emb
}

/// Measured kernel bandwidth: GB/s of matrix traffic through each dot
/// kernel (one `rows × dim` pass streams `rows·dim·4` bytes).
struct KernelResult {
    rows: usize,
    gbps_exact: f64,
    gbps_fast: f64,
}

fn bench_kernel(dim: usize, seed: u64) -> KernelResult {
    // ~2 MiB of matrix at d=128: larger than L2 on small parts, so
    // this measures streaming throughput, not cache residency.
    let rows = 4096;
    let mut rng = SplitMix(seed ^ 0x9e37_79b9);
    let data: Vec<f32> = (0..rows * dim).map(|_| rng.gaussian()).collect();
    let query: Vec<f32> = (0..dim).map(|_| rng.gaussian()).collect();

    let gbps = |dot: fn(&[f32], &[f32]) -> f32| {
        let passes = 64usize;
        let mut sink = 0.0f32;
        // Warm pass, then timed passes.
        for row in data.chunks_exact(dim) {
            sink += dot(&query, row);
        }
        let start = Instant::now();
        for _ in 0..passes {
            for row in data.chunks_exact(dim) {
                sink += dot(&query, row);
            }
        }
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        (passes * rows * dim * 4) as f64 / secs / 1e9
    };

    KernelResult {
        rows,
        gbps_exact: gbps(dot_exact),
        gbps_fast: gbps(dot_fast),
    }
}

struct BatchPoint {
    batch: usize,
    f32_qps: f64,
    sq8_qps: f64,
}

/// One point of the cell-grouped batch sweep: the same probes answered
/// through `search_in_batch_with`, which scans each probed posting
/// list once per batch instead of once per query.
struct GroupedPoint {
    batch: usize,
    f32_qps: f64,
    sq8_qps: f64,
}

/// The freshness axis: after perturbing ~1% of rows, a fresh full
/// rebuild vs an incremental `update_from` patch of the same index.
struct IncrementalResult {
    dirty_rows: usize,
    build_full_ms: f64,
    build_incr_ms: f64,
    /// `build_full_ms / build_incr_ms` — how much build time the
    /// incremental path saves at this churn level.
    speedup: f64,
    /// Overlap@10 of the incremental index's answers with the fresh
    /// full build's answers at the same probe width (parity, not
    /// absolute recall): 1.0 means the patch lost nothing.
    recall_at_10: f64,
    /// `"incremental"` unless a drift trigger forced a full rebuild.
    build_kind: &'static str,
}

struct SizeResult {
    n: usize,
    cells: usize,
    nprobe: usize,
    // f32 storage, per-query scratch — comparable across generations.
    build_ms: f64,
    exact_qps: f64,
    ann_qps: f64,
    speedup: f64,
    recall_at_10: f64,
    index_bytes: usize,
    // SQ8 storage with exact re-rank.
    sq8_build_ms: f64,
    sq8_qps: f64,
    sq8_recall_at_10: f64,
    sq8_index_bytes: usize,
    sq8_compression: f64,
    // Scratch-reuse sweep, both storage modes.
    batch: Vec<BatchPoint>,
    // Cell-grouped batch sweep over the same points.
    batch_grouped: Vec<GroupedPoint>,
    // Incremental-maintenance axis (~1% dirty).
    incremental: IncrementalResult,
}

fn recall(exact: &[Vec<(NodeId, f32)>], approx: &[Vec<(NodeId, f32)>]) -> f64 {
    let mut overlap = 0usize;
    let mut expected = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        expected += e.len();
        overlap += e
            .iter()
            .filter(|(id, _)| a.iter().any(|(aid, _)| aid == id))
            .count();
    }
    overlap as f64 / expected.max(1) as f64
}

/// Queries/sec through `index.search_in_with` with one scratch per
/// `batch` probes — the serving layer's `nearest_batch` access pattern.
fn batched_qps(
    index: &IvfIndex,
    emb: &Embedding,
    probes: &[NodeId],
    nprobe: usize,
    batch: usize,
) -> f64 {
    let start = Instant::now();
    for chunk in probes.chunks(batch) {
        let mut scratch = SearchScratch::new();
        for &p in chunk {
            let hits =
                index.search_in_with(emb, emb.get(p).unwrap(), K, nprobe, Some(p), &mut scratch);
            std::hint::black_box(hits);
        }
    }
    probes.len() as f64 / start.elapsed().as_secs_f64()
}

/// Queries/sec through the cell-grouped `search_in_batch_with` with
/// one scratch per `batch` probes — the serving layer's grouped
/// `nearest_batch` access pattern. Bit-exact with [`batched_qps`]'s
/// per-query scans; only the posting-list traversal order differs.
fn grouped_qps(
    index: &IvfIndex,
    emb: &Embedding,
    probes: &[NodeId],
    nprobe: usize,
    batch: usize,
) -> f64 {
    let start = Instant::now();
    for chunk in probes.chunks(batch) {
        let mut scratch = SearchScratch::new();
        let queries: Vec<BatchQuery<'_>> = chunk
            .iter()
            .map(|&p| BatchQuery {
                query: emb.get(p).unwrap(),
                exclude: Some(p),
            })
            .collect();
        let hits = index.search_in_batch_with(emb, &queries, K, nprobe, &mut scratch);
        std::hint::black_box(hits);
    }
    probes.len() as f64 / start.elapsed().as_secs_f64()
}

/// The freshness axis: perturb ~1% of rows (deterministically spread
/// over the id space), then time a fresh full rebuild against an
/// incremental `update_from` patch of `index`, and measure how much of
/// the full build's top-10 the patched index reproduces at the same
/// probe width.
fn bench_incremental(
    index: &IvfIndex,
    emb: &Embedding,
    cfg: &IvfConfig,
    probes: &[NodeId],
    nprobe: usize,
    seed: u64,
) -> IncrementalResult {
    let n = emb.len();
    let dirty_count = (n / 100).max(1);
    let stride = (n / dirty_count).max(1);
    let mut rng = SplitMix(seed ^ 0xD1F7_BEEF);
    let mut perturbed = emb.clone();
    let mut dirty = Vec::with_capacity(dirty_count);
    for i in 0..dirty_count {
        let id = NodeId((i * stride) as u32);
        let mut row = perturbed.get(id).unwrap().to_vec();
        for x in &mut row {
            *x += 0.05 * rng.gaussian();
        }
        perturbed.set(id, &row);
        dirty.push(id);
    }

    let start = Instant::now();
    let full = IvfIndex::build(&perturbed, cfg);
    let build_full_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let incr = IvfIndex::update_from(index, &perturbed, &dirty, cfg);
    let build_incr_ms = start.elapsed().as_secs_f64() * 1e3;

    let answers = |ix: &IvfIndex| -> Vec<Vec<(NodeId, f32)>> {
        let mut scratch = SearchScratch::new();
        probes
            .iter()
            .map(|&p| {
                ix.search_in_with(
                    &perturbed,
                    perturbed.get(p).unwrap(),
                    K,
                    nprobe,
                    Some(p),
                    &mut scratch,
                )
            })
            .collect()
    };
    let recall_at_10 = recall(&answers(&full), &answers(&incr));
    IncrementalResult {
        dirty_rows: incr.dirty_rows(),
        build_full_ms,
        build_incr_ms,
        speedup: build_full_ms / build_incr_ms.max(1e-9),
        recall_at_10,
        build_kind: incr.build_kind().as_str(),
    }
}

struct TelemetryOverhead {
    plain_qps: f64,
    instrumented_qps: f64,
    /// Percent q/s lost to instrumentation (negative = noise favoured
    /// the instrumented pass).
    overhead_pct: f64,
}

/// The serving hot path's per-request telemetry cost, isolated: the
/// identical ANN query loop, plain vs wrapped in exactly what
/// `Server::handle_connection` adds per request — one `Instant` pair
/// and one lock-free histogram record. Best-of-3 passes each, so the
/// comparison pits peak against peak rather than noise against noise.
fn bench_telemetry_overhead(
    index: &IvfIndex,
    emb: &Embedding,
    probes: &[NodeId],
    nprobe: usize,
) -> TelemetryOverhead {
    let registry = Registry::new();
    let hist = registry.histogram(
        "glodyne_wire_latency_us",
        "request wall time",
        &[("cmd", "nearest")],
    );
    let pass = |instrumented: bool| {
        let mut scratch = SearchScratch::new();
        let start = Instant::now();
        for &p in probes {
            let t = instrumented.then(Instant::now);
            let hits =
                index.search_in_with(emb, emb.get(p).unwrap(), K, nprobe, Some(p), &mut scratch);
            std::hint::black_box(hits);
            if let Some(t) = t {
                hist.record_duration(t.elapsed());
            }
        }
        probes.len() as f64 / start.elapsed().as_secs_f64()
    };
    // Warm both paths, then alternate timed passes.
    pass(false);
    pass(true);
    let plain_qps = (0..3).map(|_| pass(false)).fold(0.0f64, f64::max);
    let instrumented_qps = (0..3).map(|_| pass(true)).fold(0.0f64, f64::max);
    TelemetryOverhead {
        plain_qps,
        instrumented_qps,
        overhead_pct: (1.0 - instrumented_qps / plain_qps) * 100.0,
    }
}

struct ChaosOverhead {
    plain_qps: f64,
    failpoint_qps: f64,
    /// Percent q/s lost to disarmed failpoint checks (negative = noise
    /// favoured the instrumented pass).
    overhead_pct: f64,
}

/// The cost of the fault-injection layer when *nothing is armed*: the
/// identical ANN query loop, plain vs carrying the failpoint checks a
/// served request passes through (`fail_io` on the socket sites plus a
/// `shed` on the ingest site — each one relaxed atomic load). This is
/// the whole production price of shipping failpoints compiled in.
fn bench_chaos_overhead(
    index: &IvfIndex,
    emb: &Embedding,
    probes: &[NodeId],
    nprobe: usize,
) -> ChaosOverhead {
    glodyne_chaos::disarm();
    let pass = |with_failpoints: bool| {
        let mut scratch = SearchScratch::new();
        let start = Instant::now();
        for &p in probes {
            if with_failpoints {
                glodyne_chaos::fail_io(glodyne_chaos::sites::SOCKET_READ)
                    .expect("disarmed failpoint never fires");
                if glodyne_chaos::shed(glodyne_chaos::sites::INGEST_ENQUEUE) {
                    unreachable!("disarmed failpoint never sheds");
                }
            }
            let hits =
                index.search_in_with(emb, emb.get(p).unwrap(), K, nprobe, Some(p), &mut scratch);
            std::hint::black_box(hits);
            if with_failpoints {
                glodyne_chaos::fail_io(glodyne_chaos::sites::SOCKET_WRITE)
                    .expect("disarmed failpoint never fires");
            }
        }
        probes.len() as f64 / start.elapsed().as_secs_f64()
    };
    pass(false);
    pass(true);
    let plain_qps = (0..3).map(|_| pass(false)).fold(0.0f64, f64::max);
    let failpoint_qps = (0..3).map(|_| pass(true)).fold(0.0f64, f64::max);
    ChaosOverhead {
        plain_qps,
        failpoint_qps,
        overhead_pct: (1.0 - failpoint_qps / plain_qps) * 100.0,
    }
}

fn bench_one(n: usize, dim: usize, clusters: usize, queries: usize, seed: u64) -> SizeResult {
    let emb = clustered_embedding(n, dim, clusters, seed);
    // √n coarse cells, probing ~a tenth of them (at least 4): the
    // classical IVF operating point.
    let cells = (n as f64).sqrt().round() as usize;
    let nprobe = (cells / 10).max(4);
    let probes: Vec<NodeId> = (0..queries)
        .map(|i| NodeId(((i * 37) % n) as u32))
        .collect();

    // Warm pass: fault the arena in before timing (the first scan
    // otherwise pays page-in cost that no steady-state query sees).
    std::hint::black_box(emb.top_k(probes[0], K));
    let start = Instant::now();
    let exact: Vec<Vec<(NodeId, f32)>> = probes.iter().map(|&p| emb.top_k(p, K)).collect();
    let exact_secs = start.elapsed().as_secs_f64();

    let cfg = IvfConfig {
        cells,
        seed,
        ..Default::default()
    };
    let start = Instant::now();
    let index = IvfIndex::build(&emb, &cfg);
    let build_ms = start.elapsed().as_secs_f64() * 1e3;

    for &p in &probes {
        std::hint::black_box(index.search(emb.get(p).unwrap(), K, nprobe, Some(p)));
    }
    let start = Instant::now();
    let ann: Vec<Vec<(NodeId, f32)>> = probes
        .iter()
        .map(|&p| index.search(emb.get(p).unwrap(), K, nprobe, Some(p)))
        .collect();
    let ann_secs = start.elapsed().as_secs_f64();

    let sq8_cfg = IvfConfig {
        cells,
        seed,
        quantize: true,
        ..Default::default()
    };
    let start = Instant::now();
    let sq8_index = IvfIndex::build(&emb, &sq8_cfg);
    let sq8_build_ms = start.elapsed().as_secs_f64() * 1e3;

    for &p in &probes {
        std::hint::black_box(sq8_index.search_in(&emb, emb.get(p).unwrap(), K, nprobe, Some(p)));
    }
    let start = Instant::now();
    let sq8: Vec<Vec<(NodeId, f32)>> = probes
        .iter()
        .map(|&p| sq8_index.search_in(&emb, emb.get(p).unwrap(), K, nprobe, Some(p)))
        .collect();
    let sq8_secs = start.elapsed().as_secs_f64();

    let batch = BATCH_SIZES
        .iter()
        .map(|&b| BatchPoint {
            batch: b,
            f32_qps: batched_qps(&index, &emb, &probes, nprobe, b),
            sq8_qps: batched_qps(&sq8_index, &emb, &probes, nprobe, b),
        })
        .collect();
    let batch_grouped = BATCH_SIZES
        .iter()
        .map(|&b| GroupedPoint {
            batch: b,
            f32_qps: grouped_qps(&index, &emb, &probes, nprobe, b),
            sq8_qps: grouped_qps(&sq8_index, &emb, &probes, nprobe, b),
        })
        .collect();
    let incremental = bench_incremental(&index, &emb, &cfg, &probes, nprobe, seed);

    SizeResult {
        n,
        cells,
        nprobe,
        build_ms,
        exact_qps: queries as f64 / exact_secs,
        ann_qps: queries as f64 / ann_secs,
        speedup: exact_secs / ann_secs,
        recall_at_10: recall(&exact, &ann),
        index_bytes: index.index_bytes(),
        sq8_build_ms,
        sq8_qps: queries as f64 / sq8_secs,
        sq8_recall_at_10: recall(&exact, &sq8),
        sq8_index_bytes: sq8_index.index_bytes(),
        sq8_compression: index.index_bytes() as f64 / sq8_index.index_bytes().max(1) as f64,
        batch,
        batch_grouped,
        incremental,
    }
}

fn main() {
    let args = Args::from_env();
    let dim: usize = args.get("dim", 128);
    let clusters: usize = args.get("clusters", 64);
    let queries: usize = args.get("queries", 400);
    let seed: u64 = args.get("seed", 0);
    let assert_recall: f64 = args.get("assert-recall", 0.0);
    let assert_probe_recall: f64 = args.get("assert-probe-recall", 0.0);
    let assert_telemetry_overhead: f64 = args.get("assert-telemetry-overhead", 0.0);
    let assert_chaos_overhead: f64 = args.get("assert-chaos-overhead", 0.0);
    let assert_incr_speedup: f64 = args.get("assert-incr-speedup", 0.0);
    let assert_incr_recall: f64 = args.get("assert-incr-recall", 0.0);
    let assert_grouped_speedup: f64 = args.get("assert-grouped-speedup", 0.0);
    let out = args.get("out", "BENCH_nearest.json".to_string());
    let raw_sizes = args.get("sizes", "1000,10000,100000".to_string());
    let sizes: Vec<usize> = raw_sizes
        .split(',')
        .map(|s| s.trim().parse().unwrap_or(0))
        .collect();
    // Reject degenerate parameters with a message instead of panicking
    // on a modulo-by-zero mid-run.
    if dim == 0 || clusters == 0 || queries == 0 || sizes.contains(&0) {
        eprintln!(
            "bench_nearest: --dim, --clusters, --queries, and every --sizes entry \
             must be positive integers (got dim={dim} clusters={clusters} \
             queries={queries} sizes={raw_sizes})"
        );
        std::process::exit(2);
    }

    let kernel = bench_kernel(dim, seed);
    println!(
        "kernel d={dim} rows={}: exact={:.2} GB/s  fast={:.2} GB/s",
        kernel.rows, kernel.gbps_exact, kernel.gbps_fast
    );

    let mut results = Vec::new();
    for &n in &sizes {
        let r = bench_one(n, dim, clusters, queries, seed);
        println!(
            "n={:>6}  cells={:>4} nprobe={:>3}  exact={:>9.0} q/s  ann={:>9.0} q/s  \
             speedup={:>5.2}x  recall@10={:.4}  build={:.1}ms",
            r.n, r.cells, r.nprobe, r.exact_qps, r.ann_qps, r.speedup, r.recall_at_10, r.build_ms
        );
        println!(
            "          sq8: {:>9.0} q/s  recall@10={:.4}  bytes={} ({:.2}x smaller)  build={:.1}ms",
            r.sq8_qps, r.sq8_recall_at_10, r.sq8_index_bytes, r.sq8_compression, r.sq8_build_ms
        );
        for (b, g) in r.batch.iter().zip(&r.batch_grouped) {
            println!(
                "          batch={:>2}: f32={:>9.0} q/s  sq8={:>9.0} q/s  \
                 grouped: f32={:>9.0} q/s  sq8={:>9.0} q/s",
                b.batch, b.f32_qps, b.sq8_qps, g.f32_qps, g.sq8_qps
            );
        }
        let inc = &r.incremental;
        println!(
            "          incr ({} dirty, {}): full={:.1}ms  incr={:.1}ms  \
             speedup={:.2}x  parity@10={:.4}",
            inc.dirty_rows,
            inc.build_kind,
            inc.build_full_ms,
            inc.build_incr_ms,
            inc.speedup,
            inc.recall_at_10
        );
        results.push(r);
    }

    // Observability sections on the largest tier: the telemetry
    // hot-path overhead and the serving probe's recall definition.
    let n_big = *sizes.iter().max().unwrap();
    let emb = clustered_embedding(n_big, dim, clusters, seed);
    let cells = (n_big as f64).sqrt().round() as usize;
    let nprobe = (cells / 10).max(4);
    let index = IvfIndex::build(
        &emb,
        &IvfConfig {
            cells,
            seed,
            ..Default::default()
        },
    );
    let probes: Vec<NodeId> = (0..queries)
        .map(|i| NodeId(((i * 37) % n_big) as u32))
        .collect();
    let overhead = bench_telemetry_overhead(&index, &emb, &probes, nprobe);
    println!(
        "telemetry overhead (n={n_big}): plain={:.0} q/s  instrumented={:.0} q/s  \
         overhead={:.2}%",
        overhead.plain_qps, overhead.instrumented_qps, overhead.overhead_pct
    );
    let chaos = bench_chaos_overhead(&index, &emb, &probes, nprobe);
    println!(
        "chaos overhead (n={n_big}, disarmed): plain={:.0} q/s  failpoints={:.0} q/s  \
         overhead={:.2}%",
        chaos.plain_qps, chaos.failpoint_qps, chaos.overhead_pct
    );
    let epoch = EmbeddingEpoch {
        epoch: 1,
        embedding: emb,
        report: None,
        index: Some(index),
    };
    let probed = probe_recall(&epoch, K, 32, seed.wrapping_add(1), nprobe)
        .expect("clustered epoch with an index is always measurable");
    println!("probe recall@{K} (n={n_big}, 32 sampled nodes): {probed:.4}");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"nearest\",\n");
    json.push_str(&format!("  \"dim\": {dim},\n  \"k\": {K},\n"));
    json.push_str(&format!(
        "  \"clusters\": {clusters},\n  \"queries\": {queries},\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!(
        "  \"kernel\": {{\"rows\": {}, \"gbps_exact\": {:.2}, \"gbps_fast\": {:.2}}},\n",
        kernel.rows, kernel.gbps_exact, kernel.gbps_fast
    ));
    json.push_str(&format!(
        "  \"telemetry_overhead\": {{\"n\": {n_big}, \"plain_qps\": {:.1}, \
         \"instrumented_qps\": {:.1}, \"overhead_pct\": {:.2}}},\n",
        overhead.plain_qps, overhead.instrumented_qps, overhead.overhead_pct
    ));
    json.push_str(&format!(
        "  \"chaos_overhead\": {{\"n\": {n_big}, \"plain_qps\": {:.1}, \
         \"failpoint_qps\": {:.1}, \"overhead_pct\": {:.2}}},\n",
        chaos.plain_qps, chaos.failpoint_qps, chaos.overhead_pct
    ));
    json.push_str(&format!(
        "  \"probe_recall_at_10\": {{\"n\": {n_big}, \"sample\": 32, \"nprobe\": {nprobe}, \
         \"recall\": {probed:.4}}},\n"
    ));
    json.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {}, \"cells\": {}, \"nprobe\": {}, \"build_ms\": {:.2}, \
             \"exact_qps\": {:.1}, \"ann_qps\": {:.1}, \"speedup\": {:.2}, \
             \"recall_at_10\": {:.4}, \"index_bytes\": {},\n",
            r.n,
            r.cells,
            r.nprobe,
            r.build_ms,
            r.exact_qps,
            r.ann_qps,
            r.speedup,
            r.recall_at_10,
            r.index_bytes,
        ));
        let inc = &r.incremental;
        json.push_str(&format!(
            "     \"build_full_ms\": {:.2}, \"build_incr_ms\": {:.2}, \
             \"incremental\": {{\"dirty_rows\": {}, \"speedup\": {:.2}, \
             \"recall_at_10\": {:.4}, \"build_kind\": \"{}\"}},\n",
            inc.build_full_ms,
            inc.build_incr_ms,
            inc.dirty_rows,
            inc.speedup,
            inc.recall_at_10,
            inc.build_kind,
        ));
        json.push_str(&format!(
            "     \"sq8\": {{\"build_ms\": {:.2}, \"qps\": {:.1}, \"recall_at_10\": {:.4}, \
             \"index_bytes\": {}, \"compression\": {:.2}}},\n",
            r.sq8_build_ms, r.sq8_qps, r.sq8_recall_at_10, r.sq8_index_bytes, r.sq8_compression,
        ));
        json.push_str("     \"batch\": [");
        for (j, b) in r.batch.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"batch\": {}, \"f32_qps\": {:.1}, \"sq8_qps\": {:.1}}}",
                if j > 0 { ", " } else { "" },
                b.batch,
                b.f32_qps,
                b.sq8_qps
            ));
        }
        json.push_str("],\n     \"batch_grouped\": [");
        for (j, g) in r.batch_grouped.iter().enumerate() {
            json.push_str(&format!(
                "{}{{\"batch\": {}, \"f32_qps\": {:.1}, \"sq8_qps\": {:.1}}}",
                if j > 0 { ", " } else { "" },
                g.batch,
                g.f32_qps,
                g.sq8_qps
            ));
        }
        json.push_str(&format!(
            "]}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    if assert_recall > 0.0 {
        let worst = results
            .iter()
            .flat_map(|r| [r.recall_at_10, r.sq8_recall_at_10])
            .fold(f64::INFINITY, f64::min);
        if worst < assert_recall {
            eprintln!(
                "bench_nearest: recall@{K} {worst:.4} fell below the \
                 --assert-recall floor {assert_recall:.4}"
            );
            std::process::exit(1);
        }
        println!("recall floor {assert_recall:.4} held (worst observed {worst:.4})");
    }
    if assert_probe_recall > 0.0 {
        if probed < assert_probe_recall {
            eprintln!(
                "bench_nearest: probe recall@{K} {probed:.4} fell below the \
                 --assert-probe-recall floor {assert_probe_recall:.4}"
            );
            std::process::exit(1);
        }
        println!("probe recall floor {assert_probe_recall:.4} held ({probed:.4})");
    }
    if assert_telemetry_overhead > 0.0 {
        if overhead.overhead_pct > assert_telemetry_overhead {
            eprintln!(
                "bench_nearest: telemetry overhead {:.2}% exceeded the \
                 --assert-telemetry-overhead ceiling {assert_telemetry_overhead:.2}%",
                overhead.overhead_pct
            );
            std::process::exit(1);
        }
        println!(
            "telemetry overhead ceiling {assert_telemetry_overhead:.2}% held ({:.2}%)",
            overhead.overhead_pct
        );
    }
    // The incremental-maintenance and grouped-batch gates read the
    // largest tier (CI's bench-smoke points them at its 100k tier).
    let biggest = results
        .iter()
        .max_by_key(|r| r.n)
        .expect("at least one size tier");
    if assert_incr_speedup > 0.0 {
        let inc = &biggest.incremental;
        if inc.speedup < assert_incr_speedup || inc.build_kind != "incremental" {
            eprintln!(
                "bench_nearest: incremental build speedup {:.2}x (kind {}) fell below \
                 the --assert-incr-speedup floor {assert_incr_speedup:.2}x at n={}",
                inc.speedup, inc.build_kind, biggest.n
            );
            std::process::exit(1);
        }
        println!(
            "incremental speedup floor {assert_incr_speedup:.2}x held ({:.2}x at n={})",
            inc.speedup, biggest.n
        );
    }
    if assert_incr_recall > 0.0 {
        let inc = &biggest.incremental;
        if inc.recall_at_10 < assert_incr_recall {
            eprintln!(
                "bench_nearest: incremental parity@{K} {:.4} fell below the \
                 --assert-incr-recall floor {assert_incr_recall:.4} at n={}",
                inc.recall_at_10, biggest.n
            );
            std::process::exit(1);
        }
        println!(
            "incremental parity floor {assert_incr_recall:.4} held ({:.4} at n={})",
            inc.recall_at_10, biggest.n
        );
    }
    if assert_grouped_speedup > 0.0 {
        let single = biggest
            .batch
            .iter()
            .find(|b| b.batch == 1)
            .map(|b| b.f32_qps)
            .unwrap_or(f64::INFINITY);
        let grouped = biggest
            .batch_grouped
            .iter()
            .max_by_key(|g| g.batch)
            .map(|g| g.f32_qps)
            .unwrap_or(0.0);
        let ratio = grouped / single;
        if ratio < assert_grouped_speedup {
            eprintln!(
                "bench_nearest: grouped batch q/s ratio {ratio:.2}x fell below the \
                 --assert-grouped-speedup floor {assert_grouped_speedup:.2}x at n={}",
                biggest.n
            );
            std::process::exit(1);
        }
        println!(
            "grouped batch speedup floor {assert_grouped_speedup:.2}x held ({ratio:.2}x at n={})",
            biggest.n
        );
    }
    if assert_chaos_overhead > 0.0 {
        if chaos.overhead_pct > assert_chaos_overhead {
            eprintln!(
                "bench_nearest: disarmed-failpoint overhead {:.2}% exceeded the \
                 --assert-chaos-overhead ceiling {assert_chaos_overhead:.2}%",
                chaos.overhead_pct
            );
            std::process::exit(1);
        }
        println!(
            "chaos overhead ceiling {assert_chaos_overhead:.2}% held ({:.2}%)",
            chaos.overhead_pct
        );
    }
}
