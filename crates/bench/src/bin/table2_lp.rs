//! Table 2: dynamic link prediction AUC, 7 methods × 6 datasets.
//!
//! Embeddings at `t` predict the changed-plus-balanced edge set of
//! `t+1`; AUC is averaged over all transitions and `--runs` runs.
//!
//! Run: `cargo run -p glodyne-bench --release --bin table2_lp
//!       [--scale 0.25] [--runs 3] [--dim 64] [--seed 42]`

use glodyne_baselines::supports_node_deletions;
use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::lp_mean_over_time;
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::{has_node_deletions, run_timed};
use glodyne_bench::table::{render, Cell};

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);

    let datasets = glodyne_datasets::standard_suite(common.scale, common.seed);
    let methods = MethodKind::comparative();
    let col_labels: Vec<&str> = datasets.iter().map(|d| d.name).collect();
    let row_labels: Vec<&str> = methods.iter().map(|m| m.label()).collect();

    let mut cells: Vec<Vec<Cell>> = vec![vec![Cell::NotApplicable; datasets.len()]; methods.len()];

    for (di, dataset) in datasets.iter().enumerate() {
        let snaps = dataset.network.snapshots();
        let deletions = has_node_deletions(snaps);
        for (mi, &kind) in methods.iter().enumerate() {
            if deletions && !supports_node_deletions(kind.label()) {
                continue;
            }
            let mut samples = Vec::with_capacity(common.runs);
            for run in 0..common.runs {
                let params = MethodParams {
                    dim: common.dim,
                    seed: common.seed + run as u64 * 1000,
                    ..Default::default()
                };
                let mut method = build(kind, &params);
                let results = run_timed(method.as_mut(), snaps);
                samples.push(lp_mean_over_time(&results, snaps, common.seed + run as u64) * 100.0);
            }
            cells[mi][di] = Cell::Runs(samples);
            eprintln!("done: {} on {}", kind.label(), dataset.name);
        }
    }

    println!(
        "\n{}",
        render(
            "Table 2 — link prediction AUC (%)",
            &row_labels,
            &col_labels,
            &cells,
        )
    );
    println!("Shape check vs paper: GloDyNE best or second-best on most datasets;");
    println!("all methods above 50 (chance).");
}
