//! Table 3: node classification Micro/Macro-F1 on Cora and DBLP, train
//! ratios 0.5 / 0.7 / 0.9.
//!
//! At each time step the latest embeddings feed a one-vs-rest logistic
//! regression; F1 is averaged over time steps and runs.
//!
//! Run: `cargo run -p glodyne-bench --release --bin table3_nc
//!       [--scale 0.25] [--runs 3] [--dim 64] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::run_timed;
use glodyne_bench::table::{render, Cell};
use glodyne_tasks::nc::node_classification;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let ratios = [0.5, 0.7, 0.9];

    let datasets = [
        glodyne_datasets::cora(common.scale, common.seed + 1),
        glodyne_datasets::dblp(common.scale, common.seed + 2),
    ];
    let methods = MethodKind::comparative();
    let row_labels: Vec<&str> = methods.iter().map(|m| m.label()).collect();
    let col_labels: Vec<String> = datasets
        .iter()
        .flat_map(|d| ratios.iter().map(move |r| format!("{} {r}", d.name)))
        .collect();
    let col_refs: Vec<&str> = col_labels.iter().map(|s| s.as_str()).collect();

    // [micro/macro][method][dataset*ratio]
    let mut micro = vec![vec![Cell::NotApplicable; col_labels.len()]; methods.len()];
    let mut macro_ = vec![vec![Cell::NotApplicable; col_labels.len()]; methods.len()];

    for (di, dataset) in datasets.iter().enumerate() {
        let snaps = dataset.network.snapshots();
        let labels = dataset.labels.as_ref().unwrap();
        for (mi, &kind) in methods.iter().enumerate() {
            let mut micro_samples = vec![Vec::new(); ratios.len()];
            let mut macro_samples = vec![Vec::new(); ratios.len()];
            for run in 0..common.runs {
                let params = MethodParams {
                    dim: common.dim,
                    seed: common.seed + run as u64 * 1000,
                    ..Default::default()
                };
                let mut method = build(kind, &params);
                let results = run_timed(method.as_mut(), snaps);
                for (ri, &ratio) in ratios.iter().enumerate() {
                    let mut mi_acc = 0.0;
                    let mut ma_acc = 0.0;
                    for (t, r) in results.iter().enumerate() {
                        let f1 = node_classification(
                            &r.embedding,
                            &snaps[t],
                            labels,
                            dataset.num_classes,
                            ratio,
                            common.seed + (run * 100 + t) as u64,
                        );
                        mi_acc += f1.micro;
                        ma_acc += f1.macro_;
                    }
                    micro_samples[ri].push(mi_acc / results.len() as f64 * 100.0);
                    macro_samples[ri].push(ma_acc / results.len() as f64 * 100.0);
                }
            }
            for ri in 0..ratios.len() {
                micro[mi][di * ratios.len() + ri] = Cell::Runs(micro_samples[ri].clone());
                macro_[mi][di * ratios.len() + ri] = Cell::Runs(macro_samples[ri].clone());
            }
            eprintln!("done: {} on {}", kind.label(), dataset.name);
        }
    }

    println!(
        "\n{}",
        render("Table 3 — Micro-F1 (%)", &row_labels, &col_refs, &micro)
    );
    println!(
        "\n{}",
        render("Table 3 — Macro-F1 (%)", &row_labels, &col_refs, &macro_)
    );
    println!("Shape check vs paper: GloDyNE (and walk-based methods generally)");
    println!("lead; Macro-F1 below Micro-F1 for every method.");
}
