//! Table 4: wall-clock seconds to obtain embeddings over all time
//! steps (downstream tasks excluded), plus the dataset-size footer.
//!
//! Run: `cargo run -p glodyne-bench --release --bin table4_time
//!       [--scale 0.25] [--runs 3] [--dim 64] [--seed 42]`

use glodyne_baselines::supports_node_deletions;
use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::total_seconds;
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::{has_node_deletions, run_timed};
use glodyne_tasks::stats;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);

    let datasets = glodyne_datasets::standard_suite(common.scale, common.seed);
    let methods = MethodKind::comparative();

    println!(
        "# Table 4 — wall-clock seconds of obtaining embeddings (all time steps, mean over runs)"
    );
    print!("{:<16}", "");
    for d in &datasets {
        print!("{:<12}", d.name);
    }
    println!();

    let mut glodyne_row: Vec<f64> = Vec::new();
    let mut min_other: Vec<f64> = vec![f64::INFINITY; datasets.len()];

    for &kind in &methods {
        print!("{:<16}", kind.label());
        for (di, dataset) in datasets.iter().enumerate() {
            let snaps = dataset.network.snapshots();
            if has_node_deletions(snaps) && !supports_node_deletions(kind.label()) {
                print!("{:<12}", "n/a");
                continue;
            }
            let mut samples = Vec::with_capacity(common.runs);
            for run in 0..common.runs {
                let params = MethodParams {
                    dim: common.dim,
                    seed: common.seed + run as u64 * 1000,
                    ..Default::default()
                };
                let mut method = build(kind, &params);
                let results = run_timed(method.as_mut(), snaps);
                samples.push(total_seconds(&results));
            }
            let mean = stats::mean(&samples);
            if kind == MethodKind::GloDyNE {
                glodyne_row.push(mean);
            } else {
                min_other[di] = min_other[di].min(mean);
            }
            print!("{:<12.3}", mean);
        }
        println!();
    }

    // Dataset-size footer as in the paper.
    print!("{:<16}", "# nodes (all t)");
    for d in &datasets {
        print!("{:<12}", d.network.totals().0);
    }
    println!();
    print!("{:<16}", "# edges (all t)");
    for d in &datasets {
        print!("{:<12}", d.network.totals().1);
    }
    println!();

    let wins = glodyne_row
        .iter()
        .zip(&min_other)
        .filter(|(g, o)| g < o)
        .count();
    println!(
        "\nShape check vs paper (GloDyNE fastest everywhere): fastest on {wins}/{} datasets",
        datasets.len()
    );
}
