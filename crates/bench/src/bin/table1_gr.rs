//! Table 1: MeanP@k graph reconstruction, 7 methods × 6 datasets.
//!
//! Reports MeanP@{1,5,10,20,40} (in %) averaged over all time steps and
//! over `--runs` independent runs, with the paper's n/a cells (DynLINE
//! and tNE on node-deleting datasets) and significance markers.
//!
//! Run: `cargo run -p glodyne-bench --release --bin table1_gr
//!       [--scale 0.25] [--runs 3] [--dim 64] [--seed 42]`

use glodyne_baselines::supports_node_deletions;
use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::gr_mean_over_time;
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::{has_node_deletions, run_timed};
use glodyne_bench::table::{render, Cell};

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let ks = [1usize, 5, 10, 20, 40];

    let datasets = glodyne_datasets::standard_suite(common.scale, common.seed);
    let methods = MethodKind::comparative();
    let col_labels: Vec<&str> = datasets.iter().map(|d| d.name).collect();
    let row_labels: Vec<&str> = methods.iter().map(|m| m.label()).collect();

    // cells[k_index][method][dataset]
    let mut cells: Vec<Vec<Vec<Cell>>> =
        vec![vec![vec![Cell::NotApplicable; datasets.len()]; methods.len()]; ks.len()];

    for (di, dataset) in datasets.iter().enumerate() {
        let snaps = dataset.network.snapshots();
        let deletions = has_node_deletions(snaps);
        for (mi, &kind) in methods.iter().enumerate() {
            if deletions && !supports_node_deletions(kind.label()) {
                continue; // stays n/a
            }
            let mut samples: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
            for run in 0..common.runs {
                let params = MethodParams {
                    dim: common.dim,
                    seed: common.seed + run as u64 * 1000,
                    ..Default::default()
                };
                let mut method = build(kind, &params);
                let results = run_timed(method.as_mut(), snaps);
                let scores = gr_mean_over_time(&results, snaps, &ks);
                for (s, v) in samples.iter_mut().zip(scores) {
                    s.push(v * 100.0);
                }
            }
            for (ki, s) in samples.into_iter().enumerate() {
                cells[ki][mi][di] = Cell::Runs(s);
            }
            eprintln!("done: {} on {}", kind.label(), dataset.name);
        }
    }

    for (ki, &k) in ks.iter().enumerate() {
        println!(
            "\n{}",
            render(
                &format!("Table 1 — MeanP@{k} (%) graph reconstruction"),
                &row_labels,
                &col_labels,
                &cells[ki],
            )
        );
    }
    println!("Shape check vs paper: GloDyNE should be best (or near-best) in most cells.");
}
