//! Figure 5: embedding-evolution visualisation, GloDyNE vs SGNS-retrain
//! on the Elec analogue over six consecutive time steps.
//!
//! The paper's figure shows GloDyNE keeping both relative *and absolute*
//! positions of the 2-D PCA projection across steps, while SGNS-retrain
//! rotates arbitrarily. We print the per-step 2-D PCA coordinates (first
//! few nodes) and quantify the claim with two metrics per transition:
//! the optimal rigid-rotation angle between consecutive projections and
//! the mean absolute drift in the full embedding space.
//!
//! Run: `cargo run -p glodyne-bench --release --bin fig5_visual
//!       [--scale 0.25] [--dim 64] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::run_timed;
use glodyne_tasks::stability::{absolute_drift, project_2d, rotation_angle_2d};

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let dataset = glodyne_datasets::elec(common.scale, common.seed + 3);
    let snaps = dataset.network.snapshots();
    let window = 8..(8 + 6).min(snaps.len()); // steps 8..13 as in the figure

    let mut summaries = Vec::new();
    for kind in [MethodKind::GloDyNE, MethodKind::SgnsRetrain] {
        let params = MethodParams {
            dim: common.dim,
            seed: common.seed,
            ..Default::default()
        };
        let mut method = build(kind, &params);
        let results = run_timed(method.as_mut(), snaps);

        println!(
            "\n# Figure 5 — {} on Elec, steps {:?}",
            kind.label(),
            window
        );
        let mut prev_proj: Option<(Vec<glodyne_graph::NodeId>, glodyne_linalg::Matrix)> = None;
        let mut angles = Vec::new();
        let mut drifts = Vec::new();
        for t in window.clone() {
            let emb = &results[t].embedding;
            let (ids, proj) = project_2d(emb, common.seed);
            print!("t={t}: ");
            for i in 0..3.min(ids.len()) {
                print!("{}:({:+.2},{:+.2}) ", ids[i], proj[(i, 0)], proj[(i, 1)]);
            }
            println!("... ({} nodes)", ids.len());
            if let Some((pids, pproj)) = &prev_proj {
                if let Some(theta) = rotation_angle_2d(pids, pproj, &ids, &proj) {
                    angles.push(theta.to_degrees());
                }
                if let Some(d) = absolute_drift(&results[t - 1].embedding, emb) {
                    drifts.push(d);
                }
            }
            prev_proj = Some((ids, proj));
        }
        let mean_angle = angles.iter().sum::<f64>() / angles.len().max(1) as f64;
        let mean_drift = drifts.iter().sum::<f64>() / drifts.len().max(1) as f64;
        println!("mean rotation between consecutive projections: {mean_angle:.1} deg");
        println!("mean absolute drift in embedding space: {mean_drift:.4}");
        summaries.push((kind.label(), mean_angle, mean_drift));
    }

    let (g, r) = (&summaries[0], &summaries[1]);
    println!(
        "\nshape: GloDyNE drift {:.4} < retrain drift {:.4}: {}",
        g.2,
        r.2,
        if g.2 < r.2 { "PASS" } else { "FAIL" }
    );
    println!(
        "shape: GloDyNE rotation {:.1} deg <= retrain rotation {:.1} deg: {}",
        g.1,
        r.1,
        if g.1 <= r.1 + 1.0 { "PASS" } else { "FAIL" }
    );
}
