//! Sharded-session benchmark: ingest throughput, step cost, and
//! fan-out `nearest` quality at 1/2/4 shards on a clustered
//! 10k-node event stream.
//!
//! Why sharding speeds up *ingest* even on one core: the epoch policy
//! counts events per shard, so each commit re-trains only the shard
//! the events landed in — `α·|V_shard|` selected nodes and a
//! shard-sized walk corpus instead of the whole graph. That is the
//! paper's §4.1.1 observation (sub-networks update independently)
//! turned into wall-clock: same number of commits, each ~`S`× cheaper,
//! minus routing overhead and cross-shard mirror duplication.
//!
//! Emits `BENCH_shard.json`: per shard count, ingest events/sec
//! (end-to-end: routing + training + rebalances), committed steps and
//! mean step wall-time, exact fan-out `nearest` q/s, per-shard-IVF
//! fan-out q/s, and recall@10 of the ANN fan-out against the exact
//! fan-out on the same embeddings. The single-session `nearest`
//! baseline lives in `BENCH_nearest.json` (`bench_nearest`).
//!
//! ```text
//! cargo run --release -p glodyne-bench --bin bench_shard
//! cargo run --release -p glodyne-bench --bin bench_shard -- \
//!     --nodes 10000 --events 30000 --every 2000 --out BENCH_shard.json
//! ```

use glodyne::{EmbedderSession, EpochPolicy, GloDyNE, GloDyNEConfig, IvfConfig};
use glodyne_bench::args::Args;
use glodyne_embed::walks::{splitmix64_next, WalkConfig};
use glodyne_embed::SgnsConfig;
use glodyne_graph::id::TimedEdge;
use glodyne_graph::NodeId;
use glodyne_shard::{ShardConfig, ShardedState};
use std::time::Instant;

const K: usize = 10;

/// A clustered edge-event stream: `events` edges over `nodes` nodes in
/// `communities` groups; ~95% of edges stay inside their community,
/// the rest bridge communities (the cut the partitioner will chase).
fn clustered_stream(nodes: u32, events: usize, communities: u32, seed: u64) -> Vec<TimedEdge> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || splitmix64_next(&mut state);
    let per_comm = nodes / communities;
    let mut stream = Vec::with_capacity(events);
    for i in 0..events {
        let c = (next() % u64::from(communities)) as u32;
        let base = c * per_comm;
        let u = base + (next() % u64::from(per_comm)) as u32;
        let v = if next() % 100 < 95 {
            base + (next() % u64::from(per_comm)) as u32
        } else {
            (next() % u64::from(nodes)) as u32
        };
        if u == v {
            continue;
        }
        stream.push(TimedEdge::new(NodeId(u), NodeId(v), (i / 64) as u64));
    }
    stream
}

fn session(shard: u64, every: usize, dim: usize, seed: u64) -> EmbedderSession<GloDyNE> {
    let cfg = GloDyNEConfig {
        alpha: 0.1,
        walk: WalkConfig {
            walks_per_node: 2,
            walk_length: 15,
            seed: seed.wrapping_add(shard),
        },
        sgns: SgnsConfig {
            dim,
            window: 5,
            negatives: 3,
            epochs: 1,
            parallel: false,
            seed: seed.wrapping_add(shard),
            ..Default::default()
        },
        ..Default::default()
    };
    let model = GloDyNE::new(cfg).expect("valid bench config");
    EmbedderSession::new(model, EpochPolicy::EveryNEvents(every))
        .expect("valid policy")
        .with_ann(IvfConfig {
            cells: 32,
            seed,
            ..Default::default()
        })
        .expect("valid ivf config")
}

struct ShardResult {
    shards: usize,
    ingest_secs: f64,
    ingest_eps: f64,
    steps: usize,
    mean_step_ms: f64,
    rebalances: u64,
    exact_qps: f64,
    ann_qps: f64,
    recall_at_10: f64,
}

#[allow(clippy::too_many_arguments)]
fn bench_one(
    shards: usize,
    stream: &[TimedEdge],
    nodes: u32,
    every: usize,
    dim: usize,
    queries: usize,
    nprobe: usize,
    seed: u64,
) -> ShardResult {
    let sessions = (0..shards)
        .map(|s| session(s as u64, every, dim, seed))
        .collect();
    let mut state = ShardedState::new(
        sessions,
        ShardConfig {
            shards,
            seed,
            ..Default::default()
        },
    )
    .expect("valid shard config");

    let start = Instant::now();
    state.ingest(stream);
    state.flush();
    let ingest_secs = start.elapsed().as_secs_f64();

    let steps = state.steps();
    let step_secs: f64 = state
        .sessions()
        .iter()
        .flat_map(|s| s.reports())
        .map(|r| r.total_time().as_secs_f64())
        .sum();

    // Queries spread across the node space; only probes with an owned
    // embedding count.
    let probes: Vec<NodeId> = (0..queries * 2)
        .map(|i| NodeId(((i as u64 * 97) % u64::from(nodes)) as u32))
        .filter(|&n| state.query(n).is_some())
        .take(queries)
        .collect();

    let start = Instant::now();
    let exact: Vec<Vec<(NodeId, f32)>> = probes.iter().map(|&p| state.nearest(p, K)).collect();
    let exact_secs = start.elapsed().as_secs_f64();

    // One warm-up query builds every shard's lazy index so the timed
    // loop measures probes, not builds.
    if let Some(&first) = probes.first() {
        state.nearest_approx(first, K, nprobe);
    }
    let start = Instant::now();
    let ann: Vec<Vec<(NodeId, f32)>> = probes
        .iter()
        .map(|&p| state.nearest_approx(p, K, nprobe))
        .collect();
    let ann_secs = start.elapsed().as_secs_f64();

    let mut overlap = 0usize;
    let mut expected = 0usize;
    for (e, a) in exact.iter().zip(&ann) {
        expected += e.len();
        overlap += e
            .iter()
            .filter(|(id, _)| a.iter().any(|(aid, _)| aid == id))
            .count();
    }

    ShardResult {
        shards,
        ingest_secs,
        ingest_eps: stream.len() as f64 / ingest_secs,
        steps,
        mean_step_ms: if steps > 0 {
            step_secs * 1e3 / steps as f64
        } else {
            0.0
        },
        rebalances: state.router().stats().rebalances,
        exact_qps: probes.len() as f64 / exact_secs,
        ann_qps: probes.len() as f64 / ann_secs,
        recall_at_10: overlap as f64 / expected.max(1) as f64,
    }
}

fn main() {
    let args = Args::from_env();
    let nodes: u32 = args.get("nodes", 10_000);
    let events: usize = args.get("events", 30_000);
    let communities: u32 = args.get("communities", 64);
    let every: usize = args.get("every", 2_000);
    let dim: usize = args.get("dim", 64);
    let queries: usize = args.get("queries", 100);
    let nprobe: usize = args.get("nprobe", 8);
    let seed: u64 = args.get("seed", 0);
    let out = args.get("out", "BENCH_shard.json".to_string());
    let raw_shards = args.get("shards", "1,2,4".to_string());
    let shard_counts: Vec<usize> = raw_shards
        .split(',')
        .map(|s| s.trim().parse().unwrap_or(0))
        .collect();
    if nodes == 0
        || events == 0
        || communities == 0
        || nodes < communities
        || every == 0
        || dim == 0
        || queries == 0
        || shard_counts.contains(&0)
    {
        eprintln!(
            "bench_shard: --nodes (>= --communities), --events, --communities, --every, \
             --dim, --queries, and every --shards entry must be positive integers \
             (got nodes={nodes} events={events} communities={communities} every={every} \
             dim={dim} queries={queries} shards={raw_shards})"
        );
        std::process::exit(2);
    }

    let stream = clustered_stream(nodes, events, communities, seed);
    let mut results = Vec::new();
    for &shards in &shard_counts {
        let r = bench_one(shards, &stream, nodes, every, dim, queries, nprobe, seed);
        println!(
            "shards={:<2} ingest={:>8.0} ev/s ({:>6.1}s)  steps={:>3} mean_step={:>7.1}ms  \
             rebalances={}  exact={:>7.0} q/s  ann={:>7.0} q/s  recall@10={:.4}",
            r.shards,
            r.ingest_eps,
            r.ingest_secs,
            r.steps,
            r.mean_step_ms,
            r.rebalances,
            r.exact_qps,
            r.ann_qps,
            r.recall_at_10,
        );
        results.push(r);
    }
    let base_eps = results
        .iter()
        .find(|r| r.shards == 1)
        .map_or(0.0, |r| r.ingest_eps);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"shard\",\n");
    json.push_str(&format!(
        "  \"nodes\": {nodes},\n  \"events\": {},\n  \"communities\": {communities},\n",
        stream.len()
    ));
    json.push_str(&format!(
        "  \"every\": {every},\n  \"dim\": {dim},\n  \"k\": {K},\n  \"queries\": {queries},\n"
    ));
    json.push_str(&format!(
        "  \"nprobe\": {nprobe},\n  \"seed\": {seed},\n  \
         \"single_session_nearest_baseline\": \"BENCH_nearest.json\",\n"
    ));
    json.push_str("  \"shards\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"ingest_events_per_sec\": {:.1}, \
             \"ingest_speedup_vs_1\": {:.2}, \"steps\": {}, \"mean_step_ms\": {:.1}, \
             \"rebalances\": {}, \"fanout_exact_qps\": {:.1}, \"fanout_ann_qps\": {:.1}, \
             \"recall_at_10\": {:.4}}}{}\n",
            r.shards,
            r.ingest_eps,
            if base_eps > 0.0 {
                r.ingest_eps / base_eps
            } else {
                0.0
            },
            r.steps,
            r.mean_step_ms,
            r.rebalances,
            r.exact_qps,
            r.ann_qps,
            r.recall_at_10,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
