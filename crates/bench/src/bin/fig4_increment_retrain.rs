//! Figure 4: SGNS-increment vs SGNS-retrain per-time-step MeanP@{10,40}
//! — the advantage of reusing the previous model (§5.3.2).
//!
//! Expected shape: increment ≥ retrain at most time steps on both the
//! AS733 and Elec analogues.
//!
//! The advantage of warm-starting needs |V| ≫ d (as in the paper's
//! setups: thousands of nodes, d = 128); at tiny scales a fresh random
//! init is competitive, so this binary defaults to a larger scale and a
//! smaller dimension than the table binaries.
//!
//! Run: `cargo run -p glodyne-bench --release --bin fig4_increment_retrain
//!       [--scale 0.6] [--runs 2] [--dim 32] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::gr_series;
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::run_timed;

fn main() {
    let args = Args::from_env();
    let mut common = Common::from(&args);
    common.scale = args.get("scale", 0.6);
    common.dim = args.get("dim", 32);

    for dataset in [
        glodyne_datasets::as733(common.scale, common.seed),
        glodyne_datasets::elec(common.scale, common.seed + 3),
    ] {
        let snaps = dataset.network.snapshots();
        for k in [10usize, 40] {
            println!("\n# Figure 4 — {} GR MeanP@{k} per time step", dataset.name);
            println!("{:<6}{:>16}{:>14}", "t", "SGNS-increment", "SGNS-retrain");
            let mut series: Vec<Vec<f64>> = Vec::new();
            for kind in [MethodKind::SgnsIncrement, MethodKind::SgnsRetrain] {
                let mut acc = vec![0.0; snaps.len()];
                for run in 0..common.runs {
                    let params = MethodParams {
                        dim: common.dim,
                        seed: common.seed + run as u64 * 1000,
                        ..Default::default()
                    };
                    let mut method = build(kind, &params);
                    let results = run_timed(method.as_mut(), snaps);
                    for (a, v) in acc.iter_mut().zip(gr_series(&results, snaps, k)) {
                        *a += v;
                    }
                }
                acc.iter_mut().for_each(|a| *a /= common.runs as f64);
                series.push(acc);
            }
            let mut wins = 0usize;
            for t in 0..snaps.len() {
                println!("{:<6}{:>16.4}{:>14.4}", t, series[0][t], series[1][t]);
                if series[0][t] >= series[1][t] {
                    wins += 1;
                }
            }
            println!(
                "shape: increment >= retrain at {wins}/{} steps (paper: increment wins overall): {}",
                snaps.len(),
                if wins * 2 >= snaps.len() { "PASS" } else { "FAIL" }
            );
        }
    }
}
