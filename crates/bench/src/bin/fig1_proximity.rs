//! Figure 1 b–c: proximity modifications per edge change.
//!
//! Reproduces the embedded table: for Elec, HepPh and FBW analogues,
//! `Δsp_all / |changed edges|` at the initial, middle and final snapshot
//! transitions — demonstrating that a single edge change modifies the
//! pairwise proximity structure of the whole network by a large amount.
//!
//! Run: `cargo run -p glodyne-bench --release --bin fig1_proximity
//!       [--scale 0.15] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_graph::traversal::proximity_modification;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    // All-pairs BFS is O(V^2); keep this analysis extra small.
    let scale = args.get("scale", 0.4);

    println!("# Figure 1 b-c: Δsp_all per changed edge (paper: Elec≈237, HepPh≈82, FBW≈20983 on full-size graphs)");
    println!(
        "{:<8}{:>16}{:>16}{:>16}{:>12}",
        "dataset", "initial", "middle", "final", "mean"
    );

    for dataset in [
        glodyne_datasets::elec(scale, common.seed),
        glodyne_datasets::hepph(scale, common.seed + 1),
        glodyne_datasets::fbw(scale, common.seed + 2),
    ] {
        let net = &dataset.network;
        let t_mid = net.len() / 2;
        let t_last = net.len() - 1;
        let mut row: Vec<f64> = Vec::new();
        let mut cells = Vec::new();
        for t in [1, t_mid, t_last] {
            let diff = net.diff_at(t);
            let changed = diff.num_changed_edges().max(1);
            let dsp = proximity_modification(net.snapshot(t - 1), net.snapshot(t));
            let per_edge = dsp as f64 / changed as f64;
            row.push(per_edge);
            cells.push(format!("{dsp}/{changed}≈{per_edge:.0}"));
        }
        let mean: f64 = row.iter().sum::<f64>() / row.len() as f64;
        println!(
            "{:<8}{:>16}{:>16}{:>16}{:>12.0}",
            dataset.name, cells[0], cells[1], cells[2], mean
        );
    }
    println!("\nShape check: every per-edge value should be >> 1, i.e. one edge");
    println!("change modifies many pairwise proximities via high-order effects.");
}
