//! Figure 1 d–f: the existence of inactive sub-networks.
//!
//! Partitions the largest snapshot of each dynamic network into
//! sub-networks of ~50 nodes (METIS-style, as in the paper), then counts
//! how many sub-networks experience no edge change for at least 5
//! consecutive time steps — the histogram of Figure 1 d–f.
//!
//! The paper uses 100 snapshots and ~50-node sub-networks on graphs of
//! thousands of nodes; scaled down, we use more/longer histories than
//! the embedding experiments (60 snapshots) and ~30-node sub-networks
//! so the count of sub-networks stays meaningful.
//!
//! Run: `cargo run -p glodyne-bench --release --bin fig1_inactive
//!       [--scale 1.0] [--steps 60] [--part-size 30] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_graph::NodeId;
use glodyne_partition::{partition, PartitionConfig};
use std::collections::HashMap;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let scale = args.get("scale", 1.0);
    let steps = args.get("steps", 60usize);
    let part_size = args.get("part-size", 30usize);

    println!("# Figure 1 d-f: inactive sub-networks (no change for >= 5 consecutive steps)");
    let named = [
        (
            "Elec",
            glodyne_datasets::growth::vote_network(scale, steps, common.seed),
        ),
        (
            "HepPh",
            glodyne_datasets::growth::coauthor_cliques(scale, steps, common.seed + 1),
        ),
        (
            "FBW",
            glodyne_datasets::community::wall_posts(scale, steps, common.seed + 2),
        ),
    ];
    for (name, net) in &named {
        let dataset_name = *name;
        // Largest snapshot (the paper partitions the largest one).
        let (t_big, big) = net
            .snapshots()
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.num_nodes())
            .unwrap();
        let k = (big.num_nodes() / part_size).max(2);
        let parts = partition(big, &PartitionConfig::with_k(k));
        let part_of: HashMap<NodeId, u32> = (0..big.num_nodes())
            .map(|l| (big.node_id(l), parts.assignment[l]))
            .collect();

        // Track per-part quiet streaks across all transitions.
        let mut quiet = vec![0usize; parts.k];
        let mut max_quiet = vec![0usize; parts.k];
        for t in 1..net.len() {
            let diff = net.diff_at(t);
            let mut touched = vec![false; parts.k];
            for e in diff.added.iter().chain(diff.removed.iter()) {
                for id in [e.u, e.v] {
                    if let Some(&p) = part_of.get(&id) {
                        touched[p as usize] = true;
                    }
                }
            }
            for p in 0..parts.k {
                if touched[p] {
                    quiet[p] = 0;
                } else {
                    quiet[p] += 1;
                    max_quiet[p] = max_quiet[p].max(quiet[p]);
                }
            }
        }

        // Histogram: #sub-networks whose longest quiet streak is >= s.
        let mut histogram: Vec<(usize, usize)> = Vec::new();
        for streak in [5usize, 8, 11, 14, 17, 20] {
            if streak >= net.len() {
                break;
            }
            let count = max_quiet.iter().filter(|&&q| q >= streak).count();
            histogram.push((streak, count));
        }
        println!(
            "\n{}: {} sub-networks (~{} nodes each) from largest snapshot t={}; {} snapshots",
            dataset_name,
            parts.k,
            part_size,
            t_big,
            net.len()
        );
        println!("{:<28}# inactive sub-networks", "quiet for >= s steps");
        for (streak, count) in &histogram {
            println!("{:<28}{}", streak, count);
        }
        let any_inactive = histogram.first().map(|&(_, c)| c).unwrap_or(0);
        println!(
            "shape check (paper: many sub-networks are inactive): {}",
            if any_inactive > 0 { "PASS" } else { "FAIL" }
        );
    }
}
