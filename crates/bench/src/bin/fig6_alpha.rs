//! Figure 6: the free hyper-parameter α — effectiveness (MeanP@k) and
//! efficiency (wall-clock) as α sweeps from 0.001 to 1.0 (§5.3.5).
//!
//! Expected shape: score rises steeply then saturates well below α=1;
//! time grows roughly linearly with α.
//!
//! Run: `cargo run -p glodyne-bench --release --bin fig6_alpha
//!       [--scale 0.25] [--runs 2] [--dim 64] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::{gr_mean_over_time, total_seconds};
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::run_timed;
use glodyne_tasks::stats;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let alphas = [0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];

    for dataset in [
        glodyne_datasets::as733(common.scale, common.seed),
        glodyne_datasets::elec(common.scale, common.seed + 3),
    ] {
        let snaps = dataset.network.snapshots();
        for k in [10usize, 40] {
            println!(
                "\n# Figure 6 — {} MeanP@{k} (%) and time (s) vs α",
                dataset.name
            );
            println!("{:<8}{:>12}{:>12}", "alpha", "MeanP@k%", "seconds");
            let mut scores = Vec::new();
            let mut times = Vec::new();
            for &alpha in &alphas {
                let mut s_samples = Vec::new();
                let mut t_samples = Vec::new();
                for run in 0..common.runs {
                    let params = MethodParams {
                        dim: common.dim,
                        alpha,
                        seed: common.seed + run as u64 * 1000,
                        ..Default::default()
                    };
                    let mut method = build(MethodKind::GloDyNE, &params);
                    let results = run_timed(method.as_mut(), snaps);
                    s_samples.push(gr_mean_over_time(&results, snaps, &[k])[0] * 100.0);
                    t_samples.push(total_seconds(&results));
                }
                let (s, t) = (stats::mean(&s_samples), stats::mean(&t_samples));
                println!("{:<8}{:>12.3}{:>12.3}", alpha, s, t);
                scores.push(s);
                times.push(t);
            }
            // Shape checks.
            let tiny = scores[0];
            let at_01 = scores[4];
            let full = *scores.last().unwrap();
            println!(
                "shape: score(α=0.1)={at_01:.2} within 10% of score(α=1.0)={full:.2}: {}",
                if at_01 >= full * 0.9 { "PASS" } else { "FAIL" }
            );
            println!(
                "shape: score(α=0.001)={tiny:.2} < score(α=1.0)={full:.2}: {}",
                if tiny < full { "PASS" } else { "FAIL" }
            );
            println!(
                "shape: time(α=1.0)={:.2}s > time(α=0.01)={:.2}s: {}",
                times.last().unwrap(),
                times[2],
                if times.last().unwrap() > &times[2] {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
        }
    }
}
