//! Figure 2: effectiveness (LP AUC) vs efficiency (wall-clock seconds)
//! scatter data — the "top-left corner is best" plots.
//!
//! Emits one `(method, dataset, seconds, auc)` record per point, plus a
//! JSON dump for external plotting.
//!
//! Run: `cargo run -p glodyne-bench --release --bin fig2_scatter
//!       [--scale 0.25] [--runs 2] [--dim 64] [--seed 42]`

use glodyne_baselines::supports_node_deletions;
use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::{lp_mean_over_time, total_seconds};
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::{has_node_deletions, run_timed};
use glodyne_tasks::stats;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let runs = args.get("runs", 2usize);

    let datasets = glodyne_datasets::standard_suite(common.scale, common.seed);
    let methods = MethodKind::comparative();

    println!("# Figure 2 — LP AUC vs wall-clock seconds (one point per method per dataset)");
    println!(
        "{:<12}{:<12}{:>12}{:>10}",
        "dataset", "method", "seconds", "auc%"
    );
    let mut json_points = Vec::new();
    for dataset in &datasets {
        let snaps = dataset.network.snapshots();
        let deletions = has_node_deletions(snaps);
        let mut best_auc = f64::MIN;
        let mut glodyne_point = (0.0, 0.0);
        let mut fastest = f64::INFINITY;
        for &kind in &methods {
            if deletions && !supports_node_deletions(kind.label()) {
                continue;
            }
            let mut secs = Vec::new();
            let mut aucs = Vec::new();
            for run in 0..runs {
                let params = MethodParams {
                    dim: common.dim,
                    seed: common.seed + run as u64 * 1000,
                    ..Default::default()
                };
                let mut method = build(kind, &params);
                let results = run_timed(method.as_mut(), snaps);
                secs.push(total_seconds(&results));
                aucs.push(lp_mean_over_time(&results, snaps, common.seed + run as u64) * 100.0);
            }
            let (s, a) = (stats::mean(&secs), stats::mean(&aucs));
            println!(
                "{:<12}{:<12}{:>12.3}{:>10.2}",
                dataset.name,
                kind.label(),
                s,
                a
            );
            json_points.push(format!(
                "{{\"dataset\":\"{}\",\"method\":\"{}\",\"seconds\":{s:.4},\"auc\":{a:.3}}}",
                dataset.name,
                kind.label()
            ));
            best_auc = best_auc.max(a);
            fastest = fastest.min(s);
            if kind == MethodKind::GloDyNE {
                glodyne_point = (s, a);
            }
        }
        let top_left = glodyne_point.0 <= fastest * 1.05 && glodyne_point.1 >= best_auc - 5.0;
        println!(
            "  -> GloDyNE at ({:.2}s, {:.1}%): {}",
            glodyne_point.0,
            glodyne_point.1,
            if top_left {
                "top-left region (paper shape holds)"
            } else {
                "check: expected near the top-left corner"
            }
        );
    }
    println!("\nJSON: [{}]", json_points.join(","));
}
