//! Tables 1, 2 and 4 from a single sweep: each (method, dataset, run)
//! embedding sequence is computed once and scored for graph
//! reconstruction (Table 1), link prediction (Table 2) and wall-clock
//! time (Table 4) simultaneously — the tables share the embedding runs
//! in the paper too.
//!
//! Run: `cargo run -p glodyne-bench --release --bin tables_all
//!       [--scale 0.2] [--runs 2] [--dim 64] [--seed 42]`

use glodyne_baselines::supports_node_deletions;
use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::{gr_mean_over_time, lp_mean_over_time, total_seconds};
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::{has_node_deletions, run_timed};
use glodyne_bench::table::{render, Cell};

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);
    let scale = args.get("scale", 0.2);
    let ks = [1usize, 5, 10, 20, 40];

    let datasets = glodyne_datasets::standard_suite(scale, common.seed);
    let methods = MethodKind::comparative();
    let col_labels: Vec<&str> = datasets.iter().map(|d| d.name).collect();
    let row_labels: Vec<&str> = methods.iter().map(|m| m.label()).collect();

    let na_row = || vec![Cell::NotApplicable; datasets.len()];
    let mut gr_cells: Vec<Vec<Vec<Cell>>> = vec![vec![na_row(); methods.len()]; ks.len()];
    let mut lp_cells: Vec<Vec<Cell>> = vec![na_row(); methods.len()];
    let mut time_cells: Vec<Vec<Cell>> = vec![na_row(); methods.len()];

    for (di, dataset) in datasets.iter().enumerate() {
        let snaps = dataset.network.snapshots();
        let deletions = has_node_deletions(snaps);
        for (mi, &kind) in methods.iter().enumerate() {
            if deletions && !supports_node_deletions(kind.label()) {
                continue;
            }
            let mut gr_samples: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
            let mut lp_samples = Vec::new();
            let mut time_samples = Vec::new();
            for run in 0..common.runs {
                let params = MethodParams {
                    dim: common.dim,
                    seed: common.seed + run as u64 * 1000,
                    ..Default::default()
                };
                let mut method = build(kind, &params);
                let results = run_timed(method.as_mut(), snaps);
                let gr = gr_mean_over_time(&results, snaps, &ks);
                for (s, v) in gr_samples.iter_mut().zip(gr) {
                    s.push(v * 100.0);
                }
                lp_samples
                    .push(lp_mean_over_time(&results, snaps, common.seed + run as u64) * 100.0);
                time_samples.push(total_seconds(&results));
            }
            for (ki, s) in gr_samples.into_iter().enumerate() {
                gr_cells[ki][mi][di] = Cell::Runs(s);
            }
            lp_cells[mi][di] = Cell::Runs(lp_samples);
            time_cells[mi][di] = Cell::Runs(time_samples);
            eprintln!("done: {} on {}", kind.label(), dataset.name);
        }
    }

    for (ki, &k) in ks.iter().enumerate() {
        println!(
            "\n{}",
            render(
                &format!("Table 1 — MeanP@{k} (%) graph reconstruction"),
                &row_labels,
                &col_labels,
                &gr_cells[ki],
            )
        );
    }
    println!(
        "\n{}",
        render(
            "Table 2 — link prediction AUC (%)",
            &row_labels,
            &col_labels,
            &lp_cells,
        )
    );
    println!(
        "\n{}",
        render(
            "Table 4 — wall-clock seconds (embedding only, all time steps)",
            &row_labels,
            &col_labels,
            &time_cells,
        )
    );
    print!("{:<16}", "# nodes (all t)");
    for d in &datasets {
        print!("{:<12}", d.network.totals().0);
    }
    println!();
    print!("{:<16}", "# edges (all t)");
    for d in &datasets {
        print!("{:<12}", d.network.totals().1);
    }
    println!();

    // Shape checks.
    let glodyne_row = methods
        .iter()
        .position(|&m| m == MethodKind::GloDyNE)
        .unwrap();
    let mut gr_wins = 0;
    let mut cells_total = 0;
    for ki in 0..ks.len() {
        for di in 0..datasets.len() {
            let Some(g) = gr_cells[ki][glodyne_row][di].mean() else {
                continue;
            };
            cells_total += 1;
            let best_other = (0..methods.len())
                .filter(|&mi| mi != glodyne_row)
                .filter_map(|mi| gr_cells[ki][mi][di].mean())
                .fold(f64::MIN, f64::max);
            if g >= best_other {
                gr_wins += 1;
            }
        }
    }
    println!(
        "\nshape (Table 1, paper: GloDyNE best in 28/30 cells): best in {gr_wins}/{cells_total}"
    );
    // Table 4's absolute row order in the paper compares the *released
    // implementations* (Python/TF/MATLAB, where GloDyNE's gensim core is
    // the only optimised one); all methods here share one Rust substrate,
    // so the like-for-like claim is GloDyNE vs the other walk-based
    // method (tNE does full walks + static SGNS per step plus an RNN).
    let tne_row = methods.iter().position(|&m| m == MethodKind::Tne).unwrap();
    let mut faster_than_tne = 0;
    let mut comparable = 0;
    for di in 0..datasets.len() {
        let (Some(g), Some(t)) = (
            time_cells[glodyne_row][di].mean(),
            time_cells[tne_row][di].mean(),
        ) else {
            continue;
        };
        comparable += 1;
        if g < t {
            faster_than_tne += 1;
        }
    }
    println!(
        "shape (Table 4, paper: GloDyNE much faster than the other walk-based \
         method): faster than tNE on {faster_than_tne}/{comparable} datasets"
    );
    println!(
        "note: absolute row order vs the matrix baselines is implementation-bound \
         (all methods share one optimised Rust substrate here; the paper compares \
         heterogeneous released codebases)."
    );
}
