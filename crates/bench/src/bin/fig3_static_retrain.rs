//! Figure 3: SGNS-static vs SGNS-retrain per-time-step MeanP@{10,40} on
//! the AS733 and Elec analogues — the necessity of dynamic embedding.
//!
//! Expected shape (§5.3.1): retrain holds a high level at every step;
//! static collapses (sharply on AS733, whose topology churns; gradually
//! on Elec).
//!
//! Run: `cargo run -p glodyne-bench --release --bin fig3_static_retrain
//!       [--scale 0.25] [--runs 2] [--dim 64] [--seed 42]`

use glodyne_bench::args::{Args, Common};
use glodyne_bench::eval::gr_series;
use glodyne_bench::methods::{build, MethodKind, MethodParams};
use glodyne_bench::runner::run_timed;

fn main() {
    let args = Args::from_env();
    let common = Common::from(&args);

    for dataset in [
        glodyne_datasets::as733(common.scale, common.seed),
        glodyne_datasets::elec(common.scale, common.seed + 3),
    ] {
        let snaps = dataset.network.snapshots();
        for k in [10usize, 40] {
            println!("\n# Figure 3 — {} GR MeanP@{k} per time step", dataset.name);
            println!("{:<6}{:>14}{:>14}", "t", "SGNS-static", "SGNS-retrain");
            let mut series: Vec<Vec<f64>> = Vec::new();
            for kind in [MethodKind::SgnsStatic, MethodKind::SgnsRetrain] {
                let mut acc = vec![0.0; snaps.len()];
                for run in 0..common.runs {
                    let params = MethodParams {
                        dim: common.dim,
                        seed: common.seed + run as u64 * 1000,
                        ..Default::default()
                    };
                    let mut method = build(kind, &params);
                    let results = run_timed(method.as_mut(), snaps);
                    for (a, v) in acc.iter_mut().zip(gr_series(&results, snaps, k)) {
                        *a += v;
                    }
                }
                acc.iter_mut().for_each(|a| *a /= common.runs as f64);
                series.push(acc);
            }
            for t in 0..snaps.len() {
                println!("{:<6}{:>14.4}{:>14.4}", t, series[0][t], series[1][t]);
            }
            // Shape checks.
            let static_last = series[0].last().copied().unwrap_or(0.0);
            let retrain_last = series[1].last().copied().unwrap_or(0.0);
            let static_first = series[0][0];
            println!(
                "shape: retrain_final {retrain_last:.3} > static_final {static_last:.3}: {}",
                if retrain_last > static_last {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
            println!(
                "shape: static degrades from t=0 ({static_first:.3} -> {static_last:.3}): {}",
                if static_last < static_first {
                    "PASS"
                } else {
                    "FAIL"
                }
            );
        }
    }
}
