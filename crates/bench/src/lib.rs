//! Experiment harness shared by the per-table/per-figure binaries.
//!
//! - [`args`] — a tiny `--key value` CLI parser (no external deps).
//! - [`legacy`] — the pre-refactor walk→SGNS pipeline, frozen as the
//!   baseline for old-vs-new throughput benchmarks.
//! - [`methods`] — the method factory: every embedder of §5.1.2 plus
//!   the §5.3 variants behind one constructor, with harness-wide
//!   defaults scaled for laptop runs.
//! - [`runner`] — drives a method over a snapshot sequence, recording
//!   per-step wall-clock time (embedding only, excluding downstream
//!   tasks — the Table 4 protocol).
//! - [`table`] — plain-text table printing with mean ± std cells and
//!   the paper's significance markers.

pub mod args;
pub mod eval;
pub mod legacy;
pub mod methods;
pub mod runner;
pub mod table;
