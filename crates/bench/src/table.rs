//! Plain-text table rendering with mean ± std cells and the paper's
//! significance markers († p<0.05, ‡ p<0.01 between the two best rows).

use glodyne_tasks::stats;

/// A table cell: the per-run samples of one (method, column) pair, or
/// n/a.
#[derive(Debug, Clone, Default)]
pub enum Cell {
    /// Method not applicable (paper's "n/a").
    #[default]
    NotApplicable,
    /// Samples across runs (percent or raw — caller's choice).
    Runs(Vec<f64>),
}

impl Cell {
    /// Mean over the runs, `None` if n/a.
    pub fn mean(&self) -> Option<f64> {
        match self {
            Cell::NotApplicable => None,
            Cell::Runs(v) => Some(stats::mean(v)),
        }
    }
}

/// Render a table: rows = methods, columns = datasets/settings. Adds
/// the paper's `†`/`‡` marker to the best cell of each column when the
/// best-vs-second-best t-test is significant, and bolds nothing (plain
/// text) but flags best with `*`.
pub fn render(
    title: &str,
    row_labels: &[&str],
    col_labels: &[&str],
    cells: &[Vec<Cell>],
) -> String {
    assert_eq!(cells.len(), row_labels.len());
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let width = 22;
    out.push_str(&format!("{:<16}", ""));
    for c in col_labels {
        out.push_str(&format!("{c:<width$}"));
    }
    out.push('\n');

    // Best and second-best per column (by mean).
    let ncols = col_labels.len();
    let mut best_rows: Vec<Option<usize>> = vec![None; ncols];
    let mut second_rows: Vec<Option<usize>> = vec![None; ncols];
    for col in 0..ncols {
        let mut ranked: Vec<(usize, f64)> = cells
            .iter()
            .enumerate()
            .filter_map(|(r, row)| row[col].mean().map(|m| (r, m)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        best_rows[col] = ranked.first().map(|&(r, _)| r);
        second_rows[col] = ranked.get(1).map(|&(r, _)| r);
    }

    for (r, label) in row_labels.iter().enumerate() {
        out.push_str(&format!("{label:<16}"));
        for (col, cell) in cells[r].iter().enumerate() {
            let text = match cell {
                Cell::NotApplicable => "n/a".to_string(),
                Cell::Runs(v) => {
                    let m = stats::mean(v);
                    let s = stats::std_dev(v);
                    let mut t = format!("{m:>7.2}±{s:.2}");
                    if best_rows[col] == Some(r) {
                        t.push('*');
                        if let (Some(b), Some(sec)) = (best_rows[col], second_rows[col]) {
                            if let (Cell::Runs(bv), Cell::Runs(sv)) =
                                (&cells[b][col], &cells[sec][col])
                            {
                                t.push_str(stats::significance_marker(bv, sv));
                            }
                        }
                    }
                    t
                }
            };
            out.push_str(&format!("{text:<width$}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_best_marker_and_na() {
        let cells = vec![
            vec![Cell::Runs(vec![10.0, 10.1, 9.9, 10.0])],
            vec![Cell::Runs(vec![50.0, 50.2, 49.8, 50.0])],
            vec![Cell::NotApplicable],
        ];
        let s = render("T", &["low", "high", "na"], &["D"], &cells);
        assert!(s.contains("n/a"));
        // best row flagged and strongly significant
        assert!(s.contains("50.00±0.16*‡") || s.contains('*'), "{s}");
    }

    #[test]
    fn mean_of_na_is_none() {
        assert_eq!(Cell::NotApplicable.mean(), None);
        assert_eq!(Cell::Runs(vec![2.0, 4.0]).mean(), Some(3.0));
    }
}
