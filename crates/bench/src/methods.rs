//! Method factory: all embedders behind one constructor.

use glodyne::variants::VariantConfig;
use glodyne::{GloDyNE, GloDyNEConfig, SgnsIncrement, SgnsRetrain, SgnsStatic, Strategy};
use glodyne_baselines::{
    bcgd::BcgdConfig, dyngem::DynGemConfig, dynline::DynLineConfig, dyntriad::DynTriadConfig,
    tne::TneConfig, BcgdGlobal, BcgdLocal, DynGem, DynLine, DynTriad, TNE,
};
use glodyne_embed::config::ConfigError;
use glodyne_embed::traits::DynamicEmbedder;
use glodyne_embed::walks::WalkConfig;
use glodyne_embed::SgnsConfig;

/// All method identities of the paper's comparison (§5.1.2) and the
/// §5.3 variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// BCGD-global \[9\].
    BcgdG,
    /// BCGD-local \[9\].
    BcgdL,
    /// DynGEM \[11\].
    DynGem,
    /// DynLINE \[14\].
    DynLine,
    /// DynTriad \[15\].
    DynTriad,
    /// tNE \[18\].
    Tne,
    /// GloDyNE (this paper), strategy S4.
    GloDyNE,
    /// SGNS-static variant (§5.3.1).
    SgnsStatic,
    /// SGNS-retrain variant (§5.3.1).
    SgnsRetrain,
    /// SGNS-increment variant (§5.3.2).
    SgnsIncrement,
}

impl MethodKind {
    /// The seven methods of the comparative tables, in the paper's row
    /// order.
    pub fn comparative() -> [MethodKind; 7] {
        [
            MethodKind::BcgdG,
            MethodKind::BcgdL,
            MethodKind::DynGem,
            MethodKind::DynLine,
            MethodKind::DynTriad,
            MethodKind::Tne,
            MethodKind::GloDyNE,
        ]
    }

    /// Table-row label.
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::BcgdG => "BCGDg",
            MethodKind::BcgdL => "BCGDl",
            MethodKind::DynGem => "DynGEM",
            MethodKind::DynLine => "DynLINE",
            MethodKind::DynTriad => "DynTriad",
            MethodKind::Tne => "tNE",
            MethodKind::GloDyNE => "GloDyNE",
            MethodKind::SgnsStatic => "SGNS-static",
            MethodKind::SgnsRetrain => "SGNS-retrain",
            MethodKind::SgnsIncrement => "SGNS-increment",
        }
    }
}

/// Harness-wide method parameters (a laptop-scaled version of §5.1.2:
/// the paper uses d=128, r=10, l=80, s=10, q=5).
#[derive(Debug, Clone)]
pub struct MethodParams {
    /// Embedding dimensionality for every method.
    pub dim: usize,
    /// Walks per node `r`.
    pub walks_per_node: usize,
    /// Walk length `l`.
    pub walk_length: usize,
    /// Window size `s`.
    pub window: usize,
    /// Negative samples `q`.
    pub negatives: usize,
    /// GloDyNE's α.
    pub alpha: f64,
    /// GloDyNE's selection strategy.
    pub strategy: Strategy,
    /// Seed.
    pub seed: u64,
}

impl Default for MethodParams {
    fn default() -> Self {
        MethodParams {
            dim: 64,
            walks_per_node: 6,
            walk_length: 40,
            window: 6,
            negatives: 5,
            alpha: 0.1,
            strategy: Strategy::S4,
            seed: 0,
        }
    }
}

impl MethodParams {
    /// Walk config derived from the shared parameters.
    pub fn walk(&self) -> WalkConfig {
        WalkConfig {
            walks_per_node: self.walks_per_node,
            walk_length: self.walk_length,
            seed: self.seed,
        }
    }

    /// SGNS config derived from the shared parameters.
    pub fn sgns(&self) -> SgnsConfig {
        SgnsConfig {
            dim: self.dim,
            window: self.window,
            negatives: self.negatives,
            epochs: 2,
            seed: self.seed,
            parallel: true,
            ..Default::default()
        }
    }

    /// GloDyNE config derived from the shared parameters.
    pub fn glodyne(&self) -> GloDyNEConfig {
        GloDyNEConfig {
            alpha: self.alpha,
            epsilon: 0.1,
            walk: self.walk(),
            sgns: self.sgns(),
            strategy: self.strategy,
            seed: self.seed,
        }
    }

    fn variant(&self) -> VariantConfig {
        VariantConfig {
            walk: self.walk(),
            sgns: self.sgns(),
        }
    }
}

/// Instantiate a method; invalid harness parameters surface as a
/// [`ConfigError`] instead of a panic.
pub fn try_build(
    kind: MethodKind,
    p: &MethodParams,
) -> Result<Box<dyn DynamicEmbedder>, ConfigError> {
    Ok(match kind {
        MethodKind::GloDyNE => Box::new(GloDyNE::new(p.glodyne())?),
        MethodKind::SgnsStatic => Box::new(SgnsStatic::new(p.variant())?),
        MethodKind::SgnsRetrain => Box::new(SgnsRetrain::new(p.variant())?),
        MethodKind::SgnsIncrement => Box::new(SgnsIncrement::new(p.variant())?),
        MethodKind::BcgdG => Box::new(BcgdGlobal::new(BcgdConfig {
            dim: p.dim,
            iterations: 8,
            global_cycles: 1,
            seed: p.seed,
            ..Default::default()
        })?),
        MethodKind::BcgdL => Box::new(BcgdLocal::new(BcgdConfig {
            dim: p.dim,
            seed: p.seed,
            ..Default::default()
        })?),
        MethodKind::DynGem => Box::new(DynGem::new(DynGemConfig {
            dim: p.dim,
            hidden: (2 * p.dim).max(32),
            // generous for the laptop-scale analogues; the real DynGEM
            // hits GPU OOM at the paper's HepPh/FBW sizes (n/a cells)
            capacity: 1024,
            epochs: 3,
            seed: p.seed,
            ..Default::default()
        })?),
        MethodKind::DynLine => Box::new(DynLine::new(DynLineConfig {
            dim: p.dim,
            negatives: p.negatives,
            seed: p.seed,
            ..Default::default()
        })?),
        MethodKind::DynTriad => Box::new(DynTriad::new(DynTriadConfig {
            dim: p.dim,
            negatives: p.negatives,
            seed: p.seed,
            ..Default::default()
        })?),
        MethodKind::Tne => Box::new(TNE::new(TneConfig {
            static_dim: p.dim,
            hidden: p.dim,
            dim: p.dim,
            walk: p.walk(),
            sgns: p.sgns(),
            rnn_samples: 150,
            seed: p.seed,
            ..Default::default()
        })?),
    })
}

/// Instantiate a method from known-good harness parameters (the
/// table/figure binaries' fixed configurations).
pub fn build(kind: MethodKind, p: &MethodParams) -> Box<dyn DynamicEmbedder> {
    try_build(kind, p).expect("harness method parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_buildable_with_distinct_names() {
        let p = MethodParams {
            dim: 8,
            ..Default::default()
        };
        let mut names = std::collections::HashSet::new();
        for kind in [
            MethodKind::BcgdG,
            MethodKind::BcgdL,
            MethodKind::DynGem,
            MethodKind::DynLine,
            MethodKind::DynTriad,
            MethodKind::Tne,
            MethodKind::GloDyNE,
            MethodKind::SgnsStatic,
            MethodKind::SgnsRetrain,
            MethodKind::SgnsIncrement,
        ] {
            let m = build(kind, &p);
            assert_eq!(m.name(), kind.label());
            names.insert(m.name());
        }
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn try_build_rejects_bad_params_for_every_method() {
        let bad = MethodParams {
            dim: 0,
            ..Default::default()
        };
        for kind in [
            MethodKind::BcgdG,
            MethodKind::BcgdL,
            MethodKind::DynGem,
            MethodKind::DynLine,
            MethodKind::DynTriad,
            MethodKind::Tne,
            MethodKind::GloDyNE,
            MethodKind::SgnsStatic,
            MethodKind::SgnsRetrain,
            MethodKind::SgnsIncrement,
        ] {
            assert!(try_build(kind, &bad).is_err(), "{kind:?} accepted dim=0");
        }
    }
}
