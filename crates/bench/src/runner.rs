//! Drives methods over snapshot sequences with per-step timing.

use glodyne_embed::traits::{step_with, DynamicEmbedder, StepReport};
use glodyne_embed::Embedding;
use glodyne_graph::Snapshot;
use std::time::Instant;

/// One time step's output: embedding, wall-clock seconds spent
/// obtaining it (embedding only — downstream-task time is excluded, as
/// in Table 4), and the method's own structured report.
pub struct StepResult {
    /// `Z^t`.
    pub embedding: Embedding,
    /// Seconds spent in the embedding step (includes the diff
    /// computation the harness performs on the method's behalf).
    pub seconds: f64,
    /// The method's structured step report.
    pub report: StepReport,
}

/// Run a method across a snapshot sequence.
pub fn run_timed(method: &mut dyn DynamicEmbedder, snapshots: &[Snapshot]) -> Vec<StepResult> {
    let mut out = Vec::with_capacity(snapshots.len());
    let mut prev: Option<&Snapshot> = None;
    for snap in snapshots {
        let t = Instant::now();
        let report = step_with(method, prev, snap);
        let seconds = t.elapsed().as_secs_f64();
        out.push(StepResult {
            embedding: method.embedding(),
            seconds,
            report,
        });
        prev = Some(snap);
    }
    out
}

/// Whether a snapshot sequence contains node deletions (the condition
/// under which DynLINE and tNE are n/a in the paper's tables).
pub fn has_node_deletions(snapshots: &[Snapshot]) -> bool {
    snapshots.windows(2).any(|w| {
        w[0].node_ids()
            .iter()
            .any(|id| w[1].local_of(*id).is_none())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::id::{Edge, NodeId};

    struct Noop;
    impl DynamicEmbedder for Noop {
        fn step(&mut self, _ctx: glodyne_embed::traits::StepContext<'_>) -> StepReport {
            StepReport::default()
        }
        fn embedding(&self) -> Embedding {
            Embedding::new(2)
        }
        fn name(&self) -> &'static str {
            "noop"
        }
    }

    #[test]
    fn run_timed_counts_steps() {
        let s = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let results = run_timed(&mut Noop, &[s.clone(), s]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.seconds >= 0.0));
    }

    #[test]
    fn detects_deletions() {
        let a = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(1))], &[]);
        let b = Snapshot::from_edges(&[Edge::new(NodeId(0), NodeId(2))], &[]);
        assert!(has_node_deletions(&[a.clone(), b]));
        assert!(!has_node_deletions(&[a.clone(), a]));
    }
}
