//! The pre-refactor SGNS training pipeline, frozen verbatim as the
//! baseline for old-vs-new throughput comparisons.
//!
//! This is the hot path as it stood before the flat-corpus refactor:
//! walks arrive as `Vec<Vec<NodeId>>`, every token is re-interned
//! through a `HashMap` and the corpus is re-materialised as
//! `Vec<Vec<u32>>`, the learning-rate schedule pays one atomic
//! `fetch_add` per pair, every walk allocates its own gradient buffer
//! and seeds a ChaCha8 stream for negative sampling, and the sigmoid is
//! computed with `exp()` per sample. Production code should use
//! [`glodyne_embed::SgnsModel::train_corpus`]; this module exists so
//! `benches/micro.rs` and the scale test can keep measuring the real
//! historical baseline instead of a shim over the new engine.

use glodyne_embed::alias::AliasTable;
use glodyne_embed::pairs;
use glodyne_embed::{Embedding, SgnsConfig};
use glodyne_graph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The historical SGNS model: identical hyper-parameters and
/// initialisation to [`glodyne_embed::SgnsModel`], original training
/// loop.
pub struct LegacySgnsModel {
    cfg: SgnsConfig,
    vocab: HashMap<NodeId, u32>,
    ids: Vec<NodeId>,
    input: Vec<f32>,
    output: Vec<f32>,
    counts: Vec<u64>,
    init_rng: ChaCha8Rng,
}

impl LegacySgnsModel {
    /// Fresh model with an empty vocabulary.
    pub fn new(cfg: SgnsConfig) -> Self {
        let init_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xD1F3_5A7E);
        LegacySgnsModel {
            cfg,
            vocab: HashMap::new(),
            ids: Vec::new(),
            input: Vec::new(),
            output: Vec::new(),
            counts: Vec::new(),
            init_rng,
        }
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.ids.len()
    }

    fn intern(&mut self, id: NodeId) -> u32 {
        if let Some(&i) = self.vocab.get(&id) {
            return i;
        }
        let i = self.ids.len() as u32;
        self.vocab.insert(id, i);
        self.ids.push(id);
        let d = self.cfg.dim;
        let half = 0.5 / d as f32;
        for _ in 0..d {
            self.input.push(self.init_rng.gen_range(-half..half));
        }
        self.output.extend(std::iter::repeat_n(0.0, d));
        self.counts.push(0);
        i
    }

    /// The original `SgnsModel::train`, verbatim.
    pub fn train(&mut self, walks: &[Vec<NodeId>]) -> usize {
        if walks.is_empty() {
            return 0;
        }
        self.counts.iter_mut().for_each(|c| *c = 0);
        let indexed: Vec<Vec<u32>> = walks
            .iter()
            .map(|walk| {
                walk.iter()
                    .map(|&id| {
                        let i = self.intern(id);
                        self.counts[i as usize] += 1;
                        i
                    })
                    .collect()
            })
            .collect();

        let weights: Vec<f64> = self.counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let negative_table = AliasTable::new(&weights);

        let total_pairs: usize = indexed
            .iter()
            .map(|w| pairs::pair_count(w.len(), self.cfg.window))
            .sum::<usize>()
            * self.cfg.epochs;
        if total_pairs == 0 {
            return 0;
        }

        let shared = SharedWeights {
            input: UnsafeCell::new(std::mem::take(&mut self.input)),
            output: UnsafeCell::new(std::mem::take(&mut self.output)),
        };
        let progress = AtomicUsize::new(0);
        let cfg = &self.cfg;
        let dim = cfg.dim;
        let shared_ref: &SharedWeights = &shared;

        let run_walk = |epoch: usize, wi: usize, walk: &Vec<u32>| {
            // SAFETY: Hogwild, as in the production engine.
            let input = unsafe { &mut *shared_ref.input.get() };
            let output = unsafe { &mut *shared_ref.output.get() };
            let mut rng = ChaCha8Rng::seed_from_u64(
                cfg.seed
                    .wrapping_add((epoch as u64) << 40)
                    .wrapping_add((wi as u64).wrapping_mul(0x9E37_79B9)),
            );
            let mut grad_acc = vec![0.0f32; dim];
            let n = walk.len();
            for ci in 0..n {
                let center = walk[ci] as usize;
                let lo = ci.saturating_sub(cfg.window);
                let hi = (ci + cfg.window).min(n - 1);
                for xi in lo..=hi {
                    if xi == ci {
                        continue;
                    }
                    let context = walk[xi] as usize;
                    let done = progress.fetch_add(1, Ordering::Relaxed);
                    let lr = (cfg.initial_lr * (1.0 - done as f32 / total_pairs as f32))
                        .max(cfg.initial_lr * 1e-2);
                    grad_acc.iter_mut().for_each(|g| *g = 0.0);
                    let crow = row(input, center, dim);
                    for neg in 0..=cfg.negatives {
                        let (target, label) = if neg == 0 {
                            (context, 1.0f32)
                        } else {
                            let t = negative_table.sample(&mut rng);
                            if t == context {
                                continue;
                            }
                            (t, 0.0f32)
                        };
                        let trow = row(output, target, dim);
                        let mut dot = 0.0f32;
                        for k in 0..dim {
                            dot += crow[k] * trow[k];
                        }
                        let g = (label - sigmoid32(dot)) * lr;
                        for k in 0..dim {
                            grad_acc[k] += g * trow[k];
                        }
                        let trow = row_mut(output, target, dim);
                        for k in 0..dim {
                            trow[k] += g * input[center * dim + k];
                        }
                    }
                    let crow = row_mut(input, center, dim);
                    for k in 0..dim {
                        crow[k] += grad_acc[k];
                    }
                }
            }
        };

        for epoch in 0..cfg.epochs {
            if cfg.parallel {
                indexed
                    .par_iter()
                    .enumerate()
                    .for_each(|(wi, walk)| run_walk(epoch, wi, walk));
            } else {
                for (wi, walk) in indexed.iter().enumerate() {
                    run_walk(epoch, wi, walk);
                }
            }
        }

        self.input = shared.input.into_inner();
        self.output = shared.output.into_inner();
        total_pairs
    }

    /// Current embedding, identical layout to the production model's.
    pub fn embedding(&self) -> Embedding {
        let mut e = Embedding::new(self.cfg.dim);
        for (i, &id) in self.ids.iter().enumerate() {
            e.set(id, &self.input[i * self.cfg.dim..(i + 1) * self.cfg.dim]);
        }
        e
    }
}

struct SharedWeights {
    input: UnsafeCell<Vec<f32>>,
    output: UnsafeCell<Vec<f32>>,
}
// SAFETY: Hogwild, as in the production engine.
unsafe impl Sync for SharedWeights {}

#[inline]
fn row(buf: &[f32], r: usize, dim: usize) -> &[f32] {
    &buf[r * dim..(r + 1) * dim]
}

#[inline]
fn row_mut(buf: &mut [f32], r: usize, dim: usize) -> &mut [f32] {
    &mut buf[r * dim..(r + 1) * dim]
}

#[inline]
fn sigmoid32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_embed::SgnsModel;

    fn cfg() -> SgnsConfig {
        SgnsConfig {
            dim: 16,
            window: 2,
            negatives: 3,
            epochs: 10,
            initial_lr: 0.05,
            seed: 1,
            parallel: false,
        }
    }

    fn walks() -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        for rep in 0..30 {
            out.push((0..10).map(|i| NodeId((rep + i) % 5)).collect());
            out.push((0..10).map(|i| NodeId(5 + (rep + i) % 5)).collect());
        }
        out
    }

    /// The frozen baseline must still learn — and agree qualitatively
    /// with the production engine — or speedups against it are
    /// meaningless.
    #[test]
    fn legacy_engine_learns_like_production() {
        let ws = walks();
        let mut old = LegacySgnsModel::new(cfg());
        old.train(&ws);
        let mut new = SgnsModel::new(cfg());
        new.train(&ws);
        assert_eq!(old.vocab_len(), new.vocab_len());
        for (e, label) in [(old.embedding(), "legacy"), (new.embedding(), "new")] {
            let intra = e.cosine(NodeId(0), NodeId(1)).unwrap();
            let inter = e.cosine(NodeId(0), NodeId(6)).unwrap();
            assert!(intra > inter, "{label}: intra {intra} <= inter {inter}");
        }
    }
}
