//! A minimal JSON value, parser, and writer for the wire protocol.
//!
//! The vendored `serde` is a no-op shim (see `vendor/README.md`), so
//! the protocol layer carries its own JSON. The dialect is standard
//! RFC 8259 with two pragmatic choices: object keys keep their input
//! order (duplicate keys: last one wins on lookup), and non-finite
//! numbers serialise as `null` (JSON has no NaN/Infinity).
//!
//! The parser is written to *never panic* on any byte sequence —
//! malformed input, truncation, deep nesting, and bad escapes all come
//! back as a positioned [`JsonError`]. The protocol proptests hammer
//! exactly this contract.

use std::fmt;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// instead of risking the connection thread's stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep input order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number carrying an `f32` losslessly: the value serialises to
    /// `f32`'s shortest round-trip decimal (not the `f64` widening's
    /// long tail). Non-finite values become `Null`.
    pub fn num_f32(x: f32) -> Json {
        if x.is_finite() {
            // The shortest decimal for an f32 re-parses exactly (it is
            // never a rounding tie), so going through the string keeps
            // both the wire form short and the value bit-faithful.
            Json::Num(format!("{x}").parse().unwrap_or(x as f64))
        } else {
            Json::Null
        }
    }

    /// Object field lookup (last occurrence wins); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer that fits `u64`: requires an
    /// exact integral number (rejects fractions, negatives, NaN/inf).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // Exclusive upper bound: `u64::MAX as f64` rounds up to 2^64,
        // which `as u64` would silently saturate rather than reject.
        if n.is_finite() && n.fract() == 0.0 && n >= 0.0 && n < u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use fmt::Write as _;

/// A positioned parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input line.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // unicode_escape consumed its input
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str so the
                    // boundary lookup cannot fail.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (and a low-surrogate partner
    /// when needed); `self.pos` sits on the first hex digit on entry and
    /// past the escape on exit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a `\uXXXX` low surrogate partner.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            Err(self.err("unpaired high surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("unpaired low surrogate"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            self.digits();
        }
        // The span is ASCII by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(self.err("number out of range"))
        }
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

/// Length of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"cmd":"nearest","node":5,"k":10}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("nearest"));
        assert_eq!(v.get("node").and_then(Json::as_u64), Some(5));
        let v = parse(r#"{"cmd":"ingest","edges":[[0,1,3],[1,2,4]]}"#).unwrap();
        let edges = v.get("edges").and_then(Json::as_arr).unwrap();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[1].as_arr().unwrap()[2].as_u64(), Some(4));
    }

    #[test]
    fn scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(
            parse(r#"[1,[2,[3]]]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Arr(vec![Json::Num(2.0), Json::Arr(vec![Json::Num(3.0)])])
            ])
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "unpaired low surrogate");
        // Raw multi-byte characters pass through.
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "-",
            "\"abc",
            "\"\\q\"",
            "[1 2]",
            "{\"a\":1,}",
            "nullx",
            "1 2",
            "+1",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn as_u64_rejects_non_integers() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Str("3".into()).as_u64(), None);
        // 2^64 must be rejected, not saturated to u64::MAX.
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
        // The largest f64 below 2^64 still converts exactly.
        assert_eq!(
            Json::Num(18_446_744_073_709_549_568.0).as_u64(),
            Some(18_446_744_073_709_549_568)
        );
    }

    #[test]
    fn display_round_trips() {
        let v = obj(&[
            ("ok", Json::Bool(true)),
            ("msg", Json::Str("line1\nline2 \"q\"".into())),
            ("xs", Json::Arr(vec![Json::Num(1.0), Json::Null])),
        ]);
        let text = v.to_string();
        assert!(!text.contains('\n'), "one line on the wire: {text}");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn f32_numbers_stay_short_and_faithful() {
        let j = Json::num_f32(0.3);
        assert_eq!(j.to_string(), "0.3");
        let parsed = parse(&j.to_string()).unwrap().as_f64().unwrap() as f32;
        assert_eq!(parsed.to_bits(), 0.3f32.to_bits());
        assert_eq!(Json::num_f32(f32::NAN), Json::Null);
        assert_eq!(Json::num_f32(f32::INFINITY), Json::Null);
    }
}
