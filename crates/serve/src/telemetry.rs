//! The serving stack's telemetry hub: one [`ServeTelemetry`] per
//! server wires the lock-free primitives from `glodyne-telemetry` into
//! every pipeline stage.
//!
//! What gets measured (metric names as exposed by the `metrics` op):
//!
//! | series | kind | what |
//! |---|---|---|
//! | `glodyne_wire_latency_us{cmd}` | histogram | per-request wall time by command |
//! | `glodyne_queue_depth` | gauge | ingest queue depth at scrape time |
//! | `glodyne_queue_depth_high_water` | gauge | deepest the queue has ever been |
//! | `glodyne_queue_wait_us` | histogram | enqueue → trainer pickup |
//! | `glodyne_stage_us{stage[,shard]}` | histogram | trainer step phases + index build |
//! | `glodyne_freshness_lag_us` | histogram | epoch publish → first read |
//! | `glodyne_wal_append_us` / `glodyne_wal_fsync_us` / `glodyne_snapshot_write_us` | histogram | durability I/O |
//! | `glodyne_probe_recall_at_k` | gauge | rolling ANN recall@k vs exact |
//! | `glodyne_probe_latency_us` | histogram | one probe round's cost |
//! | `glodyne_probes_total` | counter | probe rounds completed |
//! | `glodyne_slow_queries_total` | counter | requests over the slow threshold |
//! | `glodyne_health_degraded` | gauge | 1 while the trainer watchdog holds the server degraded |
//! | `glodyne_health_stale_epochs` | gauge | flush boundaries accepted but not yet committed |
//!
//! Recording is wait-free everywhere a request can touch (see the
//! `glodyne-telemetry` crate docs); the slow-query ring takes a short
//! mutex but only for requests that already blew the latency budget.

use glodyne::StepReport;
use glodyne_ann::{BuildKind, IvfIndex};
use glodyne_durable::DurableTiming;
use glodyne_telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Wire commands with a latency series (order fixed for stable output).
pub const WIRE_COMMANDS: [&str; 6] = [
    "query",
    "nearest",
    "nearest_batch",
    "ingest",
    "flush",
    "stats",
];

/// How many slow queries the ring remembers.
pub const SLOW_RING_CAPACITY: usize = 32;

/// Default slow-query threshold (micros) when none is configured.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 10_000;

/// One request that exceeded the slow threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Wire command name.
    pub cmd: &'static str,
    /// Nodes the request touched (1 for point reads, batch/event
    /// counts for batched ops, 0 for `flush`/`stats`).
    pub nodes: usize,
    /// Epoch that answered the request.
    pub epoch: u64,
    /// Wall time the request took.
    pub micros: u64,
}

/// Per-trainer handles for the step-phase histograms. Sharded trainers
/// carry two handles per stage — the global series plus a
/// `shard`-labelled one — so both the aggregate and the per-shard
/// break-down stay live.
#[derive(Clone)]
pub(crate) struct TrainerStages {
    select: Vec<Arc<Histogram>>,
    walks: Vec<Arc<Histogram>>,
    train: Vec<Arc<Histogram>>,
    index_build: Vec<Arc<Histogram>>,
    /// Kind-split `index_build` series (`kind="full"` /
    /// `kind="incremental"`) so operators can see the cost gap the
    /// incremental maintenance buys — the aggregate series above mixes
    /// cheap patches with the occasional drift-triggered rebuild.
    index_build_full: Vec<Arc<Histogram>>,
    index_build_incremental: Vec<Arc<Histogram>>,
}

impl TrainerStages {
    /// Attribute one committed step's phase times (and the published
    /// index's build cost) to the stage histograms.
    pub(crate) fn record(&self, report: Option<&StepReport>, index: Option<&IvfIndex>) {
        if let Some(report) = report {
            for h in &self.select {
                h.record_duration(report.phases.select);
            }
            for h in &self.walks {
                h.record_duration(report.phases.walks);
            }
            for h in &self.train {
                h.record_duration(report.phases.train);
            }
        }
        if let Some(index) = index {
            for h in &self.index_build {
                h.record_duration(index.build_time());
            }
            let by_kind = match index.build_kind() {
                BuildKind::Full => &self.index_build_full,
                BuildKind::Incremental => &self.index_build_incremental,
            };
            for h in by_kind {
                h.record_duration(index.build_time());
            }
        }
    }
}

/// Durability I/O timing snapshots for the `stats` telemetry object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityTelemetry {
    /// WAL `append` wall time (micros).
    pub wal_append: HistogramSnapshot,
    /// WAL fsync (`sync_data`) wall time.
    pub wal_fsync: HistogramSnapshot,
    /// Snapshot freeze (serialize + write + fsync + rename) wall time.
    pub snapshot_write: HistogramSnapshot,
}

/// Quality-probe state for the `stats` telemetry object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeTelemetry {
    /// Rolling recall@k in basis points (9_700 = 0.97) — kept integral
    /// so [`TelemetryStats`] stays `Eq`.
    pub recall_bp: u64,
    /// The probe's `k`.
    pub k: usize,
    /// Probe rounds completed.
    pub runs: u64,
    /// One probe round's latency.
    pub latency: HistogramSnapshot,
}

/// A point-in-time view of everything [`ServeTelemetry`] measures —
/// the `"telemetry"` object in the wire `stats` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryStats {
    /// Ingest queue depth when the stats were taken.
    pub queue_depth: usize,
    /// Deepest the ingest queue has ever been.
    pub queue_high_water: usize,
    /// Enqueue → trainer-pickup wait.
    pub queue_wait: HistogramSnapshot,
    /// Per-command wire latency, in [`WIRE_COMMANDS`] order.
    pub wire: Vec<(&'static str, HistogramSnapshot)>,
    /// Trainer stage durations: select, walks, train, index_build.
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
    /// Epoch publish → first read lag.
    pub freshness: HistogramSnapshot,
    /// Durability I/O timings; `None` on in-memory servers.
    pub durability: Option<DurabilityTelemetry>,
    /// Quality probe state; `None` when no probe thread is attached.
    pub probe: Option<ProbeTelemetry>,
    /// The most recent slow queries, oldest first (bounded at
    /// [`SLOW_RING_CAPACITY`]).
    pub slow: Vec<SlowQuery>,
}

/// The names of the trainer stage series.
const STAGE_NAMES: [&str; 4] = ["select", "walks", "train", "index_build"];

/// All metric handles for one server, pre-registered so the record
/// path never touches the registry lock.
pub struct ServeTelemetry {
    registry: Registry,
    wire: [Arc<Histogram>; WIRE_COMMANDS.len()],
    queue_depth: Arc<Gauge>,
    queue_high_water: Arc<Gauge>,
    pub(crate) queue_wait: Arc<Histogram>,
    stages: [Arc<Histogram>; STAGE_NAMES.len()],
    /// `glodyne_stage_us{stage="index_build",kind=...}` — `[full,
    /// incremental]`.
    index_build_kind: [Arc<Histogram>; 2],
    pub(crate) freshness: Arc<Histogram>,
    wal_append: Arc<Histogram>,
    wal_fsync: Arc<Histogram>,
    snapshot_write: Arc<Histogram>,
    durable: AtomicBool,
    pub(crate) probe_recall: Arc<Gauge>,
    pub(crate) probe_latency: Arc<Histogram>,
    pub(crate) probes_run: Arc<Counter>,
    probe_k: AtomicU64,
    slow_total: Arc<Counter>,
    slow_threshold_us: u64,
    slow_ring: Mutex<VecDeque<SlowQuery>>,
    health_degraded: Arc<Gauge>,
    health_stale_epochs: Arc<Gauge>,
}

impl ServeTelemetry {
    /// Register every series and hand back the hub. `slow_threshold_us`
    /// is the latency above which a request lands in the slow ring.
    pub fn new(slow_threshold_us: u64) -> Self {
        let registry = Registry::new();
        let wire = WIRE_COMMANDS.map(|cmd| {
            registry.histogram(
                "glodyne_wire_latency_us",
                "Per-request wall time by wire command (micros)",
                &[("cmd", cmd)],
            )
        });
        let stages = STAGE_NAMES.map(|stage| {
            registry.histogram(
                "glodyne_stage_us",
                "Trainer pipeline stage wall time (micros)",
                &[("stage", stage)],
            )
        });
        let index_build_kind = ["full", "incremental"].map(|kind| {
            registry.histogram(
                "glodyne_stage_us",
                "Trainer pipeline stage wall time (micros)",
                &[("stage", "index_build"), ("kind", kind)],
            )
        });
        ServeTelemetry {
            wire,
            stages,
            index_build_kind,
            queue_depth: registry.gauge(
                "glodyne_queue_depth",
                "Events waiting in the ingest queue",
                &[],
            ),
            queue_high_water: registry.gauge(
                "glodyne_queue_depth_high_water",
                "Deepest the ingest queue has ever been",
                &[],
            ),
            queue_wait: registry.histogram(
                "glodyne_queue_wait_us",
                "Event enqueue to trainer pickup (micros)",
                &[],
            ),
            freshness: registry.histogram(
                "glodyne_freshness_lag_us",
                "Epoch publish to first read (micros)",
                &[],
            ),
            wal_append: registry.histogram(
                "glodyne_wal_append_us",
                "WAL record append wall time (micros)",
                &[],
            ),
            wal_fsync: registry.histogram(
                "glodyne_wal_fsync_us",
                "WAL fsync wall time (micros)",
                &[],
            ),
            snapshot_write: registry.histogram(
                "glodyne_snapshot_write_us",
                "Snapshot freeze wall time (micros)",
                &[],
            ),
            durable: AtomicBool::new(false),
            probe_recall: registry.gauge(
                "glodyne_probe_recall_at_k",
                "Rolling ANN recall@k measured by the quality probe",
                &[],
            ),
            probe_latency: registry.histogram(
                "glodyne_probe_latency_us",
                "One quality-probe round's wall time (micros)",
                &[],
            ),
            probes_run: registry.counter(
                "glodyne_probes_total",
                "Quality probe rounds completed",
                &[],
            ),
            probe_k: AtomicU64::new(0),
            slow_total: registry.counter(
                "glodyne_slow_queries_total",
                "Requests over the slow-query threshold",
                &[],
            ),
            slow_threshold_us,
            slow_ring: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAPACITY)),
            health_degraded: registry.gauge(
                "glodyne_health_degraded",
                "1 while the trainer watchdog holds the server degraded",
                &[],
            ),
            health_stale_epochs: registry.gauge(
                "glodyne_health_stale_epochs",
                "Flush boundaries accepted but not yet committed by the trainer",
                &[],
            ),
            registry,
        }
    }

    /// The stage handles for the unsharded trainer.
    pub(crate) fn trainer_stages(&self) -> TrainerStages {
        TrainerStages {
            select: vec![Arc::clone(&self.stages[0])],
            walks: vec![Arc::clone(&self.stages[1])],
            train: vec![Arc::clone(&self.stages[2])],
            index_build: vec![Arc::clone(&self.stages[3])],
            index_build_full: vec![Arc::clone(&self.index_build_kind[0])],
            index_build_incremental: vec![Arc::clone(&self.index_build_kind[1])],
        }
    }

    /// The stage handles for shard `shard`'s trainer: the global
    /// series plus a `shard`-labelled one per stage.
    pub(crate) fn shard_trainer_stages(&self, shard: usize) -> TrainerStages {
        let shard_label = shard.to_string();
        let labelled = STAGE_NAMES.map(|stage| {
            self.registry.histogram(
                "glodyne_stage_us",
                "Trainer pipeline stage wall time (micros)",
                &[("stage", stage), ("shard", &shard_label)],
            )
        });
        TrainerStages {
            select: vec![Arc::clone(&self.stages[0]), Arc::clone(&labelled[0])],
            walks: vec![Arc::clone(&self.stages[1]), Arc::clone(&labelled[1])],
            train: vec![Arc::clone(&self.stages[2]), Arc::clone(&labelled[2])],
            index_build: vec![Arc::clone(&self.stages[3]), Arc::clone(&labelled[3])],
            // Shard trainers feed the global kind-split series; the
            // per-shard break-down stays on the aggregate stage only.
            index_build_full: vec![Arc::clone(&self.index_build_kind[0])],
            index_build_incremental: vec![Arc::clone(&self.index_build_kind[1])],
        }
    }

    /// The durability timing sink to hand to `glodyne-durable` (also
    /// flips the `stats` durability section on).
    pub fn durable_timing(&self) -> Arc<DurableTiming> {
        self.durable.store(true, Ordering::Relaxed);
        Arc::new(DurableTiming {
            wal_append: Arc::clone(&self.wal_append),
            wal_fsync: Arc::clone(&self.wal_fsync),
            snapshot_write: Arc::clone(&self.snapshot_write),
        })
    }

    /// Mark that a quality probe with this `k` is attached (makes the
    /// probe section appear in [`TelemetryStats`]).
    pub(crate) fn set_probe_k(&self, k: usize) {
        self.probe_k.store(k as u64, Ordering::Relaxed);
    }

    /// Record one served request: its latency lands in the command's
    /// wire histogram, and over-threshold requests additionally land
    /// in the slow ring. `cmd` must be one of [`WIRE_COMMANDS`] (other
    /// ops — `metrics`, `shutdown`, parse errors — carry no series).
    pub(crate) fn observe_request(&self, cmd: &'static str, nodes: usize, epoch: u64, micros: u64) {
        if let Some(i) = WIRE_COMMANDS.iter().position(|&c| c == cmd) {
            self.wire[i].record(micros);
        }
        if micros >= self.slow_threshold_us {
            self.slow_total.inc();
            let mut ring = self
                .slow_ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if ring.len() == SLOW_RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(SlowQuery {
                cmd,
                nodes,
                epoch,
                micros,
            });
        }
    }

    /// The slow-query threshold (micros).
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Refresh the queue gauges from the live queue counters (called
    /// before any export so scrapes see current values).
    pub(crate) fn sync_queue_gauges(&self, depth: usize, high_water: usize) {
        self.queue_depth.set(depth as f64);
        self.queue_high_water.set(high_water as f64);
    }

    /// Refresh the watchdog health gauges (called whenever health is
    /// evaluated — every `stats` and `metrics` request).
    pub(crate) fn sync_health_gauges(&self, degraded: bool, stale_epochs: u64) {
        self.health_degraded.set(if degraded { 1.0 } else { 0.0 });
        self.health_stale_epochs.set(stale_epochs as f64);
    }

    /// Prometheus text exposition of every registered series.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }

    /// The structured `stats` view. `queue_depth`/`queue_high_water`
    /// are passed in by the owning session (they live on the queue).
    pub fn stats(&self, queue_depth: usize, queue_high_water: usize) -> TelemetryStats {
        self.sync_queue_gauges(queue_depth, queue_high_water);
        let probe_k = self.probe_k.load(Ordering::Relaxed);
        TelemetryStats {
            queue_depth,
            queue_high_water,
            queue_wait: self.queue_wait.snapshot(),
            wire: WIRE_COMMANDS
                .iter()
                .zip(&self.wire)
                .map(|(&cmd, h)| (cmd, h.snapshot()))
                .collect(),
            stages: STAGE_NAMES
                .iter()
                .zip(&self.stages)
                .map(|(&stage, h)| (stage, h.snapshot()))
                .collect(),
            freshness: self.freshness.snapshot(),
            durability: self
                .durable
                .load(Ordering::Relaxed)
                .then(|| DurabilityTelemetry {
                    wal_append: self.wal_append.snapshot(),
                    wal_fsync: self.wal_fsync.snapshot(),
                    snapshot_write: self.snapshot_write.snapshot(),
                }),
            probe: (probe_k > 0).then(|| ProbeTelemetry {
                recall_bp: (self.probe_recall.get() * 10_000.0).round() as u64,
                k: probe_k as usize,
                runs: self.probes_run.get(),
                latency: self.probe_latency.snapshot(),
            }),
            slow: self
                .slow_ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_ring_is_bounded_and_ordered() {
        let t = ServeTelemetry::new(100);
        t.observe_request("query", 1, 1, 50); // under threshold
        for i in 0..40u64 {
            t.observe_request("nearest", 1, 2, 100 + i);
        }
        let stats = t.stats(0, 0);
        assert_eq!(stats.slow.len(), SLOW_RING_CAPACITY);
        assert_eq!(stats.slow[0].micros, 108, "oldest surviving entry");
        assert_eq!(stats.slow.last().unwrap().micros, 139, "newest entry");
        assert!(stats.slow.iter().all(|s| s.cmd == "nearest"));
        // The wire histogram saw everything, slow or not.
        let (_, query_hist) = stats.wire.iter().find(|(c, _)| *c == "query").unwrap();
        assert_eq!(query_hist.count, 1);
    }

    #[test]
    fn stats_sections_appear_when_armed() {
        let t = ServeTelemetry::new(DEFAULT_SLOW_THRESHOLD_US);
        let s = t.stats(3, 7);
        assert_eq!(s.queue_depth, 3);
        assert_eq!(s.queue_high_water, 7);
        assert_eq!(s.durability, None, "no durable timing attached");
        assert_eq!(s.probe, None, "no probe attached");
        assert_eq!(s.wire.len(), WIRE_COMMANDS.len());

        let _timing = t.durable_timing();
        t.set_probe_k(10);
        t.probe_recall.set(0.97);
        t.probes_run.inc();
        let s = t.stats(0, 7);
        assert!(s.durability.is_some());
        let probe = s.probe.expect("probe section armed");
        assert_eq!(probe.recall_bp, 9_700);
        assert_eq!(probe.k, 10);
        assert_eq!(probe.runs, 1);
    }

    #[test]
    fn prometheus_exposition_names_every_series() {
        let t = ServeTelemetry::new(DEFAULT_SLOW_THRESHOLD_US);
        t.observe_request("query", 1, 1, 12);
        t.sync_queue_gauges(2, 9);
        t.probe_recall.set(0.91);
        let text = t.render_prometheus();
        for name in [
            "glodyne_wire_latency_us",
            "glodyne_queue_depth",
            "glodyne_queue_depth_high_water",
            "glodyne_queue_wait_us",
            "glodyne_stage_us",
            "glodyne_freshness_lag_us",
            "glodyne_wal_append_us",
            "glodyne_wal_fsync_us",
            "glodyne_snapshot_write_us",
            "glodyne_probe_recall_at_k",
            "glodyne_probe_latency_us",
            "glodyne_probes_total",
            "glodyne_slow_queries_total",
            "glodyne_health_degraded",
            "glodyne_health_stale_epochs",
        ] {
            assert!(text.contains(&format!("# TYPE {name}")), "missing {name}");
        }
        assert!(text.contains("glodyne_queue_depth 2"));
        assert!(text.contains("glodyne_queue_depth_high_water 9"));
        assert!(text.contains("glodyne_probe_recall_at_k 0.91"));
        assert!(text.contains("glodyne_wire_latency_us_count{cmd=\"query\"} 1"));
    }

    #[test]
    fn health_gauges_reflect_the_watchdog() {
        let t = ServeTelemetry::new(DEFAULT_SLOW_THRESHOLD_US);
        t.sync_health_gauges(true, 3);
        let text = t.render_prometheus();
        assert!(text.contains("glodyne_health_degraded 1"));
        assert!(text.contains("glodyne_health_stale_epochs 3"));
        t.sync_health_gauges(false, 0);
        let text = t.render_prometheus();
        assert!(text.contains("glodyne_health_degraded 0"));
    }

    #[test]
    fn shard_stages_feed_both_series() {
        let t = ServeTelemetry::new(DEFAULT_SLOW_THRESHOLD_US);
        let stages = t.shard_trainer_stages(1);
        let report = StepReport {
            phases: glodyne::PhaseTimes {
                select: std::time::Duration::from_micros(10),
                walks: std::time::Duration::from_micros(20),
                train: std::time::Duration::from_micros(30),
            },
            ..Default::default()
        };
        stages.record(Some(&report), None);
        let stats = t.stats(0, 0);
        let (_, train) = stats.stages.iter().find(|(s, _)| *s == "train").unwrap();
        assert_eq!(train.count, 1, "global series sees the shard step");
        let text = t.render_prometheus();
        assert!(
            text.contains("glodyne_stage_us_count{stage=\"train\",shard=\"1\"} 1"),
            "per-shard series present:\n{text}"
        );
    }
}
