//! The std-only TCP front end: one thread per connection, line-delimited
//! JSON requests in, one JSON line out per request.
//!
//! No async runtime (the vendor tree has none) and none needed: the
//! connection count is bounded by [`ServerConfig::max_connections`]
//! (further `accept`s wait for a slot — back-pressure at the door, like
//! the ingest queue inside), and each connection thread spends its life
//! blocked in `read`, which is exactly what OS threads are cheap at.
//!
//! Graceful shutdown: the `shutdown` command (or
//! [`Server::request_shutdown`]) flips a flag, wakes the accept loop
//! with a loopback connection, and [`Server::join`] then stops the
//! trainer. Connections that are still open keep being served until
//! their clients disconnect — reads still work off the final epoch,
//! writes get structured `shutting_down` errors.

use crate::epoch::EmbeddingEpoch;
use crate::error::ServeError;
use crate::probe::{run_probe_round, ProbeSettings};
use crate::protocol::{self, ErrorKind, NearestMode, ProtocolError, Request};
use crate::queue::FlushOutcome;
use crate::session::{AnnSettings, ServeStats, ServingSession};
use crate::shard::ShardedSession;
use crate::telemetry::ServeTelemetry;
use glodyne::{EmbedderSession, EpochPolicy};
use glodyne_durable::{DurableConfig, DurableSession};
use glodyne_embed::traits::CheckpointEmbedder;
use glodyne_embed::DynamicEmbedder;
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use glodyne_shard::ShardConfig;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections served; further accepts wait for a slot.
    pub max_connections: usize,
    /// Per-request line cap; longer lines get a `too_large` error.
    pub max_line_bytes: usize,
    /// Bound of the ingest queue feeding the trainer.
    pub queue_capacity: usize,
    /// When present, build an IVF index per published epoch and accept
    /// `"mode":"ann"` on `nearest`; without it ANN requests get an
    /// `unavailable` error.
    pub ann: Option<AnnSettings>,
    /// Instrument the whole serving path (wire latency, queue wait,
    /// trainer stages, freshness lag, durability I/O): `stats` gains a
    /// `"telemetry"` object and the `metrics` op exposes Prometheus
    /// text. Off by default — the un-instrumented hot path records
    /// nothing.
    pub telemetry: bool,
    /// Run the background quality probe (requires `telemetry` *and*
    /// ANN): every `period_ms` it samples live nodes from the published
    /// epoch and measures ANN recall@k against the exact scan. Silently
    /// idle when ANN is off — there is nothing approximate to measure.
    pub probe: Option<ProbeSettings>,
    /// Requests at or above this wall time (micros) land in the
    /// telemetry slow-query ring.
    pub slow_query_us: u64,
    /// Shed ingest instead of blocking on it: with fast-fail on, an
    /// `ingest` against full queues answers `overloaded` immediately
    /// rather than parking the connection thread until the trainer
    /// drains. Reads are unaffected either way — they never touch the
    /// queue.
    pub fast_fail: bool,
    /// Deadline applied to `ingest`/`flush` requests that don't carry
    /// their own `deadline_ms`; `None` means no implicit deadline.
    pub default_deadline_ms: Option<u64>,
    /// How long the trainer may sit on pending work before the health
    /// watchdog reports the server degraded.
    pub stall_after_ms: u64,
    /// Socket write timeout per response line: a slow consumer that
    /// stops reading gets disconnected instead of pinning the
    /// connection thread (and its slot) forever. `None` disables.
    pub write_timeout_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_line_bytes: protocol::MAX_LINE_BYTES,
            queue_capacity: crate::session::DEFAULT_QUEUE_CAPACITY,
            ann: None,
            telemetry: false,
            probe: None,
            slow_query_us: crate::telemetry::DEFAULT_SLOW_THRESHOLD_US,
            fast_fail: false,
            default_deadline_ms: None,
            stall_after_ms: crate::session::DEFAULT_STALL_AFTER.as_millis() as u64,
            write_timeout_ms: Some(30_000),
        }
    }
}

impl ServerConfig {
    /// Reject degenerate overload settings before a socket exists.
    fn validate(&self) -> Result<(), glodyne_embed::ConfigError> {
        if self.default_deadline_ms == Some(0) {
            return Err(glodyne_embed::ConfigError::new(
                "default_deadline_ms",
                "a zero deadline would fail every write; use fast_fail for shed-on-full",
            ));
        }
        if self.stall_after_ms == 0 {
            return Err(glodyne_embed::ConfigError::new(
                "stall_after_ms",
                "must be at least 1ms, or the watchdog calls every busy trainer stalled",
            ));
        }
        if self.write_timeout_ms == Some(0) {
            return Err(glodyne_embed::ConfigError::new(
                "write_timeout_ms",
                "must be at least 1ms; use None to disable the write timeout",
            ));
        }
        Ok(())
    }

    /// Build the telemetry hub this config asks for (`None` when
    /// telemetry is off).
    fn hub(&self) -> Option<Arc<ServeTelemetry>> {
        self.telemetry
            .then(|| Arc::new(ServeTelemetry::new(self.slow_query_us)))
    }

    /// The per-connection slice of this config.
    fn conn_policy(&self) -> ConnPolicy {
        ConnPolicy {
            max_line: self.max_line_bytes.max(1),
            write_timeout: self.write_timeout_ms.map(Duration::from_millis),
            fast_fail: self.fast_fail,
            default_deadline_ms: self.default_deadline_ms,
        }
    }
}

/// What a connection thread needs from [`ServerConfig`].
#[derive(Debug, Clone, Copy)]
struct ConnPolicy {
    max_line: usize,
    write_timeout: Option<Duration>,
    fast_fail: bool,
    default_deadline_ms: Option<u64>,
}

/// The serving engine behind a [`Server`]: one trainer (unsharded) or
/// one per shard (see [`Server::bind_sharded`]). Both expose the same
/// wire surface; `dispatch` is written against this enum so the two
/// modes cannot drift apart.
// One Backend is allocated per server and lives behind an Arc, so the
// size gap between the two variants is never paid per-message.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Backend {
    /// One global session on one trainer thread.
    Single(ServingSession),
    /// Partition-routed shards, each with its own trainer.
    Sharded(ShardedSession),
}

impl Backend {
    fn query(&self, node: NodeId) -> (u64, Option<Vec<f32>>) {
        match self {
            Backend::Single(s) => s.query(node),
            Backend::Sharded(s) => s.query(node),
        }
    }

    /// Exact `nearest`; the inner `None` distinguishes an unknown node
    /// from a node with no neighbours.
    fn nearest_exact(&self, node: NodeId, k: usize) -> (u64, Option<Vec<(NodeId, f32)>>) {
        match self {
            Backend::Single(s) => {
                // One epoch load per request: the existence check, the
                // scan, and the reported epoch id always agree.
                let epoch = s.epoch();
                match epoch.embedding.get(node) {
                    Some(_) => (epoch.epoch, Some(epoch.embedding.top_k(node, k))),
                    None => (epoch.epoch, None),
                }
            }
            Backend::Sharded(s) => s.nearest(node, k),
        }
    }

    /// ANN `nearest`; outer `None` means ANN is unavailable on this
    /// server, inner `None` an unknown node. The `usize` is the probe
    /// width to echo. An unknown node reports `not_found` even when
    /// ANN is also unavailable — the pre-sharding wire order, which a
    /// protocol regression test pins.
    #[allow(clippy::type_complexity)]
    fn nearest_ann(
        &self,
        node: NodeId,
        k: usize,
        nprobe: Option<usize>,
    ) -> Option<(u64, Option<Vec<(NodeId, f32)>>, usize)> {
        match self {
            Backend::Single(s) => {
                let epoch = s.epoch();
                if epoch.embedding.get(node).is_none() {
                    return Some((epoch.epoch, None, 0));
                }
                let settings = s.ann()?;
                let requested = nprobe.unwrap_or(settings.default_nprobe);
                let (hits, effective) = epoch.search_ann(node, k, requested)?;
                Some((epoch.epoch, Some(hits), effective))
            }
            Backend::Sharded(s) => match s.nearest_ann(node, k, nprobe) {
                // ANN disabled: still distinguish an unknown node.
                None => match s.query(node) {
                    (epoch, None) => Some((epoch, None, 0)),
                    (_, Some(_)) => None,
                },
                answered => answered,
            },
        }
    }

    /// Exact `nearest` for a whole batch from one frozen view; a `None`
    /// entry is an unknown probe (rendered `null`, not an error, so one
    /// bad probe doesn't fail its batchmates).
    #[allow(clippy::type_complexity)]
    fn nearest_batch(&self, nodes: &[NodeId], k: usize) -> (u64, Vec<Option<Vec<(NodeId, f32)>>>) {
        match self {
            Backend::Single(s) => {
                // One epoch load: the batch scan and every presence
                // check read the same frozen state.
                let epoch = s.epoch();
                let results = epoch
                    .embedding
                    .top_k_batch(nodes, k)
                    .into_iter()
                    .zip(nodes)
                    .map(|(hits, &node)| epoch.embedding.get(node).map(|_| hits))
                    .collect();
                (epoch.epoch, results)
            }
            Backend::Sharded(s) => s.nearest_batch(nodes, k),
        }
    }

    /// ANN `nearest` for a whole batch; outer `None` means ANN is
    /// unavailable on this server (a request-level error), inner `None`
    /// an unknown probe.
    #[allow(clippy::type_complexity)]
    fn nearest_batch_ann(
        &self,
        nodes: &[NodeId],
        k: usize,
        nprobe: Option<usize>,
    ) -> Option<(u64, Vec<Option<Vec<(NodeId, f32)>>>, usize)> {
        match self {
            Backend::Single(s) => {
                let settings = s.ann()?;
                let epoch = s.epoch();
                let requested = nprobe.unwrap_or(settings.default_nprobe);
                let (results, effective) = epoch.search_ann_batch(nodes, k, requested)?;
                let results = results
                    .into_iter()
                    .zip(nodes)
                    .map(|(hits, &node)| epoch.embedding.get(node).map(|_| hits))
                    .collect();
                Some((epoch.epoch, results, effective))
            }
            Backend::Sharded(s) => s.nearest_batch_ann(nodes, k, nprobe),
        }
    }

    fn ingest(&self, events: &[GraphEvent]) -> Result<usize, ServeError> {
        match self {
            Backend::Single(s) => s.ingest(events),
            Backend::Sharded(s) => s.ingest(events),
        }
    }

    fn ingest_fast_fail(&self, events: &[GraphEvent]) -> Result<usize, ServeError> {
        match self {
            Backend::Single(s) => s.ingest_fast_fail(events),
            Backend::Sharded(s) => s.ingest_fast_fail(events),
        }
    }

    fn ingest_deadline(
        &self,
        events: &[GraphEvent],
        deadline: Instant,
    ) -> Result<usize, ServeError> {
        match self {
            Backend::Single(s) => s.ingest_deadline(events, deadline),
            Backend::Sharded(s) => s.ingest_deadline(events, deadline),
        }
    }

    fn flush(&self) -> Result<FlushOutcome, ServeError> {
        match self {
            Backend::Single(s) => s.flush(),
            Backend::Sharded(s) => s.flush(),
        }
    }

    fn flush_deadline(&self, deadline: Instant) -> Result<FlushOutcome, ServeError> {
        match self {
            Backend::Single(s) => s.flush_deadline(deadline),
            Backend::Sharded(s) => s.flush_deadline(deadline),
        }
    }

    fn health(&self) -> crate::session::HealthStats {
        match self {
            Backend::Single(s) => s.health(),
            Backend::Sharded(s) => s.health(),
        }
    }

    fn set_stall_after(&self, stall_after: Duration) {
        match self {
            Backend::Single(s) => s.set_stall_after(stall_after),
            Backend::Sharded(s) => s.set_stall_after(stall_after),
        }
    }

    fn stats(&self) -> ServeStats {
        match self {
            Backend::Single(s) => s.stats(),
            Backend::Sharded(s) => s.stats(),
        }
    }

    fn telemetry(&self) -> Option<&Arc<ServeTelemetry>> {
        match self {
            Backend::Single(s) => s.telemetry(),
            Backend::Sharded(s) => s.telemetry(),
        }
    }

    fn ann(&self) -> Option<AnnSettings> {
        match self {
            Backend::Single(s) => s.ann(),
            Backend::Sharded(s) => s.ann(),
        }
    }

    /// Every served epoch without consuming the freshness-lag stamps
    /// (one on unsharded servers, one per shard otherwise).
    fn probe_epochs(&self) -> Vec<Arc<EmbeddingEpoch>> {
        match self {
            Backend::Single(s) => vec![s.probe_epoch()],
            Backend::Sharded(s) => s.probe_epochs(),
        }
    }

    /// The epoch id a slow-query entry is attributed to (the max over
    /// shards in sharded mode). Untracked read — attribution must not
    /// eat a freshness measurement.
    fn epoch_id(&self) -> u64 {
        self.probe_epochs()
            .iter()
            .map(|e| e.epoch)
            .max()
            .unwrap_or(0)
    }

    fn stop(&self) {
        match self {
            Backend::Single(s) => s.shutdown(),
            Backend::Sharded(s) => s.shutdown(),
        }
    }
}

/// A running serving process.
pub struct Server {
    addr: SocketAddr,
    backend: Arc<Backend>,
    shutdown: Arc<AtomicBool>,
    slots: Arc<Slots>,
    accept: Option<JoinHandle<u64>>,
    probe: Option<JoinHandle<()>>,
}

impl Server {
    /// Move `session` into a [`ServingSession`] and serve it on `addr`
    /// (e.g. `"127.0.0.1:7878"`; port 0 picks a free port, see
    /// [`Server::local_addr`]).
    pub fn bind<E>(
        session: EmbedderSession<E>,
        addr: &str,
        cfg: ServerConfig,
    ) -> Result<Server, ServeError>
    where
        E: DynamicEmbedder + Send + 'static,
    {
        // Reject degenerate ANN settings before a socket exists
        // (`spawn_with_ann` validates again — the policy lives in
        // `AnnSettings::validate` either way).
        if let Some(settings) = &cfg.ann {
            settings.validate().map_err(ServeError::Config)?;
        }
        let backend = Backend::Single(
            ServingSession::spawn_instrumented(session, cfg.queue_capacity, cfg.ann, cfg.hub())
                .map_err(ServeError::Config)?,
        );
        Server::bind_backend(backend, addr, &cfg)
    }

    /// Serve `shard_cfg.shards` partition-routed shards (one
    /// [`EmbedderSession`] each, one trainer thread each) behind the
    /// same wire protocol: events route through a `glodyne-shard`
    /// [`ShardRouter`](glodyne_shard::ShardRouter), `nearest` fans out
    /// across the shard epochs, and `stats` gains the per-shard
    /// `"shards"` array.
    pub fn bind_sharded<E>(
        sessions: Vec<EmbedderSession<E>>,
        shard_cfg: ShardConfig,
        addr: &str,
        cfg: ServerConfig,
    ) -> Result<Server, ServeError>
    where
        E: DynamicEmbedder + Send + 'static,
    {
        let backend = Backend::Sharded(
            ShardedSession::spawn_instrumented(
                sessions,
                shard_cfg,
                cfg.queue_capacity,
                cfg.ann,
                cfg.hub(),
            )
            .map_err(ServeError::Config)?,
        );
        Server::bind_backend(backend, addr, &cfg)
    }

    /// Serve a crash-recoverable unsharded session: `durable` comes
    /// from [`DurableSession::create`] (fresh lineage) or
    /// [`DurableSession::recover`] (restart), `recovered_from` is the
    /// recovery report's provenance to surface through `stats`. The
    /// wire `shutdown` command drains the ingest queue, fsyncs the
    /// WAL, and writes a final snapshot before [`Server::join`]
    /// returns, so a clean stop never needs replay.
    pub fn bind_durable<E>(
        durable: DurableSession<E>,
        recovered_from: Option<String>,
        addr: &str,
        cfg: ServerConfig,
    ) -> Result<Server, ServeError>
    where
        E: CheckpointEmbedder + Send + 'static,
    {
        let backend = Backend::Single(
            ServingSession::spawn_durable_instrumented(
                durable,
                recovered_from,
                cfg.queue_capacity,
                cfg.ann,
                cfg.hub(),
            )
            .map_err(ServeError::Config)?,
        );
        Server::bind_backend(backend, addr, &cfg)
    }

    /// Serve a crash-recoverable sharded session rooted at `dir` (see
    /// [`ShardedSession::spawn_durable`] for the lineage layout and
    /// recovery semantics). Also returns the recovery provenance,
    /// `None` when the directory was fresh.
    #[allow(clippy::too_many_arguments)]
    pub fn bind_sharded_durable<E, F>(
        dir: &Path,
        shard_cfg: ShardConfig,
        durable_cfg: DurableConfig,
        policy: EpochPolicy,
        addr: &str,
        cfg: ServerConfig,
        make_embedder: F,
    ) -> Result<(Server, Option<String>), ServeError>
    where
        E: CheckpointEmbedder + Send + 'static,
        F: Fn(usize) -> E,
    {
        let (session, recovered) = ShardedSession::spawn_durable_instrumented(
            dir,
            shard_cfg,
            durable_cfg,
            policy,
            cfg.queue_capacity,
            cfg.ann,
            make_embedder,
            cfg.hub(),
        )
        .map_err(ServeError::Durability)?;
        let server = Server::bind_backend(Backend::Sharded(session), addr, &cfg)?;
        Ok((server, recovered))
    }

    fn bind_backend(
        backend: Backend,
        addr: &str,
        cfg: &ServerConfig,
    ) -> Result<Server, ServeError> {
        cfg.validate().map_err(ServeError::Config)?;
        if let Some(settings) = &cfg.probe {
            settings.validate().map_err(ServeError::Config)?;
        }
        backend.set_stall_after(Duration::from_millis(cfg.stall_after_ms));
        let listener = TcpListener::bind(addr).map_err(|source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let local = listener.local_addr().map_err(|source| ServeError::Bind {
            addr: addr.to_string(),
            source,
        })?;
        let serving = Arc::new(backend);
        let shutdown = Arc::new(AtomicBool::new(false));
        let slots = Arc::new(Slots::new(cfg.max_connections.max(1)));
        let accept = {
            let serving = Arc::clone(&serving);
            let shutdown = Arc::clone(&shutdown);
            let slots = Arc::clone(&slots);
            let policy = cfg.conn_policy();
            thread::Builder::new()
                .name("glodyne-accept".into())
                .spawn(move || {
                    let mut served = 0u64;
                    loop {
                        let stream = match listener.accept() {
                            Ok((stream, _peer)) => stream,
                            Err(_) if shutdown.load(Ordering::SeqCst) => break,
                            Err(_) => continue,
                        };
                        // One-line request/response traffic is the
                        // textbook Nagle + delayed-ACK pathology:
                        // without this, every round-trip can stall for
                        // tens of ms waiting for an ACK that is itself
                        // delayed. Latency protocol — disable batching.
                        let _ = stream.set_nodelay(true);
                        if shutdown.load(Ordering::SeqCst) {
                            break; // woken by the loopback nudge
                        }
                        // With every slot taken this waits for one to
                        // free up — back-pressure at the door — but
                        // still aborts on shutdown: permit releases and
                        // `Slots::close` both wake the wait.
                        let Some(permit) = slots.acquire(&shutdown) else {
                            break;
                        };
                        served += 1;
                        let serving = Arc::clone(&serving);
                        let shutdown = Arc::clone(&shutdown);
                        let spawned =
                            thread::Builder::new()
                                .name("glodyne-conn".into())
                                .spawn(move || {
                                    let _permit = permit;
                                    let _ = handle_connection(
                                        stream, &serving, &shutdown, local, policy,
                                    );
                                });
                        // Spawn failure (resource exhaustion): the
                        // permit inside the closure was moved and is
                        // released with the dropped closure; just stop
                        // serving this connection.
                        drop(spawned);
                    }
                    served
                })
                .expect("spawn accept thread")
        };
        let probe = Server::spawn_probe(&serving, &shutdown, cfg.probe);
        Ok(Server {
            addr: local,
            backend: serving,
            shutdown,
            slots,
            accept: Some(accept),
            probe,
        })
    }

    /// Start the background quality probe when telemetry, probe
    /// settings, and ANN are all present. The probe only ever clones
    /// published epoch `Arc`s — the same read path queries take — so a
    /// round in flight never blocks the trainer or a request.
    fn spawn_probe(
        serving: &Arc<Backend>,
        shutdown: &Arc<AtomicBool>,
        settings: Option<ProbeSettings>,
    ) -> Option<JoinHandle<()>> {
        let settings = settings?;
        let telemetry = Arc::clone(serving.telemetry()?);
        // Without an index there is nothing approximate to measure.
        let nprobe = serving.ann()?.default_nprobe;
        telemetry.set_probe_k(settings.k);
        let serving = Arc::clone(serving);
        let shutdown = Arc::clone(shutdown);
        let handle = thread::Builder::new()
            .name("glodyne-probe".into())
            .spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    run_probe_round(&serving.probe_epochs(), &settings, nprobe, &telemetry);
                    // Sleep in short slices so shutdown stays prompt
                    // even with a long probe period.
                    let mut left = settings.period_ms;
                    while left > 0 && !shutdown.load(Ordering::SeqCst) {
                        let chunk = left.min(50);
                        thread::sleep(Duration::from_millis(chunk));
                        left -= chunk;
                    }
                }
            })
            .expect("spawn probe thread");
        Some(handle)
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The unsharded serving session, when this server runs one
    /// (host-side stats, tests); `None` in sharded mode.
    pub fn session(&self) -> Option<&ServingSession> {
        match &*self.backend {
            Backend::Single(s) => Some(s),
            Backend::Sharded(_) => None,
        }
    }

    /// The sharded session, when this server runs one; `None` in
    /// unsharded mode.
    pub fn sharded(&self) -> Option<&ShardedSession> {
        match &*self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(s) => Some(s),
        }
    }

    /// Host-side serving counters — works in both modes.
    pub fn stats(&self) -> ServeStats {
        self.backend.stats()
    }

    /// Flip the shutdown flag and wake the accept loop — the host-side
    /// equivalent of the wire `shutdown` command.
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.shutdown, self.addr);
        // The accept loop may be parked in `Slots::acquire` rather than
        // `accept()`; close the semaphore so it observes the flag
        // without waiting for a permit to free up.
        self.slots.close();
    }

    /// Block until the server shuts down (via the wire command or
    /// [`Server::request_shutdown`]), then stop the trainer. Returns
    /// the number of connections accepted over the server's lifetime.
    pub fn join(mut self) -> u64 {
        let served = match self.accept.take() {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        };
        if let Some(handle) = self.probe.take() {
            let _ = handle.join();
        }
        self.backend.stop();
        served
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.request_shutdown();
            let _ = handle.join();
        }
        if let Some(handle) = self.probe.take() {
            let _ = handle.join();
        }
        self.backend.stop();
    }
}

fn initiate_shutdown(flag: &AtomicBool, addr: SocketAddr) {
    flag.store(true, Ordering::SeqCst);
    // Nudge the blocking accept() so it observes the flag. A wildcard
    // bind (0.0.0.0 / ::) is not itself connectable everywhere; aim
    // the nudge at loopback on the same port instead.
    let mut nudge = addr;
    if nudge.ip().is_unspecified() {
        nudge.set_ip(match nudge.ip() {
            std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
            std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
        });
    }
    let _ = TcpStream::connect(nudge);
}

/// A counting semaphore over connection slots.
struct Slots {
    free: Mutex<usize>,
    cv: Condvar,
}

impl Slots {
    fn new(n: usize) -> Self {
        Slots {
            free: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Wait for a free slot; `None` once shutdown is requested. The
    /// wait is a plain (untimed) condvar park: every permit release
    /// notifies it, and shutdown paths that can't release a permit call
    /// [`Slots::close`] — no polling.
    fn acquire(self: &Arc<Self>, shutdown: &AtomicBool) -> Option<SlotPermit> {
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if *free > 0 {
                break;
            }
            free = self.cv.wait(free).unwrap_or_else(PoisonError::into_inner);
        }
        *free -= 1;
        Some(SlotPermit(Arc::clone(self)))
    }

    /// Wake every waiter so it re-checks the shutdown flag. Callers
    /// set the flag *before* closing; taking the slot mutex here orders
    /// this notify after any in-flight flag check, so a waiter can't
    /// slip past both and park forever.
    fn close(&self) {
        let _free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        self.cv.notify_all();
    }
}

/// RAII connection slot; freed when the connection thread exits.
struct SlotPermit(Arc<Slots>);

impl Drop for SlotPermit {
    fn drop(&mut self) {
        *self.0.free.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        self.0.cv.notify_one();
    }
}

/// One request line read off the socket.
enum LineRead {
    /// A complete line (newline stripped, `\r\n` tolerated).
    Data(Vec<u8>),
    /// The line exceeded the cap and was discarded up to its newline.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Read one `\n`-terminated line without ever buffering more than
/// `max` bytes of it.
fn read_line_limited<R: BufRead>(reader: &mut R, max: usize) -> io::Result<LineRead> {
    let mut acc: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF: a dangling unterminated line still gets parsed (nc
            // sessions often end without a final newline).
            return Ok(if acc.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Data(acc)
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let fits = acc.len() + pos <= max;
                if fits {
                    acc.extend_from_slice(&buf[..pos]);
                }
                reader.consume(pos + 1);
                if !fits {
                    return Ok(LineRead::Oversized);
                }
                if acc.last() == Some(&b'\r') {
                    acc.pop();
                }
                return Ok(LineRead::Data(acc));
            }
            None => {
                let n = buf.len();
                if acc.len() + n > max {
                    reader.consume(n);
                    drain_past_newline(reader)?;
                    return Ok(LineRead::Oversized);
                }
                acc.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Discard input up to and including the next newline (or EOF).
fn drain_past_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    serving: &Backend,
    shutdown: &AtomicBool,
    local: SocketAddr,
    policy: ConnPolicy,
) -> io::Result<()> {
    // Slow-consumer guard: a client that stops reading its responses
    // eventually fills the socket buffer; the timeout turns that from a
    // permanently pinned slot into a dropped connection.
    stream.set_write_timeout(policy.write_timeout)?;
    let max_line = policy.max_line;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        glodyne_chaos::fail_io(glodyne_chaos::sites::SOCKET_READ)?;
        let line = match read_line_limited(&mut reader, max_line)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => {
                respond(
                    &mut writer,
                    &protocol::error_line(&ProtocolError {
                        kind: ErrorKind::TooLarge,
                        message: format!("request line exceeds {max_line} bytes"),
                    }),
                )?;
                continue;
            }
            LineRead::Data(bytes) => bytes,
        };
        let Ok(text) = std::str::from_utf8(&line) else {
            respond(
                &mut writer,
                &protocol::error_line(&ProtocolError::bad("request is not valid utf-8")),
            )?;
            continue;
        };
        if text.trim().is_empty() {
            continue; // blank lines are telnet-friendly no-ops
        }
        let request = match protocol::parse_request(text) {
            Ok(request) => request,
            Err(e) => {
                respond(&mut writer, &protocol::error_line(&e))?;
                continue;
            }
        };
        let wants_shutdown = request == Request::Shutdown;
        let wire = wire_command(&request);
        let started = Instant::now();
        let response = dispatch(request, serving, shutdown, policy);
        if let (Some(telemetry), Some((cmd, nodes))) = (serving.telemetry(), wire) {
            telemetry.observe_request(
                cmd,
                nodes,
                serving.epoch_id(),
                started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            );
        }
        respond(&mut writer, &response)?;
        if wants_shutdown {
            initiate_shutdown(shutdown, local);
            return Ok(());
        }
    }
}

fn respond(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    glodyne_chaos::fail_io(glodyne_chaos::sites::SOCKET_WRITE)?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Turn one request into one response line.
fn dispatch(
    request: Request,
    serving: &Backend,
    shutdown: &AtomicBool,
    policy: ConnPolicy,
) -> String {
    match request {
        Request::Query { node } => {
            // The backend resolves the lookup and the reported epoch id
            // from one frozen view, even mid-publish.
            match serving.query(node) {
                (epoch, Some(v)) => protocol::query_line(epoch, node, &v),
                (epoch, None) => not_found(node, epoch),
            }
        }
        Request::Nearest { node, k, mode } => match mode {
            NearestMode::Exact => match serving.nearest_exact(node, k) {
                (epoch, Some(neighbours)) => protocol::nearest_line(epoch, node, &neighbours),
                (epoch, None) => not_found(node, epoch),
            },
            NearestMode::Ann { nprobe } => {
                // The echoed probe width is what the scan *used*
                // (clamped), not the raw request — clients tune
                // recall/latency off this.
                match serving.nearest_ann(node, k, nprobe) {
                    Some((epoch, Some(neighbours), effective)) => {
                        protocol::nearest_ann_line(epoch, node, &neighbours, effective)
                    }
                    Some((epoch, None, _)) => not_found(node, epoch),
                    None => protocol::error_line(&ProtocolError {
                        kind: ErrorKind::Unavailable,
                        message: "ann index is not enabled on this server (start with --ann)"
                            .into(),
                    }),
                }
            }
        },
        Request::NearestBatch { nodes, k, mode } => match mode {
            NearestMode::Exact => {
                let (epoch, results) = serving.nearest_batch(&nodes, k);
                protocol::nearest_batch_line(epoch, &nodes, &results, None)
            }
            NearestMode::Ann { nprobe } => match serving.nearest_batch_ann(&nodes, k, nprobe) {
                Some((epoch, results, effective)) => {
                    protocol::nearest_batch_line(epoch, &nodes, &results, Some(effective))
                }
                None => protocol::error_line(&ProtocolError {
                    kind: ErrorKind::Unavailable,
                    message: "ann index is not enabled on this server (start with --ann)".into(),
                }),
            },
        },
        Request::Ingest {
            events,
            deadline_ms,
        } => {
            if shutdown.load(Ordering::SeqCst) {
                return shutting_down();
            }
            if let Some(line) = degraded_write_rejection(serving) {
                return line;
            }
            let deadline = write_deadline(deadline_ms, policy);
            let result = match deadline {
                Some(at) => serving.ingest_deadline(&events, at),
                None if policy.fast_fail => serving.ingest_fast_fail(&events),
                None => serving.ingest(&events),
            };
            match result {
                Ok(accepted) => protocol::ingest_line(accepted),
                Err(e) => write_error_line(e, serving),
            }
        }
        Request::Flush { deadline_ms } => {
            if shutdown.load(Ordering::SeqCst) {
                return shutting_down();
            }
            if let Some(line) = degraded_write_rejection(serving) {
                return line;
            }
            let result = match write_deadline(deadline_ms, policy) {
                Some(at) => serving.flush_deadline(at),
                None => serving.flush(),
            };
            match result {
                Ok(outcome) => protocol::flush_line(outcome),
                Err(e) => write_error_line(e, serving),
            }
        }
        Request::Stats => protocol::stats_line(&serving.stats()),
        Request::Metrics => match serving.telemetry() {
            Some(telemetry) => {
                // `stats()` refreshes the queue gauges as a side effect
                // of snapshotting telemetry, so the scrape sees live
                // depth/high-water values.
                let _ = serving.stats();
                telemetry.render_prometheus().trim_end().to_string()
            }
            None => protocol::error_line(&ProtocolError {
                kind: ErrorKind::Unavailable,
                message: "telemetry is not enabled on this server (start with --telemetry)".into(),
            }),
        },
        Request::Shutdown => protocol::shutdown_line(),
    }
}

/// The telemetry name and touched-node count of a request, `None` for
/// ops without a wire-latency series (`metrics` itself, `shutdown`).
fn wire_command(request: &Request) -> Option<(&'static str, usize)> {
    match request {
        Request::Query { .. } => Some(("query", 1)),
        Request::Nearest { .. } => Some(("nearest", 1)),
        Request::NearestBatch { nodes, .. } => Some(("nearest_batch", nodes.len())),
        Request::Ingest { events, .. } => Some(("ingest", events.len())),
        Request::Flush { .. } => Some(("flush", 0)),
        Request::Stats => Some(("stats", 0)),
        Request::Metrics | Request::Shutdown => None,
    }
}

/// The effective deadline of a write request: the request's own
/// `deadline_ms`, else the server default, else none.
fn write_deadline(deadline_ms: Option<u64>, policy: ConnPolicy) -> Option<Instant> {
    deadline_ms
        .or(policy.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms))
}

/// `Some(error line)` when the watchdog says writes must be refused.
/// Blocking an ingest behind a stalled trainer would park the
/// connection thread (and, on a full queue, every later writer)
/// indefinitely; failing fast keeps the error structured and the
/// reader path untouched.
fn degraded_write_rejection(serving: &Backend) -> Option<String> {
    let health = serving.health();
    if !health.degraded {
        return None;
    }
    Some(protocol::error_line(&ProtocolError {
        kind: ErrorKind::Degraded,
        message: if health.trainer_alive {
            format!(
                "trainer stalled for {}ms with {} uncommitted flush(es); \
                 reads still serve the last published epoch",
                health.stalled_ms, health.stale_epochs
            )
        } else {
            "trainer is gone; reads still serve the last published epoch".into()
        },
    }))
}

/// Map a write-path [`ServeError`] to its structured wire error.
fn write_error_line(e: ServeError, serving: &Backend) -> String {
    match e {
        // A closed trainer channel is graceful shutdown *or* a dead
        // trainer thread; the watchdog tells them apart.
        ServeError::Closed => {
            if serving.health().trainer_alive {
                shutting_down()
            } else {
                degraded_write_rejection(serving).unwrap_or_else(shutting_down)
            }
        }
        ServeError::Overloaded { depth, capacity } => protocol::error_line(&ProtocolError {
            kind: ErrorKind::Overloaded,
            message: format!("ingest queue overloaded ({depth}/{capacity}); retry with backoff"),
        }),
        ServeError::DeadlineExceeded => protocol::error_line(&ProtocolError {
            kind: ErrorKind::DeadlineExceeded,
            message: "deadline exceeded before the write completed".into(),
        }),
        e => protocol::error_line(&ProtocolError::bad(e.to_string())),
    }
}

fn not_found(node: glodyne_graph::NodeId, epoch: u64) -> String {
    protocol::error_line(&ProtocolError {
        kind: ErrorKind::NotFound,
        message: format!("node {} has no embedding in epoch {epoch}", node.0),
    })
}

fn shutting_down() -> String {
    protocol::error_line(&ProtocolError {
        kind: ErrorKind::ShuttingDown,
        message: "server is shutting down; writes are no longer accepted".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn line(input: &[u8], max: usize) -> (LineRead, Cursor<Vec<u8>>) {
        let mut cur = Cursor::new(input.to_vec());
        let mut reader = BufReader::with_capacity(4, &mut cur); // tiny buffer: force refills
        let out = read_line_limited(&mut reader, max).unwrap();
        drop(reader);
        (out, cur)
    }

    #[test]
    fn reads_lines_and_strips_terminators() {
        let (l, _) = line(b"hello\nrest", 100);
        assert!(matches!(l, LineRead::Data(d) if d == b"hello"));
        let (l, _) = line(b"crlf\r\nx", 100);
        assert!(matches!(l, LineRead::Data(d) if d == b"crlf"));
        let (l, _) = line(b"", 100);
        assert!(matches!(l, LineRead::Eof));
        let (l, _) = line(b"no newline at eof", 100);
        assert!(matches!(l, LineRead::Data(d) if d == b"no newline at eof"));
    }

    #[test]
    fn oversized_lines_are_discarded_and_resync() {
        let input = b"aaaaaaaaaaaaaaaaaaaa\nnext\n";
        let mut cur = Cursor::new(input.to_vec());
        let mut reader = BufReader::with_capacity(4, &mut cur);
        assert!(matches!(
            read_line_limited(&mut reader, 8).unwrap(),
            LineRead::Oversized
        ));
        // The stream resynchronises on the following line.
        assert!(matches!(
            read_line_limited(&mut reader, 8).unwrap(),
            LineRead::Data(d) if d == b"next"
        ));
        // Oversized with no trailing newline at all: clean EOF after.
        let (l, _) = line(b"bbbbbbbbbbbbbbbbbb", 4);
        assert!(matches!(l, LineRead::Oversized));
    }

    #[test]
    fn exact_cap_is_not_oversized() {
        let (l, _) = line(b"12345678\n", 8);
        assert!(matches!(l, LineRead::Data(d) if d == b"12345678"));
        let (l, _) = line(b"123456789\n", 8);
        assert!(matches!(l, LineRead::Oversized));
    }

    #[test]
    fn slots_bound_concurrency() {
        let shutdown = Arc::new(AtomicBool::new(false));
        let slots = Arc::new(Slots::new(2));
        let a = slots.acquire(&shutdown).unwrap();
        let _b = slots.acquire(&shutdown).unwrap();
        let taken = Arc::new(AtomicBool::new(false));
        let waiter = {
            let slots = Arc::clone(&slots);
            let taken = Arc::clone(&taken);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                let _c = slots.acquire(&shutdown);
                taken.store(true, Ordering::SeqCst);
            })
        };
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(!taken.load(Ordering::SeqCst), "third acquire must wait");
        drop(a);
        waiter.join().unwrap();
        assert!(taken.load(Ordering::SeqCst));
    }

    #[test]
    fn exhausted_slots_abort_acquire_on_shutdown() {
        let shutdown = Arc::new(AtomicBool::new(false));
        let slots = Arc::new(Slots::new(1));
        let _held = slots.acquire(&shutdown).unwrap();
        let waiter = {
            let slots = Arc::clone(&slots);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || slots.acquire(&shutdown).is_none())
        };
        thread::sleep(std::time::Duration::from_millis(30));
        // The permit is still held; the waiter parks untimed, so the
        // flag flip must be followed by an explicit close() wake.
        shutdown.store(true, Ordering::SeqCst);
        slots.close();
        assert!(
            waiter.join().unwrap(),
            "acquire must yield None on shutdown instead of waiting for the permit"
        );
    }

    #[test]
    fn released_permit_wakes_a_waiter_that_then_sees_shutdown() {
        // The wire-shutdown path has no Slots reference: the shutting
        // connection's own permit release is what wakes the acquire,
        // which must then observe the flag instead of taking the slot
        // blindly... unless a slot is genuinely free, in which case the
        // flag still wins (checked first).
        let shutdown = Arc::new(AtomicBool::new(false));
        let slots = Arc::new(Slots::new(1));
        let held = slots.acquire(&shutdown).unwrap();
        let waiter = {
            let slots = Arc::clone(&slots);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || slots.acquire(&shutdown).is_none())
        };
        thread::sleep(std::time::Duration::from_millis(30));
        shutdown.store(true, Ordering::SeqCst);
        drop(held); // permit release is the only wake-up
        assert!(
            waiter.join().unwrap(),
            "a woken waiter must re-check the shutdown flag before taking the freed slot"
        );
    }
}
