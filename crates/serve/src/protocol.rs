//! The line-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line with a `"cmd"` field;
//! every response is one JSON object on one line with an `"ok"` field.
//! Failures come back structured — `{"ok":false,"kind":...,"error":...}`
//! — and never tear down the connection (except `shutdown`, which ends
//! the whole server).
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"query","node":5}` | `{"ok":true,"cmd":"query","epoch":2,"node":5,"vector":[...]}` |
//! | `{"cmd":"nearest","node":5,"k":3}` | `{"ok":true,"cmd":"nearest","epoch":2,"node":5,"mode":"exact","neighbours":[[7,0.93],...]}` |
//! | `{"cmd":"nearest","node":5,"k":3,"mode":"ann","nprobe":4}` | `{"ok":true,"cmd":"nearest","epoch":2,"node":5,"mode":"ann","nprobe":4,"neighbours":[[7,0.93],...]}` |
//! | `{"cmd":"nearest_batch","nodes":[5,9],"k":3}` | `{"ok":true,"cmd":"nearest_batch","epoch":2,"mode":"exact","results":[{"node":5,"neighbours":[[7,0.93],...]},{"node":9,"neighbours":null}]}` |
//! | `{"cmd":"ingest","edges":[[0,1,3],...]}` | `{"ok":true,"cmd":"ingest","accepted":N}` |
//! | `{"cmd":"ingest","events":[{"op":"remove_node","node":4,"t":9},...]}` | same |
//! | `{"cmd":"flush"}` | `{"ok":true,"cmd":"flush","stepped":true,"epoch":3}` |
//! | `{"cmd":"stats"}` | `{"ok":true,"cmd":"stats","epoch":3,"nodes":...,...}` |
//! | `{"cmd":"metrics"}` | Prometheus text exposition (multi-line, **not** JSON; `unavailable` error when telemetry is off) |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"cmd":"shutdown"}` then the server drains and exits |
//!
//! Reads (`query`/`nearest`) are answered from the most recently
//! *published* epoch, which may lag the write path by exactly the step
//! currently training (see the crate docs' consistency model).
//!
//! Overload control: `ingest` and `flush` accept an optional
//! `deadline_ms`; a request that cannot complete in time fails with
//! `kind:"deadline_exceeded"`. A server in fast-fail mode sheds full
//! queues with `kind:"overloaded"` instead of blocking, and a stalled
//! or dead trainer turns writes into `kind:"degraded"` while reads
//! keep answering from the last published epoch (see the `stats`
//! response's `health` object).

use crate::json::{self, Json};
use crate::queue::FlushOutcome;
use crate::session::ServeStats;
use crate::telemetry::TelemetryStats;
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use glodyne_telemetry::HistogramSnapshot;
use std::fmt;

/// Cap on one request line; longer lines are rejected with a
/// `too_large` error without buffering the payload.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Default `k` for `nearest` when the request omits it.
pub const DEFAULT_K: usize = 10;

/// Maximum events accepted in a single `ingest` request (more must be
/// split across requests, keeping any one queue reservation bounded).
pub const MAX_INGEST_EVENTS: usize = 65_536;

/// Maximum probe nodes in a single `nearest_batch` request. The batch
/// answers from one frozen epoch, so an unbounded batch would pin that
/// epoch (and its index) for an unbounded scan.
pub const MAX_BATCH_NODES: usize = 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The embedding vector of one node.
    Query {
        /// The node to look up.
        node: NodeId,
    },
    /// The `k` cosine-nearest neighbours of one node.
    Nearest {
        /// The probe node.
        node: NodeId,
        /// How many neighbours to return.
        k: usize,
        /// Exhaustive scan or IVF probe (`"mode"` field; exact when
        /// omitted, so pre-ANN clients are untouched).
        mode: NearestMode,
    },
    /// The `k` cosine-nearest neighbours of many nodes, answered from
    /// **one** frozen epoch with one fan-out/scan setup for the whole
    /// batch.
    NearestBatch {
        /// The probe nodes, in request order.
        nodes: Vec<NodeId>,
        /// How many neighbours to return per probe.
        k: usize,
        /// Same mode semantics as [`Request::Nearest`].
        mode: NearestMode,
    },
    /// Enqueue graph events for the trainer (back-pressured).
    Ingest {
        /// Events in arrival order.
        events: Vec<GraphEvent>,
        /// Per-request deadline (`"deadline_ms"` field): wait at most
        /// this long for queue headroom before answering
        /// `deadline_exceeded`. `None` follows the server's overload
        /// policy (block, or fast-fail when the server runs with
        /// `fast_fail` on).
        deadline_ms: Option<u64>,
    },
    /// Commit pending events as an epoch boundary and wait for the step.
    Flush {
        /// Per-request deadline (`"deadline_ms"` field): wait at most
        /// this long for the trainer's commit acknowledgement. The
        /// flush stays queued if the deadline fires first.
        deadline_ms: Option<u64>,
    },
    /// Serving counters and the current epoch id.
    Stats,
    /// Prometheus text exposition of every telemetry series. The only
    /// non-JSON response in the protocol — raw multi-line text, so
    /// `nc host port <<< '{"cmd":"metrics"}'` is a scrape.
    Metrics,
    /// Graceful shutdown sentinel: stop accepting, stop the trainer.
    Shutdown,
}

/// How a `nearest` request scans the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NearestMode {
    /// Exhaustive scan over every embedded node (the default; bit-exact
    /// with `reference_top_k`).
    Exact,
    /// IVF probe of the `nprobe` most similar coarse cells; the server
    /// default applies when `nprobe` is `None`. Only valid on a server
    /// started with ANN enabled.
    Ann {
        /// Requested probe width, if the client named one.
        nprobe: Option<usize>,
    },
}

/// Machine-readable failure class, serialised into the `kind` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON or a request that doesn't fit the schema.
    BadRequest,
    /// The named node has no embedding in the served epoch.
    NotFound,
    /// The request line exceeded [`MAX_LINE_BYTES`].
    TooLarge,
    /// The session is shutting down; writes are no longer accepted.
    ShuttingDown,
    /// The request needs a capability this server wasn't started with
    /// (e.g. ANN mode without an index).
    Unavailable,
    /// The ingest queue is full and the server is shedding load
    /// instead of blocking; retry with backoff.
    Overloaded,
    /// The request's `deadline_ms` elapsed before the work completed.
    DeadlineExceeded,
    /// The trainer is stalled or gone; reads still answer from the
    /// last published epoch, writes are refused until it recovers.
    Degraded,
}

impl ErrorKind {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::NotFound => "not_found",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Degraded => "degraded",
        }
    }
}

/// A structured request failure, rendered with [`error_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Failure class.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// A `bad_request` error.
    pub fn bad(message: impl Into<String>) -> Self {
        ProtocolError {
            kind: ErrorKind::BadRequest,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let value = json::parse(line).map_err(|e| ProtocolError::bad(format!("invalid json: {e}")))?;
    let Json::Obj(_) = value else {
        return Err(ProtocolError::bad("request must be a json object"));
    };
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::bad("missing string field `cmd`"))?;
    match cmd {
        "query" => Ok(Request::Query {
            node: node_field(&value, "node")?,
        }),
        "nearest" => {
            let node = node_field(&value, "node")?;
            let (k, mode) = parse_k_and_mode(&value)?;
            Ok(Request::Nearest { node, k, mode })
        }
        "nearest_batch" => {
            let nodes = match value.get("nodes") {
                // A client porting from single `nearest` keeps its old
                // `node` field: name the fix, don't just say "missing".
                None if value.get("node").is_some() => {
                    return Err(ProtocolError::bad(
                        "nearest_batch takes a `nodes` array, not `node` \
                         (use cmd \"nearest\" for a single probe)",
                    ))
                }
                None => return Err(ProtocolError::bad("missing `nodes` array")),
                Some(v) => {
                    let arr = v
                        .as_arr()
                        .ok_or_else(|| ProtocolError::bad("`nodes` must be an array"))?;
                    if arr.len() > MAX_BATCH_NODES {
                        return Err(ProtocolError::bad(format!(
                            "batch of {} probes exceeds the {MAX_BATCH_NODES}-node cap; \
                             split the request",
                            arr.len()
                        )));
                    }
                    arr.iter()
                        .enumerate()
                        .map(|(i, n)| {
                            n.as_u64()
                                .filter(|&n| n <= u32::MAX as u64)
                                .map(|n| NodeId(n as u32))
                                .ok_or_else(|| {
                                    ProtocolError::bad(format!(
                                        "nodes[{i}] must be an integer node id (u32)"
                                    ))
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?
                }
            };
            let (k, mode) = parse_k_and_mode(&value)?;
            Ok(Request::NearestBatch { nodes, k, mode })
        }
        "ingest" => parse_ingest(&value),
        "flush" => Ok(Request::Flush {
            deadline_ms: parse_deadline(&value)?,
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::bad(format!(
            "unknown cmd `{other}` (expected query, nearest, nearest_batch, ingest, flush, \
             stats, metrics, or shutdown)"
        ))),
    }
}

/// The `k`/`mode`/`nprobe` trio shared by `nearest` and
/// `nearest_batch` — one parser, so the two commands cannot drift.
fn parse_k_and_mode(value: &Json) -> Result<(usize, NearestMode), ProtocolError> {
    let k = match value.get("k") {
        None => DEFAULT_K,
        Some(v) => v
            .as_u64()
            .filter(|&k| k >= 1)
            .ok_or_else(|| ProtocolError::bad("`k` must be a positive integer"))?
            .min(usize::MAX as u64) as usize,
    };
    let nprobe = match value.get("nprobe") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&n| n >= 1)
                .ok_or_else(|| ProtocolError::bad("`nprobe` must be a positive integer"))?
                .min(usize::MAX as u64) as usize,
        ),
    };
    let mode = match value.get("mode").map(|m| (m, m.as_str())) {
        None => NearestMode::Exact,
        Some((_, Some("exact"))) => NearestMode::Exact,
        Some((_, Some("ann"))) => NearestMode::Ann { nprobe },
        Some(_) => return Err(ProtocolError::bad("`mode` must be \"exact\" or \"ann\"")),
    };
    if nprobe.is_some() && mode == NearestMode::Exact {
        // Silently ignoring it would hide a client that thinks
        // it is getting approximate answers cheaper.
        return Err(ProtocolError::bad(
            "`nprobe` only applies to \"mode\":\"ann\"",
        ));
    }
    Ok((k, mode))
}

fn node_field(value: &Json, key: &str) -> Result<NodeId, ProtocolError> {
    let id = value
        .get(key)
        .and_then(Json::as_u64)
        .filter(|&n| n <= u32::MAX as u64)
        .ok_or_else(|| ProtocolError::bad(format!("`{key}` must be an integer node id (u32)")))?;
    Ok(NodeId(id as u32))
}

fn parse_ingest(value: &Json) -> Result<Request, ProtocolError> {
    let mut events = Vec::new();
    match (value.get("edges"), value.get("events")) {
        (None, None) => {
            return Err(ProtocolError::bad(
                "ingest needs `edges` ([[u,v,t],...]) or `events` ([{op,...},...])",
            ))
        }
        // Accepting one and silently dropping the other would let the
        // graph diverge from what the client believes it ingested.
        (Some(_), Some(_)) => {
            return Err(ProtocolError::bad(
                "ingest takes `edges` or `events`, not both",
            ))
        }
        (Some(edges), None) => {
            let edges = edges
                .as_arr()
                .ok_or_else(|| ProtocolError::bad("`edges` must be an array"))?;
            check_batch(edges.len())?;
            for (i, e) in edges.iter().enumerate() {
                let triple = e
                    .as_arr()
                    .filter(|t| t.len() == 2 || t.len() == 3)
                    .ok_or_else(|| {
                        ProtocolError::bad(format!("edges[{i}] must be [u,v] or [u,v,t]"))
                    })?;
                let u = elem_u32(triple, 0, i)?;
                let v = elem_u32(triple, 1, i)?;
                let t = match triple.get(2) {
                    None => 0,
                    Some(t) => t.as_u64().ok_or_else(|| {
                        ProtocolError::bad(format!("edges[{i}][2] must be a timestamp"))
                    })?,
                };
                events.push(GraphEvent::add_edge(NodeId(u), NodeId(v), t));
            }
        }
        (None, Some(list)) => {
            let list = list
                .as_arr()
                .ok_or_else(|| ProtocolError::bad("`events` must be an array"))?;
            check_batch(list.len())?;
            for (i, ev) in list.iter().enumerate() {
                events.push(parse_event(ev, i)?);
            }
        }
    }
    Ok(Request::Ingest {
        events,
        deadline_ms: parse_deadline(value)?,
    })
}

/// The optional `deadline_ms` field shared by `ingest` and `flush`.
/// Zero is rejected — it would mean "fail unless already done", which
/// a client really asking for fast-fail spells via the server's
/// overload mode, not a degenerate deadline.
fn parse_deadline(value: &Json) -> Result<Option<u64>, ProtocolError> {
    match value.get("deadline_ms") {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .filter(|&ms| ms >= 1)
            .map(Some)
            .ok_or_else(|| ProtocolError::bad("`deadline_ms` must be a positive integer")),
    }
}

fn check_batch(len: usize) -> Result<(), ProtocolError> {
    if len > MAX_INGEST_EVENTS {
        return Err(ProtocolError::bad(format!(
            "ingest batch of {len} exceeds the {MAX_INGEST_EVENTS}-event cap; split the request"
        )));
    }
    Ok(())
}

fn elem_u32(arr: &[Json], idx: usize, at: usize) -> Result<u32, ProtocolError> {
    arr.get(idx)
        .and_then(Json::as_u64)
        .filter(|&n| n <= u32::MAX as u64)
        .map(|n| n as u32)
        .ok_or_else(|| ProtocolError::bad(format!("edges[{at}][{idx}] must be a node id (u32)")))
}

fn parse_event(ev: &Json, i: usize) -> Result<GraphEvent, ProtocolError> {
    let op = ev
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::bad(format!("events[{i}] needs a string `op`")))?;
    let t = match ev.get("t") {
        None => 0,
        Some(t) => t
            .as_u64()
            .ok_or_else(|| ProtocolError::bad(format!("events[{i}].t must be a timestamp")))?,
    };
    let field = |key: &str| -> Result<NodeId, ProtocolError> {
        let n = ev
            .get(key)
            .and_then(Json::as_u64)
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| {
                ProtocolError::bad(format!("events[{i}].{key} must be a node id (u32)"))
            })?;
        Ok(NodeId(n as u32))
    };
    match op {
        "add" | "add_edge" => Ok(GraphEvent::add_edge(field("u")?, field("v")?, t)),
        "remove_edge" => Ok(GraphEvent::remove_edge(field("u")?, field("v")?, t)),
        "remove_node" => Ok(GraphEvent::remove_node(field("node")?, t)),
        other => Err(ProtocolError::bad(format!(
            "events[{i}]: unknown op `{other}` (expected add, remove_edge, or remove_node)"
        ))),
    }
}

// ---- response rendering (one line each, no trailing newline) ----

fn ok_obj(cmd: &str, rest: Vec<(String, Json)>) -> String {
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("cmd".to_string(), Json::Str(cmd.to_string())),
    ];
    pairs.extend(rest);
    Json::Obj(pairs).to_string()
}

/// Render a structured failure.
pub fn error_line(err: &ProtocolError) -> String {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("kind".to_string(), Json::Str(err.kind.as_str().to_string())),
        ("error".to_string(), Json::Str(err.message.clone())),
    ])
    .to_string()
}

/// Render a successful `query`.
pub fn query_line(epoch: u64, node: NodeId, vector: &[f32]) -> String {
    ok_obj(
        "query",
        vec![
            ("epoch".to_string(), Json::Num(epoch as f64)),
            ("node".to_string(), Json::Num(node.0 as f64)),
            (
                "vector".to_string(),
                Json::Arr(vector.iter().map(|&x| Json::num_f32(x)).collect()),
            ),
        ],
    )
}

/// Render a successful exact-mode `nearest`.
pub fn nearest_line(epoch: u64, node: NodeId, neighbours: &[(NodeId, f32)]) -> String {
    nearest_line_with(epoch, node, neighbours, None)
}

/// Render a successful ANN-mode `nearest`, echoing the effective
/// `nprobe` the scan used.
pub fn nearest_ann_line(
    epoch: u64,
    node: NodeId,
    neighbours: &[(NodeId, f32)],
    nprobe: usize,
) -> String {
    nearest_line_with(epoch, node, neighbours, Some(nprobe))
}

fn nearest_line_with(
    epoch: u64,
    node: NodeId,
    neighbours: &[(NodeId, f32)],
    nprobe: Option<usize>,
) -> String {
    let mut rest = vec![
        ("epoch".to_string(), Json::Num(epoch as f64)),
        ("node".to_string(), Json::Num(node.0 as f64)),
        (
            "mode".to_string(),
            Json::Str(if nprobe.is_some() { "ann" } else { "exact" }.to_string()),
        ),
    ];
    if let Some(nprobe) = nprobe {
        rest.push(("nprobe".to_string(), Json::Num(nprobe as f64)));
    }
    rest.push((
        "neighbours".to_string(),
        Json::Arr(
            neighbours
                .iter()
                .map(|&(id, sim)| Json::Arr(vec![Json::Num(id.0 as f64), Json::num_f32(sim)]))
                .collect(),
        ),
    ));
    ok_obj("nearest", rest)
}

/// Render a successful `nearest_batch`. `results` is positionally
/// parallel to `nodes`; a `None` entry renders as `"neighbours":null`
/// (the batch analogue of the single-path `not_found` — one unknown
/// probe must not fail its batchmates). `nprobe` is the effective probe
/// width in ANN mode, `None` in exact mode.
pub fn nearest_batch_line(
    epoch: u64,
    nodes: &[NodeId],
    results: &[Option<Vec<(NodeId, f32)>>],
    nprobe: Option<usize>,
) -> String {
    let mut rest = vec![
        ("epoch".to_string(), Json::Num(epoch as f64)),
        (
            "mode".to_string(),
            Json::Str(if nprobe.is_some() { "ann" } else { "exact" }.to_string()),
        ),
    ];
    if let Some(nprobe) = nprobe {
        rest.push(("nprobe".to_string(), Json::Num(nprobe as f64)));
    }
    rest.push((
        "results".to_string(),
        Json::Arr(
            nodes
                .iter()
                .zip(results)
                .map(|(&node, hits)| {
                    Json::Obj(vec![
                        ("node".to_string(), Json::Num(node.0 as f64)),
                        (
                            "neighbours".to_string(),
                            match hits {
                                None => Json::Null,
                                Some(hits) => Json::Arr(
                                    hits.iter()
                                        .map(|&(id, sim)| {
                                            Json::Arr(vec![
                                                Json::Num(id.0 as f64),
                                                Json::num_f32(sim),
                                            ])
                                        })
                                        .collect(),
                                ),
                            },
                        ),
                    ])
                })
                .collect(),
        ),
    ));
    ok_obj("nearest_batch", rest)
}

/// Render a successful `ingest`.
pub fn ingest_line(accepted: usize) -> String {
    ok_obj(
        "ingest",
        vec![("accepted".to_string(), Json::Num(accepted as f64))],
    )
}

/// Render a successful `flush`.
pub fn flush_line(outcome: FlushOutcome) -> String {
    ok_obj(
        "flush",
        vec![
            ("stepped".to_string(), Json::Bool(outcome.stepped)),
            ("epoch".to_string(), Json::Num(outcome.epoch as f64)),
        ],
    )
}

/// Render a successful `stats`.
pub fn stats_line(s: &ServeStats) -> String {
    ok_obj(
        "stats",
        vec![
            ("epoch".to_string(), Json::Num(s.epoch as f64)),
            ("nodes".to_string(), Json::Num(s.nodes as f64)),
            ("dim".to_string(), Json::Num(s.dim as f64)),
            ("queue_depth".to_string(), Json::Num(s.queue_depth as f64)),
            (
                "queue_capacity".to_string(),
                Json::Num(s.queue_capacity as f64),
            ),
            (
                "queue_high_water".to_string(),
                Json::Num(s.queue_high_water as f64),
            ),
            (
                "events_accepted".to_string(),
                Json::Num(s.events_accepted as f64),
            ),
            (
                "ann".to_string(),
                match &s.ann {
                    None => Json::Null,
                    Some(a) => Json::Obj(vec![
                        ("cells".to_string(), Json::Num(a.cells as f64)),
                        (
                            "nprobe_default".to_string(),
                            Json::Num(a.default_nprobe as f64),
                        ),
                        (
                            "build_ms".to_string(),
                            Json::Num(a.build.as_secs_f64() * 1e3),
                        ),
                        (
                            "storage".to_string(),
                            Json::Str(a.storage.as_str().to_string()),
                        ),
                        ("index_bytes".to_string(), Json::Num(a.index_bytes as f64)),
                        // Added keys go last: pre-existing clients
                        // parse the object's old prefix unchanged.
                        (
                            "build_kind".to_string(),
                            Json::Str(a.build_kind.to_string()),
                        ),
                        ("dirty_rows".to_string(), Json::Num(a.dirty_rows as f64)),
                    ]),
                },
            ),
            // Per-shard break-down; null on unsharded servers, so a
            // pre-sharding client that never reads the key parses the
            // response unchanged.
            (
                "shards".to_string(),
                match &s.shards {
                    None => Json::Null,
                    Some(shards) => Json::Arr(
                        shards
                            .iter()
                            .map(|sh| {
                                Json::Obj(vec![
                                    ("shard".to_string(), Json::Num(sh.shard as f64)),
                                    ("epoch".to_string(), Json::Num(sh.epoch as f64)),
                                    ("nodes".to_string(), Json::Num(sh.nodes as f64)),
                                    ("queue_depth".to_string(), Json::Num(sh.queue_depth as f64)),
                                    (
                                        "events_accepted".to_string(),
                                        Json::Num(sh.events_accepted as f64),
                                    ),
                                    (
                                        "ann_build_ms".to_string(),
                                        match sh.ann_build {
                                            None => Json::Null,
                                            Some(build) => Json::Num(build.as_secs_f64() * 1e3),
                                        },
                                    ),
                                    (
                                        "ann_build_kind".to_string(),
                                        match sh.ann_build_kind {
                                            None => Json::Null,
                                            Some(kind) => Json::Str(kind.to_string()),
                                        },
                                    ),
                                    (
                                        "ann_dirty_rows".to_string(),
                                        match sh.ann_dirty_rows {
                                            None => Json::Null,
                                            Some(rows) => Json::Num(rows as f64),
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                },
            ),
            // Durability counters; null on in-memory servers, so a
            // pre-durability client that never reads the key parses
            // the response unchanged.
            (
                "durability".to_string(),
                match &s.durability {
                    None => Json::Null,
                    Some(d) => Json::Obj(vec![
                        ("wal_segments".to_string(), Json::Num(d.wal_segments as f64)),
                        ("wal_bytes".to_string(), Json::Num(d.wal_bytes as f64)),
                        (
                            "last_snapshot_epoch".to_string(),
                            match d.last_snapshot_epoch {
                                None => Json::Null,
                                Some(epoch) => Json::Num(epoch as f64),
                            },
                        ),
                        (
                            "last_fsync_ms".to_string(),
                            match d.last_fsync_ms {
                                None => Json::Null,
                                Some(ms) => Json::Num(ms as f64),
                            },
                        ),
                        (
                            "recovered_from".to_string(),
                            match &d.recovered_from {
                                None => Json::Null,
                                Some(from) => Json::Str(from.clone()),
                            },
                        ),
                    ]),
                },
            ),
            // Telemetry snapshot; null when the server runs without
            // instrumentation, so a pre-telemetry client that never
            // reads the key parses the response unchanged.
            (
                "telemetry".to_string(),
                match &s.telemetry {
                    None => Json::Null,
                    Some(t) => telemetry_json(t),
                },
            ),
            // Trainer health verdict; null only on stats snapshots that
            // predate the watchdog, so older clients parse unchanged.
            (
                "health".to_string(),
                match &s.health {
                    None => Json::Null,
                    Some(h) => Json::Obj(vec![
                        ("degraded".to_string(), Json::Bool(h.degraded)),
                        ("trainer_alive".to_string(), Json::Bool(h.trainer_alive)),
                        ("stale_epochs".to_string(), Json::Num(h.stale_epochs as f64)),
                        ("stalled_ms".to_string(), Json::Num(h.stalled_ms as f64)),
                    ]),
                },
            ),
            // Rebalance throttle counters; null on unsharded servers,
            // same null-compat convention as `shards`.
            (
                "rebalance".to_string(),
                match &s.rebalance {
                    None => Json::Null,
                    Some(r) => Json::Obj(vec![
                        (
                            "rebalance_batches".to_string(),
                            Json::Num(r.rebalance_batches as f64),
                        ),
                        (
                            "migrated_nodes".to_string(),
                            Json::Num(r.migrated_nodes as f64),
                        ),
                        (
                            "pending_migrations".to_string(),
                            Json::Num(r.pending_migrations as f64),
                        ),
                    ]),
                },
            ),
        ],
    )
}

/// Histogram snapshot as a JSON object (all micros).
fn hist_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".to_string(), Json::Num(h.count as f64)),
        ("sum".to_string(), Json::Num(h.sum as f64)),
        ("max".to_string(), Json::Num(h.max as f64)),
        ("p50".to_string(), Json::Num(h.p50 as f64)),
        ("p90".to_string(), Json::Num(h.p90 as f64)),
        ("p99".to_string(), Json::Num(h.p99 as f64)),
    ])
}

/// The `"telemetry"` object of the `stats` response.
fn telemetry_json(t: &TelemetryStats) -> Json {
    Json::Obj(vec![
        ("queue_depth".to_string(), Json::Num(t.queue_depth as f64)),
        (
            "queue_high_water".to_string(),
            Json::Num(t.queue_high_water as f64),
        ),
        ("queue_wait_us".to_string(), hist_json(&t.queue_wait)),
        (
            "wire_latency_us".to_string(),
            Json::Obj(
                t.wire
                    .iter()
                    .map(|(cmd, h)| ((*cmd).to_string(), hist_json(h)))
                    .collect(),
            ),
        ),
        (
            "stage_us".to_string(),
            Json::Obj(
                t.stages
                    .iter()
                    .map(|(stage, h)| ((*stage).to_string(), hist_json(h)))
                    .collect(),
            ),
        ),
        ("freshness_lag_us".to_string(), hist_json(&t.freshness)),
        (
            "durability".to_string(),
            match &t.durability {
                None => Json::Null,
                Some(d) => Json::Obj(vec![
                    ("wal_append_us".to_string(), hist_json(&d.wal_append)),
                    ("wal_fsync_us".to_string(), hist_json(&d.wal_fsync)),
                    (
                        "snapshot_write_us".to_string(),
                        hist_json(&d.snapshot_write),
                    ),
                ]),
            },
        ),
        (
            "probe".to_string(),
            match &t.probe {
                None => Json::Null,
                Some(p) => Json::Obj(vec![
                    (
                        "recall".to_string(),
                        Json::Num(p.recall_bp as f64 / 10_000.0),
                    ),
                    ("k".to_string(), Json::Num(p.k as f64)),
                    ("runs".to_string(), Json::Num(p.runs as f64)),
                    ("latency_us".to_string(), hist_json(&p.latency)),
                ]),
            },
        ),
        (
            "slow_queries".to_string(),
            Json::Arr(
                t.slow
                    .iter()
                    .map(|q| {
                        Json::Obj(vec![
                            ("cmd".to_string(), Json::Str(q.cmd.to_string())),
                            ("nodes".to_string(), Json::Num(q.nodes as f64)),
                            ("epoch".to_string(), Json::Num(q.epoch as f64)),
                            ("micros".to_string(), Json::Num(q.micros as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Render a successful `shutdown` acknowledgement.
pub fn shutdown_line() -> String {
    ok_obj("shutdown", Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_request(r#"{"cmd":"query","node":7}"#).unwrap(),
            Request::Query { node: NodeId(7) }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"nearest","node":7}"#).unwrap(),
            Request::Nearest {
                node: NodeId(7),
                k: DEFAULT_K,
                mode: NearestMode::Exact
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"nearest","node":7,"k":3}"#).unwrap(),
            Request::Nearest {
                node: NodeId(7),
                k: 3,
                mode: NearestMode::Exact
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"flush"}"#).unwrap(),
            Request::Flush { deadline_ms: None }
        );
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn nearest_modes_parse() {
        assert_eq!(
            parse_request(r#"{"cmd":"nearest","node":7,"mode":"exact"}"#).unwrap(),
            Request::Nearest {
                node: NodeId(7),
                k: DEFAULT_K,
                mode: NearestMode::Exact
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"nearest","node":7,"mode":"ann"}"#).unwrap(),
            Request::Nearest {
                node: NodeId(7),
                k: DEFAULT_K,
                mode: NearestMode::Ann { nprobe: None }
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"nearest","node":7,"k":3,"mode":"ann","nprobe":4}"#).unwrap(),
            Request::Nearest {
                node: NodeId(7),
                k: 3,
                mode: NearestMode::Ann { nprobe: Some(4) }
            }
        );
        for bad in [
            r#"{"cmd":"nearest","node":7,"mode":"fuzzy"}"#,
            r#"{"cmd":"nearest","node":7,"mode":7}"#,
            r#"{"cmd":"nearest","node":7,"mode":"ann","nprobe":0}"#,
            r#"{"cmd":"nearest","node":7,"mode":"ann","nprobe":"all"}"#,
            // nprobe without (or against) ann mode is an explicit error,
            // not silently ignored.
            r#"{"cmd":"nearest","node":7,"nprobe":4}"#,
            r#"{"cmd":"nearest","node":7,"mode":"exact","nprobe":4}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn ingest_edges_and_events() {
        let r = parse_request(r#"{"cmd":"ingest","edges":[[0,1,3],[1,2]]}"#).unwrap();
        assert_eq!(
            r,
            Request::Ingest {
                events: vec![
                    GraphEvent::add_edge(NodeId(0), NodeId(1), 3),
                    GraphEvent::add_edge(NodeId(1), NodeId(2), 0),
                ],
                deadline_ms: None,
            }
        );
        let r = parse_request(
            r#"{"cmd":"ingest","events":[
                {"op":"add","u":0,"v":1,"t":1},
                {"op":"remove_edge","u":0,"v":1,"t":2},
                {"op":"remove_node","node":9,"t":3}]}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Ingest {
                events: vec![
                    GraphEvent::add_edge(NodeId(0), NodeId(1), 1),
                    GraphEvent::remove_edge(NodeId(0), NodeId(1), 2),
                    GraphEvent::remove_node(NodeId(9), 3),
                ],
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn deadlines_parse_on_ingest_and_flush() {
        assert_eq!(
            parse_request(r#"{"cmd":"ingest","edges":[[0,1]],"deadline_ms":250}"#).unwrap(),
            Request::Ingest {
                events: vec![GraphEvent::add_edge(NodeId(0), NodeId(1), 0)],
                deadline_ms: Some(250),
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"flush","deadline_ms":1000}"#).unwrap(),
            Request::Flush {
                deadline_ms: Some(1000),
            }
        );
        for bad in [
            r#"{"cmd":"flush","deadline_ms":0}"#,
            r#"{"cmd":"flush","deadline_ms":-5}"#,
            r#"{"cmd":"flush","deadline_ms":"soon"}"#,
            r#"{"cmd":"ingest","edges":[[0,1]],"deadline_ms":1.5}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn overload_error_kinds_have_stable_wire_spellings() {
        assert_eq!(ErrorKind::Overloaded.as_str(), "overloaded");
        assert_eq!(ErrorKind::DeadlineExceeded.as_str(), "deadline_exceeded");
        assert_eq!(ErrorKind::Degraded.as_str(), "degraded");
        let line = error_line(&ProtocolError {
            kind: ErrorKind::Overloaded,
            message: "ingest queue overloaded (16/16)".into(),
        });
        assert!(line.contains(r#""kind":"overloaded""#), "{line}");
    }

    #[test]
    fn schema_violations_are_bad_requests() {
        for bad in [
            "null",
            "[]",
            r#"{"cmd":5}"#,
            r#"{"node":5}"#,
            r#"{"cmd":"warp"}"#,
            r#"{"cmd":"query"}"#,
            r#"{"cmd":"query","node":-1}"#,
            r#"{"cmd":"query","node":1.5}"#,
            r#"{"cmd":"query","node":4294967296}"#,
            r#"{"cmd":"nearest","node":1,"k":0}"#,
            r#"{"cmd":"nearest","node":1,"k":"many"}"#,
            r#"{"cmd":"ingest"}"#,
            r#"{"cmd":"ingest","edges":[[0,1]],"events":[{"op":"remove_node","node":5,"t":2}]}"#,
            r#"{"cmd":"ingest","edges":[[0,1,18446744073709551616]]}"#,
            r#"{"cmd":"ingest","edges":[[0]]}"#,
            r#"{"cmd":"ingest","edges":[[0,1,2,3]]}"#,
            r#"{"cmd":"ingest","edges":[[0,"x"]]}"#,
            r#"{"cmd":"ingest","events":[{"u":0,"v":1}]}"#,
            r#"{"cmd":"ingest","events":[{"op":"teleport","u":0,"v":1}]}"#,
            "not json at all",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
        }
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let mut line = String::from(r#"{"cmd":"ingest","edges":["#);
        for i in 0..(MAX_INGEST_EVENTS + 1) {
            if i > 0 {
                line.push(',');
            }
            line.push_str("[0,1]");
        }
        line.push_str("]}");
        let err = parse_request(&line).unwrap_err();
        assert!(err.message.contains("cap"), "{err}");
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let lines = [
            query_line(2, NodeId(5), &[0.5, -1.0]),
            nearest_line(2, NodeId(5), &[(NodeId(7), 0.93), (NodeId(1), f32::NAN)]),
            ingest_line(14),
            flush_line(FlushOutcome {
                stepped: true,
                epoch: 3,
            }),
            shutdown_line(),
            error_line(&ProtocolError::bad("nope")),
        ];
        for line in &lines {
            assert!(!line.contains('\n'), "{line}");
            let v = json::parse(line).unwrap();
            assert!(v.get("ok").is_some(), "{line}");
        }
        assert!(lines[1].contains("[1,null]"), "NaN -> null: {}", lines[1]);
        assert!(lines[1].contains(r#""mode":"exact""#), "{}", lines[1]);
        assert!(lines[5].contains("bad_request"));
    }

    #[test]
    fn ann_response_lines_carry_mode_and_stats() {
        let line = nearest_ann_line(3, NodeId(5), &[(NodeId(7), 0.5)], 4);
        assert!(line.contains(r#""mode":"ann""#), "{line}");
        assert!(line.contains(r#""nprobe":4"#), "{line}");
        json::parse(&line).unwrap();

        let base = ServeStats {
            epoch: 2,
            nodes: 10,
            dim: 8,
            queue_depth: 0,
            queue_capacity: 16,
            queue_high_water: 0,
            events_accepted: 5,
            ann: None,
            shards: None,
            durability: None,
            telemetry: None,
            health: None,
            rebalance: None,
        };
        assert!(stats_line(&base).contains(r#""ann":null"#));
        let with_ann = ServeStats {
            ann: Some(crate::session::AnnStats {
                cells: 4,
                default_nprobe: 2,
                build: std::time::Duration::from_millis(3),
                storage: glodyne_ann::StorageMode::Sq8,
                index_bytes: 4096,
                build_kind: "incremental",
                dirty_rows: 17,
            }),
            ..base
        };
        let line = stats_line(&with_ann);
        assert!(
            line.contains(r#""ann":{"cells":4,"nprobe_default":2,"build_ms":3"#),
            "{line}"
        );
        assert!(line.contains(r#""storage":"sq8""#), "{line}");
        assert!(line.contains(r#""index_bytes":4096"#), "{line}");
        assert!(line.contains(r#""build_kind":"incremental""#), "{line}");
        assert!(line.contains(r#""dirty_rows":17"#), "{line}");
        json::parse(&line).unwrap();
    }

    /// Regression pin for the additive-keys contract: a pre-existing
    /// stats consumer that only reads the `"ann"` object's original
    /// keys (cells, nprobe_default, build_ms, storage, index_bytes)
    /// must parse a response from this server unchanged — the
    /// `build_kind`/`dirty_rows` keys are appended *after* them and
    /// never reorder or rename the old prefix.
    #[test]
    fn ann_stats_keys_stay_backward_compatible() {
        let stats = ServeStats {
            epoch: 5,
            nodes: 3,
            dim: 8,
            queue_depth: 0,
            queue_capacity: 16,
            queue_high_water: 2,
            events_accepted: 9,
            ann: Some(crate::session::AnnStats {
                cells: 8,
                default_nprobe: 3,
                build: std::time::Duration::from_millis(1),
                storage: glodyne_ann::StorageMode::F32,
                index_bytes: 128,
                build_kind: "full",
                dirty_rows: 0,
            }),
            shards: None,
            durability: None,
            telemetry: None,
            health: None,
            rebalance: None,
        };
        let line = stats_line(&stats);
        let parsed = json::parse(&line).unwrap();
        let ann = parsed.get("ann").expect("ann object present");
        // Every pre-existing key resolves exactly as before...
        for key in [
            "cells",
            "nprobe_default",
            "build_ms",
            "storage",
            "index_bytes",
        ] {
            assert!(ann.get(key).is_some(), "legacy ann key {key}: {line}");
        }
        // ...and the old prefix is byte-identical, so even a client
        // that string-matches the object head keeps working.
        assert!(
            line.contains(r#""ann":{"cells":8,"nprobe_default":3,"build_ms":1"#),
            "{line}"
        );
        assert!(ann.get("build_kind").is_some(), "{line}");
        assert!(ann.get("dirty_rows").is_some(), "{line}");
    }

    #[test]
    fn nearest_batch_parses_and_renders() {
        assert_eq!(
            parse_request(r#"{"cmd":"nearest_batch","nodes":[5,9],"k":3}"#).unwrap(),
            Request::NearestBatch {
                nodes: vec![NodeId(5), NodeId(9)],
                k: 3,
                mode: NearestMode::Exact
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"nearest_batch","nodes":[5],"mode":"ann","nprobe":4}"#)
                .unwrap(),
            Request::NearestBatch {
                nodes: vec![NodeId(5)],
                k: DEFAULT_K,
                mode: NearestMode::Ann { nprobe: Some(4) }
            }
        );
        // An empty batch is well-formed (zero probes, zero results).
        assert_eq!(
            parse_request(r#"{"cmd":"nearest_batch","nodes":[]}"#).unwrap(),
            Request::NearestBatch {
                nodes: Vec::new(),
                k: DEFAULT_K,
                mode: NearestMode::Exact
            }
        );

        let line = nearest_batch_line(
            3,
            &[NodeId(5), NodeId(9)],
            &[Some(vec![(NodeId(7), 0.5)]), None],
            None,
        );
        assert!(!line.contains('\n'), "{line}");
        assert!(line.contains(r#""mode":"exact""#), "{line}");
        assert!(
            line.contains(r#"{"node":9,"neighbours":null}"#),
            "unknown probe renders null, not an error: {line}"
        );
        json::parse(&line).unwrap();
        let line = nearest_batch_line(3, &[NodeId(5)], &[Some(vec![])], Some(4));
        assert!(line.contains(r#""mode":"ann""#), "{line}");
        assert!(line.contains(r#""nprobe":4"#), "{line}");
        json::parse(&line).unwrap();
    }

    #[test]
    fn nearest_batch_schema_violations_are_bad_requests() {
        // The pre-batch single-probe shape against the batch command is
        // a structured bad_request that names the fix — never a panic.
        let err = parse_request(r#"{"cmd":"nearest_batch","node":5,"k":3}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("`nodes` array"), "{err}");
        for bad in [
            r#"{"cmd":"nearest_batch"}"#,
            r#"{"cmd":"nearest_batch","nodes":5}"#,
            r#"{"cmd":"nearest_batch","nodes":[5,"x"]}"#,
            r#"{"cmd":"nearest_batch","nodes":[-1]}"#,
            r#"{"cmd":"nearest_batch","nodes":[4294967296]}"#,
            r#"{"cmd":"nearest_batch","nodes":[5],"k":0}"#,
            r#"{"cmd":"nearest_batch","nodes":[5],"nprobe":4}"#,
            r#"{"cmd":"nearest_batch","nodes":[5],"mode":"fuzzy"}"#,
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
        }
        let mut line = String::from(r#"{"cmd":"nearest_batch","nodes":["#);
        for i in 0..(MAX_BATCH_NODES + 1) {
            if i > 0 {
                line.push(',');
            }
            line.push('7');
        }
        line.push_str("]}");
        let err = parse_request(&line).unwrap_err();
        assert!(err.message.contains("cap"), "{err}");
    }

    #[test]
    fn stats_shards_array_and_pre_sharding_compatibility() {
        let base = ServeStats {
            epoch: 3,
            nodes: 20,
            dim: 8,
            queue_depth: 1,
            queue_capacity: 16,
            queue_high_water: 4,
            events_accepted: 9,
            ann: None,
            shards: None,
            durability: None,
            telemetry: None,
            health: None,
            rebalance: None,
        };
        // Regression: an unsharded server renders "shards":null and
        // every pre-sharding field exactly as before, so a client
        // written against the PR 3/4 protocol parses it unchanged.
        let line = stats_line(&base);
        assert!(line.contains(r#""shards":null"#), "{line}");
        let parsed = json::parse(&line).unwrap();
        for key in [
            "epoch",
            "nodes",
            "dim",
            "queue_depth",
            "queue_capacity",
            "events_accepted",
            "ann",
        ] {
            assert!(
                parsed.get(key).is_some(),
                "pre-sharding field {key}: {line}"
            );
        }
        assert_eq!(parsed.get("shards"), Some(&Json::Null));

        let sharded = ServeStats {
            shards: Some(vec![
                crate::shard::ShardEpochStats {
                    shard: 0,
                    epoch: 3,
                    nodes: 12,
                    queue_depth: 1,
                    events_accepted: 6,
                    ann_build: Some(std::time::Duration::from_millis(2)),
                    ann_build_kind: Some("full"),
                    ann_dirty_rows: Some(0),
                },
                crate::shard::ShardEpochStats {
                    shard: 1,
                    epoch: 2,
                    nodes: 11,
                    queue_depth: 0,
                    events_accepted: 5,
                    ann_build: None,
                    ann_build_kind: None,
                    ann_dirty_rows: None,
                },
            ]),
            ..base
        };
        let line = stats_line(&sharded);
        assert!(
            line.contains(
                r#""shards":[{"shard":0,"epoch":3,"nodes":12,"queue_depth":1,"events_accepted":6,"ann_build_ms":2"#
            ),
            "{line}"
        );
        assert!(line.contains(r#""ann_build_ms":null"#), "{line}");
        json::parse(&line).unwrap();
    }

    #[test]
    fn stats_durability_object_and_pre_durability_compatibility() {
        let base = ServeStats {
            epoch: 1,
            nodes: 4,
            dim: 8,
            queue_depth: 0,
            queue_capacity: 16,
            queue_high_water: 0,
            events_accepted: 3,
            ann: None,
            shards: None,
            durability: None,
            telemetry: None,
            health: None,
            rebalance: None,
        };
        // Regression: an in-memory server renders "durability":null
        // and every pre-durability field exactly as before, so a
        // client written against the earlier protocol parses the
        // response unchanged.
        let line = stats_line(&base);
        assert!(line.contains(r#""durability":null"#), "{line}");
        let parsed = json::parse(&line).unwrap();
        for key in [
            "epoch",
            "nodes",
            "dim",
            "queue_depth",
            "queue_capacity",
            "events_accepted",
            "ann",
            "shards",
        ] {
            assert!(
                parsed.get(key).is_some(),
                "pre-durability field {key}: {line}"
            );
        }
        assert_eq!(parsed.get("durability"), Some(&Json::Null));

        let durable = ServeStats {
            durability: Some(crate::session::DurabilityStats {
                wal_segments: 3,
                wal_bytes: 4096,
                last_snapshot_epoch: Some(7),
                last_fsync_ms: None,
                recovered_from: Some("snapshot seq 40 (epoch 7) + 2 wal events".into()),
            }),
            ..base
        };
        let line = stats_line(&durable);
        assert!(
            line.contains(
                r#""durability":{"wal_segments":3,"wal_bytes":4096,"last_snapshot_epoch":7,"last_fsync_ms":null"#
            ),
            "{line}"
        );
        assert!(
            line.contains(r#""recovered_from":"snapshot seq 40 (epoch 7) + 2 wal events""#),
            "{line}"
        );
        json::parse(&line).unwrap();
    }

    #[test]
    fn metrics_command_parses() {
        assert_eq!(
            parse_request(r#"{"cmd":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        // The unknown-cmd hint names the new op.
        let err = parse_request(r#"{"cmd":"warp"}"#).unwrap_err();
        assert!(err.message.contains("metrics"), "{err}");
    }

    #[test]
    fn stats_telemetry_object_and_pre_telemetry_compatibility() {
        let base = ServeStats {
            epoch: 2,
            nodes: 6,
            dim: 8,
            queue_depth: 1,
            queue_capacity: 16,
            queue_high_water: 5,
            events_accepted: 7,
            ann: None,
            shards: None,
            durability: None,
            telemetry: None,
            health: None,
            rebalance: None,
        };
        // Regression (wire compat): with telemetry disabled the
        // response renders "telemetry":null and every pre-telemetry
        // field exactly as before, so an older client parses it
        // unchanged.
        let line = stats_line(&base);
        assert!(line.contains(r#""telemetry":null"#), "{line}");
        assert!(line.contains(r#""queue_high_water":5"#), "{line}");
        let parsed = json::parse(&line).unwrap();
        for key in [
            "epoch",
            "nodes",
            "dim",
            "queue_depth",
            "queue_capacity",
            "events_accepted",
            "ann",
            "shards",
            "durability",
        ] {
            assert!(
                parsed.get(key).is_some(),
                "pre-telemetry field {key}: {line}"
            );
        }
        assert_eq!(parsed.get("telemetry"), Some(&Json::Null));

        // An instrumented server inlines the full snapshot.
        let hub = crate::telemetry::ServeTelemetry::new(100);
        hub.observe_request("nearest", 1, 2, 250);
        let _timing = hub.durable_timing();
        let instrumented = ServeStats {
            telemetry: Some(hub.stats(1, 5)),
            ..base
        };
        let line = stats_line(&instrumented);
        let parsed = json::parse(&line).unwrap();
        let t = parsed.get("telemetry").expect("telemetry object");
        assert!(t.get("queue_wait_us").is_some(), "{line}");
        assert!(t.get("freshness_lag_us").is_some(), "{line}");
        assert!(
            t.get("wire_latency_us")
                .and_then(|w| w.get("nearest"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64)
                == Some(1),
            "{line}"
        );
        assert!(
            t.get("stage_us").and_then(|s| s.get("train")).is_some(),
            "{line}"
        );
        assert!(
            t.get("durability")
                .and_then(|d| d.get("wal_fsync_us"))
                .is_some(),
            "{line}"
        );
        assert_eq!(t.get("probe"), Some(&Json::Null), "no probe attached");
        // The over-threshold request landed in the slow ring.
        let slow = t.get("slow_queries").and_then(Json::as_arr).unwrap();
        assert_eq!(slow.len(), 1, "{line}");
        assert!(
            slow[0].get("micros").and_then(Json::as_u64) == Some(250),
            "{line}"
        );
    }

    #[test]
    fn stats_health_and_rebalance_objects_and_compatibility() {
        let base = ServeStats {
            epoch: 2,
            nodes: 6,
            dim: 8,
            queue_depth: 1,
            queue_capacity: 16,
            queue_high_water: 5,
            events_accepted: 7,
            ann: None,
            shards: None,
            durability: None,
            telemetry: None,
            health: None,
            rebalance: None,
        };
        // Regression (wire compat): both new keys render null when
        // absent, appended after every pre-watchdog field, so older
        // clients parse the response unchanged.
        let line = stats_line(&base);
        assert!(line.contains(r#""health":null"#), "{line}");
        assert!(line.contains(r#""rebalance":null"#), "{line}");
        let parsed = json::parse(&line).unwrap();
        for key in [
            "epoch",
            "nodes",
            "dim",
            "queue_depth",
            "queue_capacity",
            "events_accepted",
            "ann",
            "shards",
            "durability",
            "telemetry",
        ] {
            assert!(
                parsed.get(key).is_some(),
                "pre-watchdog field {key}: {line}"
            );
        }

        let live = ServeStats {
            health: Some(crate::session::HealthStats {
                degraded: true,
                trainer_alive: false,
                stale_epochs: 3,
                stalled_ms: 1200,
            }),
            rebalance: Some(crate::session::RebalanceStats {
                rebalance_batches: 2,
                migrated_nodes: 40,
                pending_migrations: 5,
            }),
            ..base
        };
        let line = stats_line(&live);
        assert!(
            line.contains(
                r#""health":{"degraded":true,"trainer_alive":false,"stale_epochs":3,"stalled_ms":1200}"#
            ),
            "{line}"
        );
        assert!(
            line.contains(
                r#""rebalance":{"rebalance_batches":2,"migrated_nodes":40,"pending_migrations":5}"#
            ),
            "{line}"
        );
        json::parse(&line).unwrap();
    }
}
