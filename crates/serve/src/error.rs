//! Server-side failures (distinct from [`ProtocolError`], which is a
//! *client's* malformed request and travels back over the wire).
//!
//! [`ProtocolError`]: crate::protocol::ProtocolError

use glodyne_embed::ConfigError;
use std::error::Error;
use std::fmt;
use std::io;

/// A failure of the serving machinery itself.
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind its address.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Invalid server configuration (e.g. degenerate ANN settings) —
    /// rejected at [`Server::bind`](crate::Server::bind), never
    /// silently repaired.
    Config(ConfigError),
    /// The trainer thread is gone (session shut down): ingest and
    /// flush can no longer be accepted, though reads keep working off
    /// the last published epoch.
    Closed,
    /// A durability lineage could not be created or recovered (data
    /// directory I/O, corrupt state beyond what recovery tolerates).
    Durability(io::Error),
    /// The bounded ingest queue was full and the caller asked to shed
    /// load instead of blocking (fast-fail ingest). Carries the queue
    /// gauge at rejection time for the structured wire error.
    Overloaded {
        /// Queue depth observed when the event was shed.
        depth: usize,
        /// The queue's bound.
        capacity: usize,
    },
    /// A deadline-bounded operation (ingest enqueue, flush ack) ran
    /// out of time before the trainer made room / answered.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Config(e) => write!(f, "invalid server configuration: {e}"),
            ServeError::Closed => write!(f, "serving session is shut down"),
            ServeError::Durability(e) => write!(f, "durable lineage failure: {e}"),
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "ingest queue overloaded ({depth}/{capacity})")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Config(e) => Some(e),
            ServeError::Closed => None,
            ServeError::Durability(e) => Some(e),
            ServeError::Overloaded { .. } => None,
            ServeError::DeadlineExceeded => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = ServeError::Bind {
            addr: "127.0.0.1:1".into(),
            source: io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(e.to_string().contains("127.0.0.1:1"));
        assert!(e.source().is_some());
        assert!(ServeError::Closed.source().is_none());
        assert!(ServeError::Closed.to_string().contains("shut down"));
    }
}
