//! [`ShardedSession`]: `S` per-shard trainer threads behind one
//! partition router — the concurrent, epoch-swapped form of
//! `glodyne_shard::ShardedState`.
//!
//! Each shard reuses the unsharded machinery verbatim: its own bounded
//! [`IngestQueue`], its own trainer thread running the same
//! [`trainer_loop`](crate::session), and its own
//! [`EpochHandle`] publishing an immutable [`EmbeddingEpoch`]
//! (embedding + optional IVF index) after every committed step. What
//! the sharded session adds is the routing layer in front and the
//! fan-out merge behind:
//!
//! - **Writes** take the router's write lock just long enough to route
//!   (cheap hash/partition-map lookups — never training) and then feed
//!   the per-shard queues; a full shard queue back-pressures the
//!   producer exactly like the unsharded path.
//! - **Reads** take the router's read lock to resolve ownership, clone
//!   each shard's current epoch `Arc`, and answer from those frozen
//!   epochs — they never wait on any trainer. A read can lag each
//!   shard's write path by at most one epoch, independently per shard.
//! - **Flush** first lets the router rebalance if drift accumulated,
//!   forwarding at most [`ShardConfig::rebalance_budget`] migration
//!   events per flush (the backlog carries over, and rides the queues
//!   ahead of the flush barrier), then commits every shard and reports
//!   `stepped = any`, `epoch = max` over shards; `stats` carries the
//!   full per-shard break-down plus rebalance and health objects.
//!
//! Global `nearest` is the owner-filtered fan-out of
//! [`glodyne_shard::fanout`]: exact mode is bit-exact with an
//! unsharded exact scan over the owner-filtered union of the shard
//! epochs; ANN mode probes each shard's index and merges owned hits.

use crate::epoch::{EmbeddingEpoch, EpochHandle};
use crate::error::ServeError;
use crate::queue::{bounded_instrumented, FlushOutcome, IngestQueue};
use crate::session::{
    build_epoch, trainer_loop, trainer_loop_durable, AnnSettings, AnnStats, DurabilityShared,
    DurabilityStats, HealthState, HealthStats, RebalanceStats, ServeStats, DEFAULT_STALL_AFTER,
};
use crate::telemetry::ServeTelemetry;
use glodyne::{EmbedderSession, EpochPolicy};
use glodyne_ann::StorageMode;
use glodyne_durable::{
    decode_session_payload, list_snapshots, load_snapshot, prune_snapshots, remove_all_segments,
    replay_and_heal, write_snapshot, DurableConfig, DurableSession, FsyncPolicy, WalRecord,
    WalWriter, PAYLOAD_ROUTER, PAYLOAD_SESSION,
};
use glodyne_embed::traits::CheckpointEmbedder;
use glodyne_embed::{ConfigError, DynamicEmbedder};
use glodyne_graph::state::{GraphEvent, GraphEventKind};
use glodyne_graph::NodeId;
use glodyne_shard::{fanout, ShardConfig, ShardRouter, ShardView};
use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// One shard's slice of a `stats` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEpochStats {
    /// Shard id (`0..S`).
    pub shard: u32,
    /// The shard's published epoch id.
    pub epoch: u64,
    /// Embedded rows in that epoch (owned nodes *plus* halo copies —
    /// what the shard actually trains).
    pub nodes: usize,
    /// Events waiting in the shard's ingest queue (approximate).
    pub queue_depth: usize,
    /// Events the shard's queue accepted (mirror copies included, so
    /// the sum over shards can exceed the session-level count).
    pub events_accepted: u64,
    /// Build time of the shard epoch's IVF index, when ANN is on and
    /// the epoch carries one.
    pub ann_build: Option<Duration>,
    /// How the shard epoch's index was produced (`"full"` /
    /// `"incremental"`), when it carries one.
    pub ann_build_kind: Option<&'static str>,
    /// Rows the shard's index build reassigned, when it carries one.
    pub ann_dirty_rows: Option<usize>,
}

/// One shard's write/read plumbing.
struct ShardHandle {
    queue: IngestQueue,
    epochs: EpochHandle,
    health: Arc<HealthState>,
}

/// The flush-scoped rebalance throttle. Drift rebalancing used to run
/// inline on the ingest hot path; it now happens only at flush
/// boundaries, and even there forwards at most `budget` migration
/// events per flush, carrying the remainder here. The pending queue is
/// persisted inside every router barrier snapshot (and rebuilt by
/// router-WAL replay), so recovery drains it on exactly the same
/// schedule as the live run.
struct RebalanceControl {
    /// Migration events awaiting budget, in rebalance emission order.
    /// Mutated only under `write_order`; the mutex lets `stats` peek
    /// without stalling writers behind it.
    pending: Mutex<VecDeque<(u32, GraphEvent)>>,
    /// Flush boundaries that forwarded at least one migration event.
    batches: AtomicU64,
    /// Migration events forwarded since spawn.
    migrated: AtomicU64,
    /// Per-flush forwarding budget (`0` = unlimited), from
    /// [`ShardConfig::rebalance_budget`].
    budget: usize,
}

impl RebalanceControl {
    fn new(budget: usize, pending: VecDeque<(u32, GraphEvent)>) -> Self {
        RebalanceControl {
            pending: Mutex::new(pending),
            batches: AtomicU64::new(0),
            migrated: AtomicU64::new(0),
            budget,
        }
    }

    /// How many events a flush may forward right now.
    fn drain_quota(&self, queued: usize) -> usize {
        if self.budget == 0 {
            queued
        } else {
            self.budget.min(queued)
        }
    }

    fn stats(&self) -> RebalanceStats {
        RebalanceStats {
            rebalance_batches: self.batches.load(Ordering::Relaxed),
            migrated_nodes: self.migrated.load(Ordering::Relaxed),
            pending_migrations: self
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        }
    }
}

/// Magic prefix of a router snapshot payload that carries the pending
/// migration queue alongside the router state. Legacy payloads are the
/// bare router export (which starts with its own `GDRT` magic) and
/// decode as an empty queue.
const PENDING_MAGIC: &[u8; 4] = b"GDP1";

/// `GDP1 | u64 router_len | router | u64 n | n × (u32 shard, u64 time,
/// u8 kind, operands)` — the wrapped router snapshot payload.
fn encode_router_payload(router: &[u8], pending: &VecDeque<(u32, GraphEvent)>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 + router.len() + 8 + pending.len() * 21);
    out.extend_from_slice(PENDING_MAGIC);
    out.extend_from_slice(&(router.len() as u64).to_le_bytes());
    out.extend_from_slice(router);
    out.extend_from_slice(&(pending.len() as u64).to_le_bytes());
    for &(shard, event) in pending {
        out.extend_from_slice(&shard.to_le_bytes());
        out.extend_from_slice(&event.time.to_le_bytes());
        match event.kind {
            GraphEventKind::AddEdge(e) => {
                out.push(1);
                out.extend_from_slice(&e.u.0.to_le_bytes());
                out.extend_from_slice(&e.v.0.to_le_bytes());
            }
            GraphEventKind::RemoveEdge(e) => {
                out.push(2);
                out.extend_from_slice(&e.u.0.to_le_bytes());
                out.extend_from_slice(&e.v.0.to_le_bytes());
            }
            GraphEventKind::RemoveNode(n) => {
                out.push(3);
                out.extend_from_slice(&n.0.to_le_bytes());
            }
        }
    }
    out
}

/// Split a router snapshot payload back into `(router bytes, pending
/// queue)`; `None` when a wrapped payload is malformed. A payload
/// without the wrapper magic is a pre-throttle bare router export.
#[allow(clippy::type_complexity)]
fn decode_router_payload(payload: &[u8]) -> Option<(&[u8], VecDeque<(u32, GraphEvent)>)> {
    if !payload.starts_with(PENDING_MAGIC) {
        return Some((payload, VecDeque::new()));
    }
    let read_u64 = |at: usize| -> Option<u64> {
        Some(u64::from_le_bytes(
            payload.get(at..at + 8)?.try_into().ok()?,
        ))
    };
    let read_u32 = |at: usize| -> Option<u32> {
        Some(u32::from_le_bytes(
            payload.get(at..at + 4)?.try_into().ok()?,
        ))
    };
    let router_len = read_u64(4)? as usize;
    let router = payload.get(12..12 + router_len)?;
    let mut at = 12 + router_len;
    let n = read_u64(at)? as usize;
    at += 8;
    let mut pending = VecDeque::with_capacity(n);
    for _ in 0..n {
        let shard = read_u32(at)?;
        let time = read_u64(at + 4)?;
        let kind = *payload.get(at + 12)?;
        at += 13;
        let event = match kind {
            1 | 2 => {
                let u = NodeId(read_u32(at)?);
                let v = NodeId(read_u32(at + 4)?);
                at += 8;
                if kind == 1 {
                    GraphEvent::add_edge(u, v, time)
                } else {
                    GraphEvent::remove_edge(u, v, time)
                }
            }
            3 => {
                let n = NodeId(read_u32(at)?);
                at += 4;
                GraphEvent::remove_node(n, time)
            }
            _ => return None,
        };
        pending.push_back((shard, event));
    }
    if at != payload.len() {
        return None;
    }
    Some((router, pending))
}

/// The session-level durability state of a sharded session: the
/// authoritative router lineage (client-event WAL + `PAYLOAD_ROUTER`
/// snapshots under `dir/router`) plus the per-shard lineage gauges.
///
/// The router log records every *client* event, in acceptance order,
/// with explicit flush markers; the per-shard WALs (`dir/shard-<i>`)
/// are derived, regenerated at recovery by re-routing the router log —
/// a crash can tear a shard WAL mid frame-group (one client event
/// fanning out to several shards), so only the router log is trusted.
/// A consistent cut restored from disk: the router, the rebalance
/// throttle's pending migration queue, and every shard's `(session,
/// epoch)`, all frozen at barrier `(seq, epoch)`.
type RestoredBarrier<E> = (
    ShardRouter,
    VecDeque<(u32, GraphEvent)>,
    Vec<(EmbedderSession<E>, u64)>,
    u64,
    u64,
);

struct ShardedDurable {
    router_dir: PathBuf,
    /// The router-lineage WAL. Appends happen under `write_order`, so
    /// this mutex is uncontended; it exists so `stats` can read.
    wal: Mutex<WalWriter>,
    cfg: DurableConfig,
    /// Last client sequence assigned (mutated only under
    /// `write_order`; atomic so `stats`/barriers read without it).
    seq: AtomicU64,
    /// Epoch stamped on the newest barrier snapshot.
    last_snapshot_epoch: Mutex<Option<u64>>,
    recovered_from: Option<String>,
    /// Per-shard lineage counters, fed by each durable trainer loop.
    gauges: Vec<Arc<DurabilityShared>>,
}

/// The concurrent sharded session (see the module docs).
pub struct ShardedSession {
    router: RwLock<ShardRouter>,
    shards: Vec<ShardHandle>,
    trainers: Mutex<Vec<JoinHandle<()>>>,
    ann: Option<AnnSettings>,
    /// Serialises writers end-to-end (route *and* enqueue) so every
    /// shard queue receives events in global routing order — held
    /// *instead of* the router lock across blocking queue sends, so a
    /// full queue back-pressures producers without ever blocking the
    /// read path's `router.read()`.
    write_order: Mutex<()>,
    /// Client events accepted (each counted once, however many shards
    /// it mirrored to).
    accepted: AtomicU64,
    /// Durability lineages; `None` when serving in-memory.
    durable: Option<ShardedDurable>,
    /// Metrics hub; `None` when telemetry is disabled.
    telemetry: Option<Arc<ServeTelemetry>>,
    /// The flush-scoped rebalance throttle.
    rebalance: RebalanceControl,
}

impl ShardedSession {
    /// Move one session per shard onto its own trainer thread. Every
    /// session is switched to full-graph commits (a shard legitimately
    /// holds disconnected halo fragments). `sessions.len()` must equal
    /// `shard_cfg.shards`.
    pub fn spawn<E>(
        sessions: Vec<EmbedderSession<E>>,
        shard_cfg: ShardConfig,
        queue_capacity: usize,
    ) -> Result<ShardedSession, ConfigError>
    where
        E: DynamicEmbedder + Send + 'static,
    {
        ShardedSession::spawn_with_ann(sessions, shard_cfg, queue_capacity, None)
    }

    /// Like [`ShardedSession::spawn`], additionally building an IVF
    /// index per shard per published epoch (each on its shard's
    /// trainer thread, same ≤ 1-epoch-lag model as the embeddings).
    pub fn spawn_with_ann<E>(
        sessions: Vec<EmbedderSession<E>>,
        shard_cfg: ShardConfig,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
    ) -> Result<ShardedSession, ConfigError>
    where
        E: DynamicEmbedder + Send + 'static,
    {
        ShardedSession::spawn_instrumented(sessions, shard_cfg, queue_capacity, ann, None)
    }

    /// Like [`ShardedSession::spawn_with_ann`] with telemetry: each
    /// shard's trainer records its step phases under a `shard="<i>"`
    /// label (and into the global stage series), all queues share the
    /// queue-wait histogram, and every shard's epoch handle feeds the
    /// freshness-lag series.
    pub fn spawn_instrumented<E>(
        sessions: Vec<EmbedderSession<E>>,
        shard_cfg: ShardConfig,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
        telemetry: Option<Arc<ServeTelemetry>>,
    ) -> Result<ShardedSession, ConfigError>
    where
        E: DynamicEmbedder + Send + 'static,
    {
        if let Some(settings) = &ann {
            settings.validate()?;
        }
        let router = ShardRouter::new(shard_cfg)?;
        if sessions.len() != shard_cfg.shards {
            return Err(ConfigError::new(
                "shards",
                "one EmbedderSession per shard is required",
            ));
        }
        let mut shards = Vec::with_capacity(sessions.len());
        let mut trainers = Vec::with_capacity(sessions.len());
        for (i, session) in sessions.into_iter().enumerate() {
            let mut session = session.keep_full_graph();
            // The initial shard index is a full build; drain pre-spawn
            // churn so the first incremental build starts from it.
            let _ = session.take_dirty();
            let epochs = EpochHandle::new(build_epoch(
                session.steps() as u64,
                session.embedding().clone(),
                session.reports().last().copied(),
                ann.as_ref(),
                None,
                &[],
            ));
            let (queue, inbox) = bounded_instrumented(
                queue_capacity,
                telemetry.as_ref().map(|t| Arc::clone(&t.queue_wait)),
            );
            if let Some(t) = &telemetry {
                epochs.set_freshness_histogram(Arc::clone(&t.freshness));
            }
            let stages = telemetry.as_ref().map(|t| t.shard_trainer_stages(i));
            let publisher = epochs.clone();
            let health = Arc::new(HealthState::new(DEFAULT_STALL_AFTER));
            let pulse = Arc::clone(&health);
            let trainer = thread::Builder::new()
                .name(format!("glodyne-trainer-{i}"))
                .spawn(move || trainer_loop(session, inbox, publisher, ann, stages, pulse))
                .expect("spawn shard trainer thread");
            shards.push(ShardHandle {
                queue,
                epochs,
                health,
            });
            trainers.push(trainer);
        }
        Ok(ShardedSession {
            router: RwLock::new(router),
            shards,
            trainers: Mutex::new(trainers),
            ann,
            write_order: Mutex::new(()),
            accepted: AtomicU64::new(0),
            durable: None,
            telemetry,
            rebalance: RebalanceControl::new(shard_cfg.rebalance_budget, VecDeque::new()),
        })
    }

    /// Spawn (or recover) a crash-recoverable sharded session rooted at
    /// `dir`: the router lineage lives in `dir/router`, shard `i`'s in
    /// `dir/shard-<i>`. On a fresh directory this starts empty; on an
    /// existing one it resumes from the newest *common barrier* — the
    /// highest sequence at which a valid router snapshot and a valid
    /// session snapshot in **every** shard directory coexist — then
    /// re-routes the router WAL suffix through the normal ingest path
    /// (routing is deterministic, so the rebuilt placement, migrations,
    /// and shard states are bit-exact with the pre-crash run). Returns
    /// the session and the recovery provenance (`None` when nothing
    /// was on disk).
    ///
    /// `make_embedder` receives the shard index and must rebuild each
    /// shard's embedder with the configuration the lineage was created
    /// with.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_durable<E, F>(
        dir: &Path,
        shard_cfg: ShardConfig,
        durable_cfg: DurableConfig,
        policy: EpochPolicy,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
        make_embedder: F,
    ) -> io::Result<(ShardedSession, Option<String>)>
    where
        E: CheckpointEmbedder + Send + 'static,
        F: Fn(usize) -> E,
    {
        ShardedSession::spawn_durable_instrumented(
            dir,
            shard_cfg,
            durable_cfg,
            policy,
            queue_capacity,
            ann,
            make_embedder,
            None,
        )
    }

    /// Like [`ShardedSession::spawn_durable`] with telemetry: on top of
    /// the in-memory instrumentation, the router WAL and every shard's
    /// durable lineage report append/fsync/snapshot wall times into the
    /// shared durability histograms.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_durable_instrumented<E, F>(
        dir: &Path,
        shard_cfg: ShardConfig,
        durable_cfg: DurableConfig,
        policy: EpochPolicy,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
        make_embedder: F,
        telemetry: Option<Arc<ServeTelemetry>>,
    ) -> io::Result<(ShardedSession, Option<String>)>
    where
        E: CheckpointEmbedder + Send + 'static,
        F: Fn(usize) -> E,
    {
        let cfg_io = |e: ConfigError| io::Error::new(io::ErrorKind::InvalidInput, e.to_string());
        if let Some(settings) = &ann {
            settings.validate().map_err(cfg_io)?;
        }
        let router_dir = dir.join("router");
        std::fs::create_dir_all(&router_dir)?;
        let shard_dirs: Vec<PathBuf> = (0..shard_cfg.shards)
            .map(|i| dir.join(format!("shard-{i}")))
            .collect();
        for sdir in &shard_dirs {
            std::fs::create_dir_all(sdir)?;
        }
        // Per-shard lineages snapshot *only* at barrier checkpoints: a
        // shard-local periodic snapshot would sit at a sequence the
        // other lineages never froze at, and its pruning could evict
        // the common barrier snapshot recovery depends on.
        let shard_durable_cfg = DurableConfig {
            snapshot_every: 0,
            ..durable_cfg
        };

        // Newest common barrier C*: walk router snapshots newest-first
        // and accept the first whose sequence every shard can resume.
        let mut restored: Option<RestoredBarrier<E>> = None;
        'candidates: for (seq, path) in list_snapshots(&router_dir)?.into_iter().rev() {
            let Ok(snap) = load_snapshot(&path) else {
                continue;
            };
            if snap.kind != PAYLOAD_ROUTER {
                continue;
            }
            let Some((router_bytes, pending)) = decode_router_payload(&snap.payload) else {
                continue;
            };
            let Ok(router) = ShardRouter::restore(shard_cfg, router_bytes) else {
                continue;
            };
            let mut sessions = Vec::with_capacity(shard_dirs.len());
            for (i, sdir) in shard_dirs.iter().enumerate() {
                let Some((_, spath)) = list_snapshots(sdir)?.into_iter().find(|&(s, _)| s == seq)
                else {
                    continue 'candidates;
                };
                let Ok(ssnap) = load_snapshot(&spath) else {
                    continue 'candidates;
                };
                if ssnap.kind != PAYLOAD_SESSION {
                    continue 'candidates;
                }
                let Ok((ckpt, embedding)) = decode_session_payload(&ssnap.payload) else {
                    continue 'candidates;
                };
                let Ok(session) =
                    EmbedderSession::resume(make_embedder(i), policy, &ckpt, &embedding)
                else {
                    continue 'candidates;
                };
                sessions.push((session, ssnap.epoch));
            }
            restored = Some((router, pending, sessions, seq, snap.epoch));
            break;
        }

        let (mut router, mut pending, mut durables, barrier, initial_epoch) = match restored {
            Some((router, pending, sessions, seq, epoch)) => {
                let mut durables = Vec::with_capacity(sessions.len());
                for (i, (session, shard_epoch)) in sessions.into_iter().enumerate() {
                    // The shard WAL tail may be torn mid frame-group;
                    // replay of the authoritative router log rebuilds
                    // it deterministically.
                    remove_all_segments(&shard_dirs[i])?;
                    durables.push(DurableSession::attach(
                        &shard_dirs[i],
                        session,
                        shard_durable_cfg,
                        seq,
                        Some((seq, shard_epoch)),
                    )?);
                }
                (router, pending, durables, Some(seq), Some(epoch))
            }
            None => {
                let router = ShardRouter::new(shard_cfg).map_err(cfg_io)?;
                let mut durables = Vec::with_capacity(shard_dirs.len());
                for (i, sdir) in shard_dirs.iter().enumerate() {
                    let session = EmbedderSession::new(make_embedder(i), policy)
                        .map_err(cfg_io)?
                        .keep_full_graph();
                    remove_all_segments(sdir)?;
                    durables.push(DurableSession::attach(
                        sdir,
                        session,
                        shard_durable_cfg,
                        0,
                        None,
                    )?);
                }
                (router, VecDeque::new(), durables, None, None)
            }
        };

        // Re-route the router log suffix exactly as live ingest/flush
        // would have: events route with no rebalancing; each flush
        // boundary computes the drift rebalance and drains the pending
        // queue under the same per-flush budget as the live run.
        let budget = shard_cfg.rebalance_budget;
        let replayed = replay_and_heal(&router_dir)?;
        let floor = barrier.unwrap_or(0);
        let mut last_seq = floor;
        let mut replayed_events = 0u64;
        for (seq, record) in &replayed.records {
            if *seq <= floor {
                continue;
            }
            match record {
                WalRecord::Event(event) => {
                    for (shard, ev) in router.route(*event) {
                        durables[shard as usize].apply(*seq, ev)?;
                    }
                    replayed_events += 1;
                }
                WalRecord::Flush => {
                    if let Some(rb) = router.maybe_rebalance() {
                        pending.extend(rb.events);
                    }
                    let drain = if budget == 0 {
                        pending.len()
                    } else {
                        budget.min(pending.len())
                    };
                    for _ in 0..drain {
                        let (shard, ev) = pending.pop_front().expect("drain <= len");
                        durables[shard as usize].apply(*seq, ev)?;
                    }
                    for durable in &mut durables {
                        durable.flush()?;
                    }
                }
            }
            last_seq = last_seq.max(*seq);
        }
        let recovered_from = match barrier {
            Some(seq) => Some(format!(
                "barrier seq {seq} (epoch {}) + {replayed_events} router events",
                initial_epoch.unwrap_or(0)
            )),
            None if !replayed.records.is_empty() => {
                Some(format!("router wal replay only ({replayed_events} events)"))
            }
            None => None,
        };

        let mut wal = WalWriter::open(
            &router_dir,
            last_seq + 1,
            durable_cfg.segment_bytes,
            durable_cfg.fsync,
        )?;
        if let Some(t) = &telemetry {
            wal.set_timing(t.durable_timing());
        }
        let mut shards = Vec::with_capacity(durables.len());
        let mut trainers = Vec::with_capacity(durables.len());
        let mut gauges = Vec::with_capacity(durables.len());
        for (i, mut durable) in durables.into_iter().enumerate() {
            if let Some(t) = &telemetry {
                durable.set_timing(t.durable_timing());
            }
            // Recovery has no previous in-memory index: full build.
            let _ = durable.session_mut().take_dirty();
            let session = durable.session();
            let epochs = EpochHandle::new(build_epoch(
                session.steps() as u64,
                session.embedding().clone(),
                session.reports().last().copied(),
                ann.as_ref(),
                None,
                &[],
            ));
            let gauge = Arc::new(DurabilityShared::new(durable.counters(), None));
            let (queue, inbox) = bounded_instrumented(
                queue_capacity,
                telemetry.as_ref().map(|t| Arc::clone(&t.queue_wait)),
            );
            if let Some(t) = &telemetry {
                epochs.set_freshness_histogram(Arc::clone(&t.freshness));
            }
            let stages = telemetry.as_ref().map(|t| t.shard_trainer_stages(i));
            let publisher = epochs.clone();
            let feed = Arc::clone(&gauge);
            let health = Arc::new(HealthState::new(DEFAULT_STALL_AFTER));
            let pulse = Arc::clone(&health);
            let trainer = thread::Builder::new()
                .name(format!("glodyne-trainer-{i}"))
                .spawn(move || {
                    trainer_loop_durable(durable, inbox, publisher, ann, feed, stages, pulse)
                })
                .expect("spawn shard trainer thread");
            shards.push(ShardHandle {
                queue,
                epochs,
                health,
            });
            trainers.push(trainer);
            gauges.push(gauge);
        }
        Ok((
            ShardedSession {
                router: RwLock::new(router),
                shards,
                trainers: Mutex::new(trainers),
                ann,
                write_order: Mutex::new(()),
                accepted: AtomicU64::new(0),
                telemetry,
                rebalance: RebalanceControl::new(shard_cfg.rebalance_budget, pending),
                durable: Some(ShardedDurable {
                    router_dir,
                    wal: Mutex::new(wal),
                    cfg: durable_cfg,
                    seq: AtomicU64::new(last_seq),
                    last_snapshot_epoch: Mutex::new(initial_epoch),
                    recovered_from: recovered_from.clone(),
                    gauges,
                }),
            },
            recovered_from,
        ))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The session's ANN settings, when enabled.
    pub fn ann(&self) -> Option<AnnSettings> {
        self.ann
    }

    /// Route and enqueue events in order, blocking when a shard queue
    /// is full. Returns how many *client* events were accepted (each
    /// once, however many shards it mirrored to).
    ///
    /// Back-pressure never blocks reads: the router's write lock is
    /// held only for the (cheap) routing decision; the blocking queue
    /// sends happen under the separate writer-order mutex, which the
    /// read path never takes. [`ServeError::Closed`] means a shard
    /// trainer is gone — the failing event may already be reflected in
    /// the router's global mirror but not in every shard, so a dead
    /// trainer is terminal for the session: shut it down rather than
    /// retrying (retries would be swallowed as mirror duplicates).
    ///
    /// Rebalancing never runs here: drift is drained at flush
    /// boundaries under [`ShardConfig::rebalance_budget`] (see
    /// [`ShardedSession::flush`]), so the ingest hot path stays two
    /// integer compares away from a pure route-and-enqueue.
    pub fn ingest(&self, events: &[GraphEvent]) -> Result<usize, ServeError> {
        let _order = self
            .write_order
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (i, &event) in events.iter().enumerate() {
            if let Err(e) = self.enqueue_failpoint() {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
            self.accept_event(event)?;
        }
        Ok(events.len())
    }

    /// [`ShardedSession::ingest`] that never blocks: an event is
    /// refused — *before* the router WAL sees it — unless every shard
    /// queue has headroom for its worst-case fan-out. The first refusal
    /// is [`ServeError::Overloaded`]; mid-batch it is a partial accept.
    pub fn ingest_fast_fail(&self, events: &[GraphEvent]) -> Result<usize, ServeError> {
        let _order = self
            .write_order
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (i, &event) in events.iter().enumerate() {
            if let Some(e) = self.enqueue_failpoint().err().or_else(|| self.shed_check()) {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
            self.accept_event(event)?;
        }
        Ok(events.len())
    }

    /// [`ShardedSession::ingest`] that waits for queue headroom at most
    /// until `deadline`, then gives up with
    /// [`ServeError::DeadlineExceeded`] (first event) or a partial
    /// accept (mid-batch).
    pub fn ingest_deadline(
        &self,
        events: &[GraphEvent],
        deadline: Instant,
    ) -> Result<usize, ServeError> {
        let _order = self
            .write_order
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (i, &event) in events.iter().enumerate() {
            if let Err(e) = self.enqueue_failpoint() {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
            while self.shed_check().is_some() {
                if Instant::now() >= deadline {
                    return if i == 0 {
                        Err(ServeError::DeadlineExceeded)
                    } else {
                        Ok(i)
                    };
                }
                thread::sleep(Duration::from_millis(1));
            }
            self.accept_event(event)?;
        }
        Ok(events.len())
    }

    /// The `ingest.enqueue` failpoint, checked *before* the router WAL
    /// append: shedding after the event is durable would let recovery
    /// replay an event the live run never applied to any shard.
    fn enqueue_failpoint(&self) -> Result<(), ServeError> {
        if glodyne_chaos::shed(glodyne_chaos::sites::INGEST_ENQUEUE) {
            let e = self.shed_check().unwrap_or(ServeError::Overloaded {
                depth: self.shards.iter().map(|s| s.queue.depth()).sum(),
                capacity: self.shards.first().map_or(0, |s| s.queue.capacity()),
            });
            return Err(e);
        }
        Ok(())
    }

    /// Overload pre-check for the non-blocking ingest modes: `Some`
    /// when a shard queue cannot absorb one more event. Each client
    /// event fans out to at most one copy per shard, so headroom of one
    /// everywhere is sufficient; headroom only grows while
    /// `write_order` is held (the trainer side only drains), so the
    /// blocking sends that follow a `None` cannot stall.
    fn shed_check(&self) -> Option<ServeError> {
        let full = self.shards.iter().find(|s| !s.queue.has_free(1))?;
        Some(ServeError::Overloaded {
            depth: full.queue.depth(),
            capacity: full.queue.capacity(),
        })
    }

    /// WAL-log (when durable), route, and enqueue one client event.
    /// Shared by every ingest mode; callers hold `write_order`.
    fn accept_event(&self, event: GraphEvent) -> Result<(), ServeError> {
        // Durable sessions log the client event to the router WAL
        // *before* routing (write-ahead): every event any shard
        // applies is recoverable by re-routing the router log.
        let seq = match &self.durable {
            Some(d) => {
                let next = d.seq.load(Ordering::Relaxed) + 1;
                let mut wal = d.wal.lock().unwrap_or_else(PoisonError::into_inner);
                if let Err(e) = wal.append(next, &event) {
                    eprintln!("glodyne-serve: router wal append failed: {e}");
                }
                drop(wal);
                d.seq.store(next, Ordering::Relaxed);
                next
            }
            None => 0,
        };
        let routed = self
            .router
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .route(event);
        for (shard, ev) in routed {
            self.shards[shard as usize].queue.send_event_seq(seq, ev)?;
        }
        self.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Queue any drifted-placement migrations, drain at most
    /// [`ShardConfig::rebalance_budget`] of them, then commit every
    /// shard's pending events and wait for all the steps. Migration
    /// events enter each shard's queue *before* its flush marker, so
    /// the committed layout includes this flush's budget-worth of
    /// moves; the remainder stays queued for later flushes (and rides
    /// barrier snapshots, so recovery resumes the same backlog).
    /// `stepped` is true when any shard stepped; `epoch` is the
    /// maximum shard epoch after the flush.
    pub fn flush(&self) -> Result<FlushOutcome, ServeError> {
        self.flush_inner(None)
    }

    /// [`ShardedSession::flush`] that waits for each shard's commit
    /// acknowledgement at most until `deadline`. The WAL marker and the
    /// budgeted rebalance drain always happen (they never wait on the
    /// trainer); a deadline that fires mid-wait leaves the flush queued
    /// — the shards still commit, only this caller stops waiting — so
    /// the epoch staleness accounting stays truthful.
    pub fn flush_deadline(&self, deadline: Instant) -> Result<FlushOutcome, ServeError> {
        self.flush_inner(Some(deadline))
    }

    fn flush_inner(&self, deadline: Option<Instant>) -> Result<FlushOutcome, ServeError> {
        {
            // Writer-order mutex for the send, router lock only for
            // the rebalance decision — reads stay unblocked.
            let _order = self
                .write_order
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let seq = match &self.durable {
                Some(d) => {
                    // Log the flush boundary so recovery replays the
                    // same rebalance-then-commit at the same point.
                    let seq = d.seq.load(Ordering::Relaxed);
                    let mut wal = d.wal.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Err(e) = wal.append_flush(seq) {
                        eprintln!("glodyne-serve: router wal flush marker failed: {e}");
                    }
                    if d.cfg.fsync == FsyncPolicy::EveryFlush {
                        if let Err(e) = wal.sync() {
                            eprintln!("glodyne-serve: router wal fsync failed: {e}");
                        }
                    }
                    seq
                }
                None => 0,
            };
            // Lock order: pending before router (barrier_checkpoint
            // matches), both under write_order.
            let mut pending = self
                .rebalance
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(rb) = self
                .router
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .maybe_rebalance()
            {
                pending.extend(rb.events);
            }
            let quota = self.rebalance.drain_quota(pending.len());
            if quota > 0 {
                self.rebalance.batches.fetch_add(1, Ordering::Relaxed);
                self.rebalance
                    .migrated
                    .fetch_add(quota as u64, Ordering::Relaxed);
            }
            for _ in 0..quota {
                let (shard, ev) = pending.pop_front().expect("quota <= pending.len()");
                self.shards[shard as usize].queue.send_event_seq(seq, ev)?;
            }
        }
        let mut outcome = FlushOutcome {
            stepped: false,
            epoch: 0,
        };
        for shard in &self.shards {
            shard.health.flush_requested();
            let one = match deadline {
                None => shard.queue.request_flush(),
                Some(at) => shard.queue.request_flush_deadline(at),
            };
            let one = match one {
                Ok(one) => one,
                Err(e) => {
                    // Only a closed channel un-counts the request: a
                    // timed-out flush is still queued and will complete.
                    if matches!(e, ServeError::Closed) {
                        shard.health.flush_unrequested();
                    }
                    return Err(e);
                }
            };
            outcome.stepped |= one.stepped;
            outcome.epoch = outcome.epoch.max(one.epoch);
        }
        if let Some(d) = &self.durable {
            if d.cfg.snapshot_every > 0 {
                let base = d
                    .last_snapshot_epoch
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or(0);
                if outcome.epoch.saturating_sub(base) >= d.cfg.snapshot_every {
                    if let Err(e) = self.barrier_checkpoint() {
                        eprintln!("glodyne-serve: barrier checkpoint failed: {e}");
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Freeze a common barrier across every lineage: all shards
    /// snapshot at the current client sequence, then the router
    /// snapshots its state at the same sequence and prunes the covered
    /// router WAL prefix. Shards go first — a crash in between leaves
    /// shard snapshots without a matching router snapshot, and recovery
    /// simply falls back to the previous complete barrier (which every
    /// lineage still retains).
    fn barrier_checkpoint(&self) -> io::Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let _order = self
            .write_order
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let seq = d.seq.load(Ordering::Relaxed);
        // Lock order: pending before router (flush matches). The
        // undrained migration backlog rides the router snapshot so
        // recovery resumes with the same queue instead of re-deriving
        // (and potentially re-applying) moves already committed.
        let payload = {
            let pending = self
                .rebalance
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let router = self
                .router
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .export_state();
            encode_router_payload(&router, &pending)
        };
        // Checkpoint messages ride each shard queue behind everything
        // already enqueued, so each lineage freezes exactly the
        // barrier prefix.
        for shard in &self.shards {
            shard
                .queue
                .request_checkpoint(seq)
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "shard trainer is gone"))?;
        }
        let epoch = self
            .epochs()
            .iter()
            .map(|e| e.epoch)
            .max()
            .unwrap_or_default();
        write_snapshot(&d.router_dir, seq, epoch, PAYLOAD_ROUTER, &payload)?;
        prune_snapshots(&d.router_dir, d.cfg.keep_snapshots)?;
        // Keep router WAL back to the *oldest* retained router
        // snapshot, mirroring the unsharded lineage's fallback rule.
        let floor = list_snapshots(&d.router_dir)?
            .first()
            .map_or(seq, |&(s, _)| s);
        d.wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .prune_covered(floor)?;
        *d.last_snapshot_epoch
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(epoch);
        Ok(())
    }

    /// Every shard's currently served epoch (cloned `Arc`s; frozen for
    /// as long as the caller holds them).
    pub fn epochs(&self) -> Vec<Arc<EmbeddingEpoch>> {
        self.shards.iter().map(|s| s.epochs.load()).collect()
    }

    /// Every shard's served epoch for background observers: same
    /// `Arc`s, but the freshness-lag stamps are left for the first
    /// *client* reads.
    pub fn probe_epochs(&self) -> Vec<Arc<EmbeddingEpoch>> {
        self.shards
            .iter()
            .map(|s| s.epochs.load_untracked())
            .collect()
    }

    /// The embedding vector of `node` in its owner shard's served
    /// epoch, with that epoch's id (0 when the node has no owner).
    pub fn query(&self, node: NodeId) -> (u64, Option<Vec<f32>>) {
        let router = self.router.read().unwrap_or_else(PoisonError::into_inner);
        let Some(shard) = router.owner(node) else {
            return (0, None);
        };
        drop(router);
        let epoch = self.shards[shard as usize].epochs.load();
        (epoch.epoch, epoch.embedding.get(node).map(<[f32]>::to_vec))
    }

    /// Exact global `k`-nearest: per-shard scans of owned rows merged
    /// through the shared top-`k` heap — bit-exact with an unsharded
    /// exact scan over the owner-filtered union of the shard epochs.
    /// `(epoch, None)` when the node has no owned vector; the epoch id
    /// is the owner shard's.
    pub fn nearest(&self, node: NodeId, k: usize) -> (u64, Option<Vec<(NodeId, f32)>>) {
        self.fanout(node, |views, owner, reporting| {
            let _ = reporting;
            fanout::nearest_exact(views, owner, node, k)
        })
    }

    /// Approximate global `k`-nearest: probe each shard epoch's IVF
    /// index with `nprobe` cells (the session default when `None`),
    /// drop halo hits, merge. `None` when ANN is disabled on this
    /// session. The inner option is `None` when the node has no owned
    /// vector. The returned probe width is the request clamped to the
    /// configured cell target (per-shard indexes may clamp tighter).
    #[allow(clippy::type_complexity)]
    pub fn nearest_ann(
        &self,
        node: NodeId,
        k: usize,
        nprobe: Option<usize>,
    ) -> Option<(u64, Option<Vec<(NodeId, f32)>>, usize)> {
        let settings = self.ann?;
        let effective = nprobe
            .unwrap_or(settings.default_nprobe)
            .clamp(1, settings.config.cells);
        let overfetch = self.ann_overfetch();
        let (epoch, hits) = self.fanout(node, |views, owner, _| {
            fanout::nearest_approx(views, owner, node, k, effective, overfetch)
        });
        Some((epoch, hits, effective))
    }

    /// The configured fan-out over-fetch factor
    /// ([`ShardConfig::ann_overfetch`]): how many candidates each shard
    /// is asked for (`k * factor`) before halo filtering.
    fn ann_overfetch(&self) -> usize {
        self.router
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .config()
            .ann_overfetch
    }

    /// [`ShardedSession::nearest`] for a whole batch: **one** router
    /// read and **one** epoch snapshot serve every query — the fan-out
    /// views are built once per batch, not per node. The reported
    /// epoch is the maximum shard epoch of the snapshot (the same
    /// session-level epoch `stats`/`flush` report); per-node `None`
    /// still means "no owned vector", exactly like the single-node
    /// call. Each `Some` entry is bit-exact with the single-node call
    /// against the same frozen snapshot.
    #[allow(clippy::type_complexity)]
    pub fn nearest_batch(
        &self,
        nodes: &[NodeId],
        k: usize,
    ) -> (u64, Vec<Option<Vec<(NodeId, f32)>>>) {
        let router = self.router.read().unwrap_or_else(PoisonError::into_inner);
        let epochs = self.epochs();
        let views = Self::views(&epochs);
        let owner = |id: NodeId| router.owner(id);
        let results = nodes
            .iter()
            .map(|&node| {
                let shard = owner(node)?;
                epochs[shard as usize].embedding.get(node)?;
                Some(fanout::nearest_exact(&views, owner, node, k))
            })
            .collect();
        (epochs.iter().map(|e| e.epoch).max().unwrap_or(0), results)
    }

    /// [`ShardedSession::nearest_ann`] for a whole batch: one router
    /// read, one epoch snapshot, and scan scratch shared across every
    /// query. `None` when ANN is disabled on this session.
    #[allow(clippy::type_complexity)]
    pub fn nearest_batch_ann(
        &self,
        nodes: &[NodeId],
        k: usize,
        nprobe: Option<usize>,
    ) -> Option<(u64, Vec<Option<Vec<(NodeId, f32)>>>, usize)> {
        let settings = self.ann?;
        let effective = nprobe
            .unwrap_or(settings.default_nprobe)
            .clamp(1, settings.config.cells);
        let router = self.router.read().unwrap_or_else(PoisonError::into_inner);
        let overfetch = router.config().ann_overfetch;
        let epochs = self.epochs();
        let views = Self::views(&epochs);
        let owner = |id: NodeId| router.owner(id);
        // One cell-grouped scan per shard serves the whole batch; the
        // grouped fan-out is bit-exact per query with the single-node
        // call, so only the known/unknown split happens here.
        let grouped = fanout::nearest_approx_batch(&views, owner, nodes, k, effective, overfetch);
        let results = nodes
            .iter()
            .zip(grouped)
            .map(|(&node, hits)| {
                let shard = owner(node)?;
                epochs[shard as usize].embedding.get(node)?;
                Some(hits)
            })
            .collect();
        Some((
            epochs.iter().map(|e| e.epoch).max().unwrap_or(0),
            results,
            effective,
        ))
    }

    /// The fan-out views over one epoch snapshot.
    fn views(epochs: &[Arc<EmbeddingEpoch>]) -> Vec<ShardView<'_>> {
        epochs
            .iter()
            .enumerate()
            .map(|(shard, epoch)| ShardView {
                shard: shard as u32,
                embedding: &epoch.embedding,
                index: epoch.index.as_ref(),
            })
            .collect()
    }

    /// Shared read-path skeleton: snapshot ownership and every shard
    /// epoch once, report the owner shard's epoch id, and distinguish
    /// "node unknown" (`None`) from "no candidates" (`Some(empty)`).
    fn fanout<F>(&self, node: NodeId, run: F) -> (u64, Option<Vec<(NodeId, f32)>>)
    where
        F: FnOnce(&[ShardView<'_>], &dyn Fn(NodeId) -> Option<u32>, u64) -> Vec<(NodeId, f32)>,
    {
        let router = self.router.read().unwrap_or_else(PoisonError::into_inner);
        let epochs = self.epochs();
        let views = Self::views(&epochs);
        let owner = |id: NodeId| router.owner(id);
        let Some(shard) = owner(node) else {
            return (0, None);
        };
        let epoch_id = epochs[shard as usize].epoch;
        if epochs[shard as usize].embedding.get(node).is_none() {
            // Owned but not yet committed by its owner: still unknown
            // to the read surface.
            return (epoch_id, None);
        }
        (epoch_id, Some(run(&views, &owner, epoch_id)))
    }

    /// Aggregate counters plus the per-shard break-down.
    pub fn stats(&self) -> ServeStats {
        let router = self.router.read().unwrap_or_else(PoisonError::into_inner);
        let live_nodes = router.global().num_nodes();
        drop(router);
        let epochs = self.epochs();
        let per_shard: Vec<ShardEpochStats> = epochs
            .iter()
            .zip(&self.shards)
            .enumerate()
            .map(|(i, (epoch, handle))| ShardEpochStats {
                shard: i as u32,
                epoch: epoch.epoch,
                nodes: epoch.embedding.len(),
                queue_depth: handle.queue.depth(),
                events_accepted: handle.queue.accepted(),
                ann_build: epoch.index.as_ref().map(|ix| ix.build_time()),
                ann_build_kind: epoch.index.as_ref().map(|ix| ix.build_kind().as_str()),
                ann_dirty_rows: epoch.index.as_ref().map(|ix| ix.dirty_rows()),
            })
            .collect();
        ServeStats {
            epoch: per_shard.iter().map(|s| s.epoch).max().unwrap_or(0),
            nodes: live_nodes,
            dim: epochs.first().map_or(0, |e| e.embedding.dim()),
            queue_depth: per_shard.iter().map(|s| s.queue_depth).sum(),
            queue_capacity: self.shards.first().map_or(0, |s| s.queue.capacity()),
            // The worst backlog any one shard ever saw — a summed
            // high-water would mix moments that never coexisted.
            queue_high_water: self
                .shards
                .iter()
                .map(|s| s.queue.depth_high_water())
                .max()
                .unwrap_or(0),
            events_accepted: self.accepted.load(Ordering::Relaxed),
            ann: self.ann.as_ref().map(|settings| AnnStats {
                cells: settings.config.cells,
                default_nprobe: settings.default_nprobe,
                build: per_shard
                    .iter()
                    .filter_map(|s| s.ann_build)
                    .max()
                    .unwrap_or_default(),
                storage: if settings.config.quantize {
                    StorageMode::Sq8
                } else {
                    StorageMode::F32
                },
                index_bytes: epochs
                    .iter()
                    .filter_map(|e| e.index.as_ref())
                    .map(glodyne_ann::IvfIndex::index_bytes)
                    .sum(),
                // A session-level "incremental" only when every shard
                // took the cheap path — one drift-triggered rebuild is
                // the cost the operator needs to see.
                build_kind: if per_shard
                    .iter()
                    .all(|s| s.ann_build_kind == Some("incremental"))
                {
                    "incremental"
                } else {
                    "full"
                },
                dirty_rows: per_shard.iter().filter_map(|s| s.ann_dirty_rows).sum(),
            }),
            shards: Some(per_shard),
            durability: self.durable.as_ref().map(|d| {
                let wal = d.wal.lock().unwrap_or_else(PoisonError::into_inner).stats();
                let mut agg = DurabilityStats {
                    wal_segments: wal.segments,
                    wal_bytes: wal.bytes,
                    last_snapshot_epoch: *d
                        .last_snapshot_epoch
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                    last_fsync_ms: wal
                        .last_fsync
                        .map(|at| Instant::now().saturating_duration_since(at).as_millis() as u64),
                    recovered_from: d.recovered_from.clone(),
                };
                for gauge in &d.gauges {
                    let shard = gauge.snapshot();
                    agg.wal_segments += shard.wal_segments;
                    agg.wal_bytes += shard.wal_bytes;
                    // Most recent fsync across lineages = smallest age.
                    agg.last_fsync_ms = match (agg.last_fsync_ms, shard.last_fsync_ms) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                agg
            }),
            telemetry: self.telemetry.as_ref().map(|t| {
                t.stats(
                    self.shards.iter().map(|s| s.queue.depth()).sum(),
                    self.shards
                        .iter()
                        .map(|s| s.queue.depth_high_water())
                        .max()
                        .unwrap_or(0),
                )
            }),
            health: Some(self.health()),
            rebalance: Some(self.rebalance.stats()),
        }
    }

    /// Aggregate trainer health across shards: degraded when *any*
    /// shard is, alive only when *every* trainer is, staleness and
    /// stall age from the worst shard.
    pub fn health(&self) -> HealthStats {
        let mut agg = HealthStats {
            degraded: false,
            trainer_alive: true,
            stale_epochs: 0,
            stalled_ms: 0,
        };
        for shard in &self.shards {
            let one = shard.health.evaluate(shard.queue.depth());
            agg.degraded |= one.degraded;
            agg.trainer_alive &= one.trainer_alive;
            agg.stale_epochs = agg.stale_epochs.max(one.stale_epochs);
            agg.stalled_ms = agg.stalled_ms.max(one.stalled_ms);
        }
        if let Some(t) = &self.telemetry {
            t.sync_health_gauges(agg.degraded, agg.stale_epochs);
        }
        agg
    }

    /// Tune how long every shard's trainer may sit on pending work
    /// before the watchdog calls it stalled (default
    /// [`DEFAULT_STALL_AFTER`]).
    pub fn set_stall_after(&self, stall_after: Duration) {
        for shard in &self.shards {
            shard.health.set_stall_after(stall_after);
        }
    }

    /// The telemetry hub, when instrumentation is on.
    pub fn telemetry(&self) -> Option<&Arc<ServeTelemetry>> {
        self.telemetry.as_ref()
    }

    /// Stop every trainer and wait for them. Idempotent; reads keep
    /// working off the last published epochs, writes return
    /// [`ServeError::Closed`].
    pub fn shutdown(&self) {
        // Durable clean stop: commit pending work, then freeze a final
        // barrier so a restart replays nothing. If the trainers are
        // already gone (second call), both steps no-op.
        if self.durable.is_some() && self.flush().is_ok() {
            if let Err(e) = self.barrier_checkpoint() {
                eprintln!("glodyne-serve: final barrier failed: {e}");
            }
        }
        for shard in &self.shards {
            shard.queue.send_shutdown();
        }
        let handles =
            std::mem::take(&mut *self.trainers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            // Same policy as the unsharded session: a trainer that
            // panicked already published its last good epoch.
            let _ = handle.join();
        }
    }
}

impl Drop for ShardedSession {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne::{EpochPolicy, GloDyNE, GloDyNEConfig, IvfConfig};
    use glodyne_embed::walks::WalkConfig;
    use glodyne_embed::SgnsConfig;

    fn tiny_model(seed: u64) -> GloDyNE {
        let cfg = GloDyNEConfig {
            alpha: 0.5,
            walk: WalkConfig {
                walks_per_node: 2,
                walk_length: 8,
                seed,
            },
            sgns: SgnsConfig {
                dim: 8,
                window: 2,
                negatives: 2,
                epochs: 1,
                parallel: false,
                seed,
                ..Default::default()
            },
            ..Default::default()
        };
        GloDyNE::new(cfg).unwrap()
    }

    fn tiny_session(seed: u64) -> EmbedderSession<GloDyNE> {
        EmbedderSession::new(tiny_model(seed), EpochPolicy::Manual).unwrap()
    }

    fn sharded(shards: usize, ann: Option<AnnSettings>) -> ShardedSession {
        let sessions = (0..shards).map(|s| tiny_session(s as u64)).collect();
        ShardedSession::spawn_with_ann(
            sessions,
            ShardConfig {
                shards,
                min_partition_nodes: 8,
                ..Default::default()
            },
            64,
            ann,
        )
        .unwrap()
    }

    /// Two tight communities plus one bridge, as graph events.
    fn community_events() -> Vec<GraphEvent> {
        let mut events = Vec::new();
        for c in 0..2u32 {
            let base = c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    events.push(GraphEvent::add_edge(NodeId(base + i), NodeId(base + j), 0));
                }
            }
        }
        events.push(GraphEvent::add_edge(NodeId(0), NodeId(10), 0));
        events
    }

    #[test]
    fn session_count_must_match_shard_count() {
        let sessions = vec![tiny_session(0)];
        match ShardedSession::spawn(sessions, ShardConfig::with_shards(2), 8) {
            Err(err) => assert_eq!(err.param(), "shards"),
            Ok(_) => panic!("one session per shard must be enforced"),
        }
    }

    #[test]
    fn ingest_flush_query_round_trip_across_shards() {
        let serving = sharded(2, None);
        let events = community_events();
        assert_eq!(serving.ingest(&events).unwrap(), events.len());
        let outcome = serving.flush().unwrap();
        assert!(outcome.stepped);
        assert!(outcome.epoch >= 1);

        // Every live node answers through its owner shard.
        for n in (0..20u32).map(NodeId) {
            let (_, vector) = serving.query(n);
            assert!(vector.is_some(), "node {n:?}");
        }
        let (_, unknown) = serving.query(NodeId(999));
        assert!(unknown.is_none());
        serving.shutdown();
    }

    #[test]
    fn fanout_nearest_is_bit_exact_with_the_union_scan() {
        let serving = sharded(2, None);
        serving.ingest(&community_events()).unwrap();
        serving.flush().unwrap();

        let epochs = serving.epochs();
        let views: Vec<ShardView<'_>> = epochs
            .iter()
            .enumerate()
            .map(|(shard, e)| ShardView {
                shard: shard as u32,
                embedding: &e.embedding,
                index: None,
            })
            .collect();
        let router = serving.router.read().unwrap();
        let union = fanout::union_embedding(&views, |id| router.owner(id));
        drop(router);

        for probe in [0u32, 5, 10, 15] {
            let (_, hits) = serving.nearest(NodeId(probe), 6);
            let hits = hits.expect("probe is owned and embedded");
            let spec = union.top_k(NodeId(probe), 6);
            assert_eq!(hits.len(), spec.len());
            for (a, b) in hits.iter().zip(&spec) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
        let (_, missing) = serving.nearest(NodeId(999), 5);
        assert!(missing.is_none(), "unknown probe is not-found, not empty");
        serving.shutdown();
    }

    #[test]
    fn ann_fanout_probes_per_shard_indexes() {
        let settings = AnnSettings {
            config: IvfConfig {
                cells: 4,
                ..Default::default()
            },
            default_nprobe: 2,
        };
        let serving = sharded(2, Some(settings));
        serving.ingest(&community_events()).unwrap();
        serving.flush().unwrap();

        for epoch in serving.epochs() {
            assert!(epoch.index.is_some(), "each shard publishes its index");
        }
        let (_, hits, nprobe) = serving.nearest_ann(NodeId(3), 5, None).unwrap();
        assert_eq!(nprobe, 2, "session default nprobe");
        let hits = hits.unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|&(id, _)| id != NodeId(3)));
        // Requested nprobe clamps to the configured cell target.
        let (_, _, wide) = serving.nearest_ann(NodeId(3), 5, Some(999)).unwrap();
        assert_eq!(wide, 4);

        // Every shard's epoch reports how its index was built, and the
        // session aggregate picks a kind plus the summed churn.
        let stats = serving.stats();
        let ann = stats.ann.as_ref().expect("ann enabled");
        assert!(matches!(ann.build_kind, "full" | "incremental"));
        let shards = stats.shards.as_ref().expect("sharded break-down");
        assert!(shards
            .iter()
            .all(|s| s.ann_build_kind.is_some() && s.ann_dirty_rows.is_some()));

        let none = sharded(2, None);
        assert!(none.nearest_ann(NodeId(0), 3, None).is_none());
        serving.shutdown();
    }

    #[test]
    fn nearest_batch_matches_per_query_across_shards() {
        for quantize in [false, true] {
            let settings = AnnSettings {
                config: IvfConfig {
                    cells: 4,
                    quantize,
                    ..Default::default()
                },
                default_nprobe: 2,
            };
            let serving = sharded(2, Some(settings));
            serving.ingest(&community_events()).unwrap();
            serving.flush().unwrap();

            // Unknown probe in the middle; known nodes across both
            // communities (and so, typically, both shards).
            let nodes: Vec<NodeId> = [0u32, 5, 999, 10, 15].map(NodeId).to_vec();

            // Exact batch ≡ per-query exact, bit for bit, with the
            // None-vs-Some(empty) distinction preserved.
            let (batch_epoch, batch) = serving.nearest_batch(&nodes, 6);
            assert_eq!(batch.len(), nodes.len());
            assert_eq!(batch_epoch, serving.stats().epoch);
            for (&node, got) in nodes.iter().zip(&batch) {
                let (_, single) = serving.nearest(node, 6);
                match (got, &single) {
                    (Some(g), Some(s)) => {
                        assert_eq!(g.len(), s.len());
                        for (a, b) in g.iter().zip(s) {
                            assert_eq!(a.0, b.0);
                            assert_eq!(a.1.to_bits(), b.1.to_bits());
                        }
                    }
                    (None, None) => assert_eq!(node, NodeId(999)),
                    _ => panic!("batch/single disagree on {node:?} presence"),
                }
            }

            // ANN batch ≡ per-query ANN for narrow and saturating
            // probes (scratch reuse must not change results).
            for nprobe in [None, Some(1), Some(usize::MAX)] {
                let (_, batch, eff) = serving.nearest_batch_ann(&nodes, 5, nprobe).unwrap();
                for (&node, got) in nodes.iter().zip(&batch) {
                    let (_, single, single_eff) = serving.nearest_ann(node, 5, nprobe).unwrap();
                    assert_eq!(eff, single_eff);
                    match (got, &single) {
                        (Some(g), Some(s)) => {
                            assert_eq!(g.len(), s.len());
                            for (a, b) in g.iter().zip(s) {
                                assert_eq!(a.0, b.0);
                                assert_eq!(a.1.to_bits(), b.1.to_bits());
                            }
                        }
                        (None, None) => assert_eq!(node, NodeId(999)),
                        _ => panic!("ann batch/single disagree on {node:?} presence"),
                    }
                }
            }

            // Stats report the configured storage mode and the summed
            // per-shard index footprint.
            let ann = serving.stats().ann.expect("ann enabled");
            let expected = if quantize {
                StorageMode::Sq8
            } else {
                StorageMode::F32
            };
            assert_eq!(ann.storage, expected);
            assert!(ann.index_bytes > 0);

            // ANN-disabled sessions refuse the batch too.
            let none = sharded(2, None);
            assert!(none.nearest_batch_ann(&nodes, 5, None).is_none());
            serving.shutdown();
        }
    }

    #[test]
    fn stats_carry_the_per_shard_break_down() {
        let serving = sharded(2, None);
        serving.ingest(&community_events()).unwrap();
        serving.flush().unwrap();
        let stats = serving.stats();
        assert_eq!(stats.events_accepted, community_events().len() as u64);
        assert_eq!(
            stats.nodes, 20,
            "live nodes, halo copies not double-counted"
        );
        assert_eq!(stats.dim, 8);
        let shards = stats.shards.as_ref().expect("sharded break-down");
        assert_eq!(shards.len(), 2);
        assert!(shards.iter().all(|s| s.queue_depth == 0));
        assert!(shards.iter().any(|s| s.epoch >= 1));
        assert_eq!(stats.epoch, shards.iter().map(|s| s.epoch).max().unwrap());
        // Mirrored copies make the per-shard sum >= the client count.
        let mirrored: u64 = shards.iter().map(|s| s.events_accepted).sum();
        assert!(mirrored >= stats.events_accepted);
        serving.shutdown();
    }

    #[test]
    fn shutdown_keeps_reads_and_fails_writes() {
        let serving = sharded(2, None);
        serving.ingest(&community_events()).unwrap();
        serving.flush().unwrap();
        serving.shutdown();
        serving.shutdown(); // idempotent

        let (_, vector) = serving.query(NodeId(0));
        assert!(vector.is_some(), "reads survive shutdown");
        assert!(matches!(
            serving.ingest(&[GraphEvent::add_edge(NodeId(50), NodeId(51), 9)]),
            Err(ServeError::Closed)
        ));
        assert!(matches!(serving.flush(), Err(ServeError::Closed)));
    }

    fn durable_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "glodyne-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spawn_sharded_durable(dir: &Path, dcfg: DurableConfig) -> (ShardedSession, Option<String>) {
        ShardedSession::spawn_durable(
            dir,
            ShardConfig {
                shards: 2,
                min_partition_nodes: 8,
                ..Default::default()
            },
            dcfg,
            EpochPolicy::Manual,
            64,
            None,
            |i| tiny_model(i as u64),
        )
        .unwrap()
    }

    /// One node's (id, owner shard, epoch, row bits).
    type NodeState = (u32, Option<u32>, u64, Option<Vec<u32>>);

    /// Every owned node's state — what a restart must reproduce exactly.
    fn full_state(serving: &ShardedSession) -> Vec<NodeState> {
        let router = serving.router.read().unwrap();
        (0..25u32)
            .map(|n| {
                let owner = router.owner(NodeId(n));
                let (epoch, row) = serving.query(NodeId(n));
                (
                    n,
                    owner,
                    epoch,
                    row.map(|v| v.iter().map(|x| x.to_bits()).collect()),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_durable_clean_restart_is_bit_exact() {
        let dir = durable_dir("restart");
        let dcfg = DurableConfig {
            fsync: FsyncPolicy::Off,
            snapshot_every: 1,
            ..DurableConfig::default()
        };
        let (serving, recovered) = spawn_sharded_durable(&dir, dcfg);
        assert!(recovered.is_none(), "fresh directory has no lineage");
        serving.ingest(&community_events()).unwrap();
        assert!(serving.flush().unwrap().stepped);
        let dur = serving.stats().durability.expect("sharded durable stats");
        assert!(
            dur.wal_segments >= 3,
            "router + one lineage per shard: {dur:?}"
        );
        assert!(dur.last_snapshot_epoch.is_some(), "barrier after flush");
        let before = full_state(&serving);
        serving.shutdown();
        drop(serving);

        let (restarted, recovered) = spawn_sharded_durable(&dir, dcfg);
        let provenance = recovered.expect("lineage found on disk");
        assert!(
            provenance.contains("+ 0 router events"),
            "clean shutdown replays nothing: {provenance}"
        );
        assert_eq!(full_state(&restarted), before, "owners, epochs, and rows");
        assert_eq!(
            restarted
                .stats()
                .durability
                .unwrap()
                .recovered_from
                .as_deref(),
            Some(provenance.as_str())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_durable_router_wal_replay_rebuilds_lost_snapshots() {
        let dir = durable_dir("replay");
        // snapshot_every: 0 — no mid-run barriers, so the router WAL
        // keeps the full event history for this test.
        let dcfg = DurableConfig {
            fsync: FsyncPolicy::EveryNEvents(1),
            snapshot_every: 0,
            ..DurableConfig::default()
        };
        let (serving, _) = spawn_sharded_durable(&dir, dcfg);
        let events = community_events();
        serving.ingest(&events[..events.len() / 2]).unwrap();
        serving.flush().unwrap();
        serving.ingest(&events[events.len() / 2..]).unwrap();
        serving.flush().unwrap();
        let before = full_state(&serving);
        serving.shutdown(); // final barrier written...
        drop(serving);

        // ...then every snapshot "corrupts away": recovery must fall
        // back to re-routing the full router WAL from scratch and
        // still land bit-exactly, flush boundaries included.
        for sub in ["router", "shard-0", "shard-1"] {
            for entry in std::fs::read_dir(dir.join(sub)).unwrap() {
                let path = entry.unwrap().path();
                if path.extension().is_some_and(|e| e == "glo") {
                    std::fs::remove_file(&path).unwrap();
                }
            }
        }
        let (restarted, recovered) = spawn_sharded_durable(&dir, dcfg);
        let provenance = recovered.expect("router wal found");
        assert!(
            provenance.contains("router wal replay only"),
            "{provenance}"
        );
        assert_eq!(full_state(&restarted), before, "owners, epochs, and rows");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
