//! The bounded ingest queue between producers and the trainer thread.
//!
//! A `std::sync::mpsc::sync_channel` of trainer messages. Producers
//! (connection threads, in-process callers) block in `send` when the
//! queue is full — that *is* the back-pressure: a slow embedding step
//! slows ingestion down to training speed instead of growing an
//! unbounded backlog, while readers keep answering from the published
//! epoch untouched. Flush requests ride the same channel, so a flush
//! observes every event enqueued before it.

use crate::error::ServeError;
use glodyne_graph::state::GraphEvent;
use glodyne_telemetry::Histogram;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the trainer sees on its inbox.
pub(crate) enum TrainerMsg {
    /// One graph event to apply. `seq` is the durable WAL sequence
    /// number: `0` on non-durable and unsharded-durable sessions
    /// (the trainer assigns its own), the client event's sequence on
    /// sharded-durable sessions (every lineage logs the same number).
    /// `queued` stamps enqueue time so the trainer can attribute queue
    /// wait to telemetry.
    Event {
        seq: u64,
        event: GraphEvent,
        queued: Instant,
    },
    /// Commit now; reply with the outcome on the enclosed channel.
    Flush(mpsc::Sender<FlushOutcome>),
    /// Durable barrier: freeze a snapshot stamped with this sequence
    /// number, then ack. Non-durable trainers ack without snapshotting.
    Checkpoint { seq: u64, ack: mpsc::Sender<()> },
    /// Drain nothing further and exit.
    Shutdown,
}

/// What a flush accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Whether an embedding step actually ran (false when no effective
    /// events were pending).
    pub stepped: bool,
    /// The epoch id after the flush (== committed steps so far).
    pub epoch: u64,
}

/// Producer half: clonable, blocking on a full queue.
#[derive(Clone)]
pub struct IngestQueue {
    tx: SyncSender<TrainerMsg>,
    depth: Arc<AtomicUsize>,
    high_water: Arc<AtomicUsize>,
    accepted: Arc<AtomicU64>,
    capacity: usize,
}

/// Trainer half: pops messages, maintaining the depth gauge.
pub(crate) struct TrainerInbox {
    rx: Receiver<TrainerMsg>,
    depth: Arc<AtomicUsize>,
    /// When present, each popped event's time-in-queue is recorded
    /// here (micros between enqueue and the trainer picking it up).
    wait: Option<Arc<Histogram>>,
}

/// A bounded queue of `capacity` in-flight messages (tests; production
/// paths go through [`bounded_instrumented`], possibly with no sink).
#[cfg(test)]
pub(crate) fn bounded(capacity: usize) -> (IngestQueue, TrainerInbox) {
    bounded_instrumented(capacity, None)
}

/// [`bounded`] with an optional queue-wait histogram attached to the
/// trainer side.
pub(crate) fn bounded_instrumented(
    capacity: usize,
    wait: Option<Arc<Histogram>>,
) -> (IngestQueue, TrainerInbox) {
    let (tx, rx) = mpsc::sync_channel(capacity.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    (
        IngestQueue {
            tx,
            depth: Arc::clone(&depth),
            high_water: Arc::new(AtomicUsize::new(0)),
            accepted: Arc::new(AtomicU64::new(0)),
            capacity: capacity.max(1),
        },
        TrainerInbox { rx, depth, wait },
    )
}

impl IngestQueue {
    /// Enqueue one event, blocking while the queue is full
    /// (back-pressure). [`ServeError::Closed`] once the trainer exits.
    pub fn send_event(&self, event: GraphEvent) -> Result<(), ServeError> {
        self.enqueue_failpoint()?;
        self.send_event_seq(0, event)
    }

    /// [`IngestQueue::send_event`] tagged with an explicit durable
    /// sequence number (sharded ingest, where the router assigns one
    /// client sequence across every lineage). No failpoint here: the
    /// sharded path checks `ingest.enqueue` *before* the router WAL
    /// append — shedding after the event is durable would let recovery
    /// replay an event the live run never applied.
    pub(crate) fn send_event_seq(&self, seq: u64, event: GraphEvent) -> Result<(), ServeError> {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        // The high-water mark survives between polls: back-pressure
        // incidents show up in `stats` even after the queue drains.
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        match self.tx.send(TrainerMsg::Event {
            seq,
            event,
            queued: Instant::now(),
        }) {
            Ok(()) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(ServeError::Closed)
            }
        }
    }

    /// Fast-fail enqueue: never blocks. A full queue sheds the event
    /// with [`ServeError::Overloaded`] instead of back-pressuring the
    /// calling thread — the overload-control mode for wire ingest,
    /// where blocking would hold the connection's reader hostage.
    pub fn try_send_event(&self, event: GraphEvent) -> Result<(), ServeError> {
        self.enqueue_failpoint()?;
        self.try_send_event_seq(0, event)
    }

    /// [`IngestQueue::try_send_event`] with an explicit sequence (and,
    /// as with [`IngestQueue::send_event_seq`], no failpoint).
    pub(crate) fn try_send_event_seq(&self, seq: u64, event: GraphEvent) -> Result<(), ServeError> {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
        match self.tx.try_send(TrainerMsg::Event {
            seq,
            event,
            queued: Instant::now(),
        }) {
            Ok(()) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(err) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                match err {
                    TrySendError::Full(_) => Err(ServeError::Overloaded {
                        depth: self.depth(),
                        capacity: self.capacity,
                    }),
                    TrySendError::Disconnected(_) => Err(ServeError::Closed),
                }
            }
        }
    }

    /// Deadline-bounded enqueue: retries a full queue until `deadline`,
    /// then gives up with [`ServeError::DeadlineExceeded`]. Bounds how
    /// long a back-pressured producer can be held, without shedding on
    /// a transient spike the trainer drains in time.
    pub fn send_event_deadline(
        &self,
        event: GraphEvent,
        deadline: Instant,
    ) -> Result<(), ServeError> {
        self.enqueue_failpoint()?;
        self.send_event_seq_deadline(0, event, deadline)
    }

    /// [`IngestQueue::send_event_deadline`] with an explicit sequence.
    pub(crate) fn send_event_seq_deadline(
        &self,
        seq: u64,
        event: GraphEvent,
        deadline: Instant,
    ) -> Result<(), ServeError> {
        loop {
            match self.try_send_event_seq(seq, event) {
                Err(ServeError::Overloaded { .. }) => {
                    if Instant::now() >= deadline {
                        return Err(ServeError::DeadlineExceeded);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                other => return other,
            }
        }
    }

    /// The shared `ingest.enqueue` failpoint: delays and stalls take
    /// effect in place; an injected failure sheds the event as an
    /// overload.
    fn enqueue_failpoint(&self) -> Result<(), ServeError> {
        if glodyne_chaos::shed(glodyne_chaos::sites::INGEST_ENQUEUE) {
            return Err(ServeError::Overloaded {
                depth: self.depth(),
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Enqueue a flush and wait for the trainer to commit everything
    /// sent before it.
    pub fn request_flush(&self) -> Result<FlushOutcome, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(TrainerMsg::Flush(ack_tx))
            .map_err(|_| ServeError::Closed)?;
        ack_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// [`IngestQueue::request_flush`] that gives up waiting for the
    /// trainer's ack at `deadline`. The flush itself stays queued — a
    /// stalled trainer that later recovers still commits it — but the
    /// caller gets its thread back with
    /// [`ServeError::DeadlineExceeded`].
    pub fn request_flush_deadline(&self, deadline: Instant) -> Result<FlushOutcome, ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(TrainerMsg::Flush(ack_tx))
            .map_err(|_| ServeError::Closed)?;
        let wait = deadline.saturating_duration_since(Instant::now());
        match ack_rx.recv_timeout(wait) {
            Ok(outcome) => Ok(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }

    /// Enqueue a durable barrier checkpoint stamped `seq` and wait for
    /// the trainer to freeze (or skip, when non-durable) its snapshot.
    pub(crate) fn request_checkpoint(&self, seq: u64) -> Result<(), ServeError> {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.tx
            .send(TrainerMsg::Checkpoint { seq, ack: ack_tx })
            .map_err(|_| ServeError::Closed)?;
        ack_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Ask the trainer to exit; succeeds silently if it already has.
    pub(crate) fn send_shutdown(&self) {
        let _ = self.tx.send(TrainerMsg::Shutdown);
    }

    /// Events currently waiting in the queue (approximate gauge).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The deepest the queue has ever been (back-pressure high-water
    /// mark; never resets).
    pub fn depth_high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// The queue's bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether at least `n` slots are currently free (approximate, but
    /// conservative under a single writer: concurrent trainer drains
    /// only widen the headroom). The sharded fast-fail pre-check uses
    /// this to refuse an event *before* WAL-logging it, so a shed event
    /// is never half-accepted.
    pub(crate) fn has_free(&self, n: usize) -> bool {
        self.capacity.saturating_sub(self.depth()) >= n
    }

    /// Events accepted over the queue's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }
}

impl TrainerInbox {
    /// Next message, or `None` when every producer handle is gone.
    pub(crate) fn recv(&self) -> Option<TrainerMsg> {
        let msg = self.rx.recv().ok()?;
        if let TrainerMsg::Event { queued, .. } = &msg {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            if let Some(wait) = &self.wait {
                wait.record_duration(queued.elapsed());
            }
        }
        Some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::NodeId;
    use std::time::Duration;

    fn ev(i: u32) -> GraphEvent {
        GraphEvent::add_edge(NodeId(i), NodeId(i + 1), 0)
    }

    #[test]
    fn depth_and_accepted_track_flow() {
        let (q, inbox) = bounded(8);
        q.send_event(ev(0)).unwrap();
        q.send_event(ev(1)).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.accepted(), 2);
        assert!(matches!(inbox.recv(), Some(TrainerMsg::Event { .. })));
        assert_eq!(q.depth(), 1);
        assert_eq!(q.accepted(), 2, "accepted is cumulative");
    }

    #[test]
    fn high_water_mark_outlives_the_drain() {
        let (q, inbox) = bounded(8);
        q.send_event(ev(0)).unwrap();
        q.send_event(ev(1)).unwrap();
        q.send_event(ev(2)).unwrap();
        assert_eq!(q.depth_high_water(), 3);
        for _ in 0..3 {
            inbox.recv();
        }
        assert_eq!(q.depth(), 0, "queue drained");
        assert_eq!(
            q.depth_high_water(),
            3,
            "high-water mark records the back-pressure peak after the fact"
        );
        q.send_event(ev(3)).unwrap();
        assert_eq!(q.depth_high_water(), 3, "shallower refills don't move it");
    }

    #[test]
    fn instrumented_inbox_records_queue_wait() {
        let wait = Arc::new(Histogram::new());
        let (q, inbox) = bounded_instrumented(8, Some(Arc::clone(&wait)));
        q.send_event(ev(0)).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        inbox.recv();
        assert_eq!(wait.count(), 1);
        assert!(wait.sum() >= 2_000, "waited at least the slept 2ms");
    }

    #[test]
    fn full_queue_back_pressures_until_drained() {
        let (q, inbox) = bounded(2);
        q.send_event(ev(0)).unwrap();
        q.send_event(ev(1)).unwrap();
        // Third send must block until the consumer frees a slot.
        let q2 = q.clone();
        let sender = std::thread::spawn(move || q2.send_event(ev(2)));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !sender.is_finished(),
            "send should be blocked on full queue"
        );
        assert!(matches!(inbox.recv(), Some(TrainerMsg::Event { .. })));
        sender.join().unwrap().unwrap();
        assert_eq!(q.accepted(), 3);
    }

    #[test]
    fn checkpoint_rides_behind_events_and_carries_its_seq() {
        let (q, inbox) = bounded(8);
        q.send_event_seq(7, ev(0)).unwrap();
        let q2 = q.clone();
        let barrier = std::thread::spawn(move || q2.request_checkpoint(7));
        match inbox.recv() {
            Some(TrainerMsg::Event { seq, .. }) => assert_eq!(seq, 7),
            _ => panic!("expected event message"),
        }
        match inbox.recv() {
            Some(TrainerMsg::Checkpoint { seq, ack }) => {
                assert_eq!(seq, 7);
                ack.send(()).unwrap();
            }
            _ => panic!("expected checkpoint message"),
        }
        barrier.join().unwrap().unwrap();
    }

    #[test]
    fn try_send_sheds_on_full_and_reports_the_gauge() {
        let (q, inbox) = bounded(2);
        q.try_send_event(ev(0)).unwrap();
        q.try_send_event(ev(1)).unwrap();
        match q.try_send_event(ev(2)) {
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!(depth, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
        assert_eq!(q.depth(), 2, "shed event must not leak depth");
        assert_eq!(q.accepted(), 2);
        assert!(!q.has_free(1));
        inbox.recv();
        assert!(q.has_free(1));
        q.try_send_event(ev(3)).unwrap();
    }

    #[test]
    fn deadline_send_waits_then_gives_up() {
        let (q, inbox) = bounded(1);
        q.send_event(ev(0)).unwrap();
        // No drain: the deadline expires against a full queue.
        let deadline = Instant::now() + Duration::from_millis(30);
        let start = Instant::now();
        assert!(matches!(
            q.send_event_deadline(ev(1), deadline),
            Err(ServeError::DeadlineExceeded)
        ));
        assert!(start.elapsed() >= Duration::from_millis(25));
        // With a drain in flight the same call succeeds.
        let q2 = q.clone();
        let sender = std::thread::spawn(move || {
            q2.send_event_deadline(ev(2), Instant::now() + Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(10));
        inbox.recv();
        sender.join().unwrap().unwrap();
    }

    #[test]
    fn deadline_flush_times_out_without_a_trainer_ack() {
        let (q, inbox) = bounded(4);
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(matches!(
            q.request_flush_deadline(deadline),
            Err(ServeError::DeadlineExceeded)
        ));
        // The flush stayed queued: a recovered trainer still sees it.
        match inbox.recv() {
            Some(TrainerMsg::Flush(ack)) => {
                // The requester is gone; the ack send fails silently.
                assert!(ack
                    .send(FlushOutcome {
                        stepped: false,
                        epoch: 0
                    })
                    .is_err());
            }
            _ => panic!("expected the timed-out flush to remain queued"),
        }
    }

    // The `ingest.enqueue` failpoint is exercised in the serialized
    // integration chaos suite (tests/chaos.rs): arming the shared
    // global site here would race the other unit tests' sends.

    #[test]
    fn closed_inbox_yields_closed_errors() {
        let (q, inbox) = bounded(2);
        drop(inbox);
        assert!(matches!(q.send_event(ev(0)), Err(ServeError::Closed)));
        assert!(matches!(q.request_flush(), Err(ServeError::Closed)));
        assert_eq!(q.depth(), 0, "failed send must not leak depth");
        q.send_shutdown(); // must not panic
    }

    #[test]
    fn flush_rides_behind_events() {
        let (q, inbox) = bounded(8);
        q.send_event(ev(0)).unwrap();
        let q2 = q.clone();
        let flusher = std::thread::spawn(move || q2.request_flush());
        // The trainer side sees the event first, then the flush.
        assert!(matches!(inbox.recv(), Some(TrainerMsg::Event { .. })));
        match inbox.recv() {
            Some(TrainerMsg::Flush(ack)) => ack
                .send(FlushOutcome {
                    stepped: true,
                    epoch: 1,
                })
                .unwrap(),
            _ => panic!("expected flush message"),
        }
        assert_eq!(
            flusher.join().unwrap().unwrap(),
            FlushOutcome {
                stepped: true,
                epoch: 1
            }
        );
    }
}
