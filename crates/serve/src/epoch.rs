//! The epoch swap: immutable embedding snapshots published by the
//! trainer, read lock-free-in-spirit by any number of threads.
//!
//! After each committed step the trainer wraps the frozen state in an
//! `Arc<EmbeddingEpoch>` and swaps it into the [`EpochHandle`]. Readers
//! clone the `Arc` under a briefly-held read lock and then answer
//! queries entirely from their private clone — a reader mid-`nearest`
//! keeps its epoch alive even if the trainer publishes twice meanwhile.
//! Reads therefore never wait on a step; they may observe state one
//! epoch behind the write path, and never more.

use glodyne::StepReport;
use glodyne_ann::IvfIndex;
use glodyne_embed::Embedding;
use glodyne_telemetry::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// One node's ranked neighbour list — the unit every `nearest`
/// surface returns.
pub type Neighbours = Vec<(glodyne_graph::NodeId, f32)>;

/// One frozen, immutable generation of the served embedding.
#[derive(Debug, Clone)]
pub struct EmbeddingEpoch {
    /// Monotone epoch id — the number of committed embedding steps
    /// behind this state (0 = nothing trained yet).
    pub epoch: u64,
    /// The embedding as of this epoch.
    pub embedding: Embedding,
    /// The step that produced this epoch (`None` for epoch 0).
    pub report: Option<StepReport>,
    /// IVF index over `embedding`, built once per epoch when the
    /// serving session has ANN enabled — the index rides the same
    /// `Arc` swap as the embedding, so a reader's epoch and index
    /// always agree. `None` when ANN is disabled.
    pub index: Option<IvfIndex>,
}

impl EmbeddingEpoch {
    /// The epoch before anything was trained: an empty embedding.
    pub fn initial(dim: usize) -> Self {
        EmbeddingEpoch {
            epoch: 0,
            embedding: Embedding::new(dim),
            report: None,
            index: None,
        }
    }

    /// The `k` approximately-nearest neighbours of `node` within this
    /// epoch, probing `nprobe` IVF cells (clamped to the index's cell
    /// count). `None` when the epoch carries no index; empty hits for
    /// a node without an embedding. Returns the *effective* probe
    /// width alongside the hits — the single home of the ANN lookup
    /// shared by [`ServingSession::nearest_ann`] and the wire
    /// `dispatch`, so the two paths cannot diverge.
    ///
    /// [`ServingSession::nearest_ann`]: crate::ServingSession::nearest_ann
    pub fn search_ann(
        &self,
        node: glodyne_graph::NodeId,
        k: usize,
        nprobe: usize,
    ) -> Option<(Vec<(glodyne_graph::NodeId, f32)>, usize)> {
        let index = self.index.as_ref()?;
        let effective = index.effective_nprobe(nprobe);
        // `search_in`: SQ8-quantized indexes re-rank against this
        // epoch's own embedding (the exact rows the index was built
        // from — they travel on the same Arc), so served scores always
        // come from the exact kernel.
        let hits = match self.embedding.get(node) {
            Some(query) => index.search_in(&self.embedding, query, k, effective, Some(node)),
            None => Vec::new(),
        };
        Some((hits, effective))
    }

    /// [`EmbeddingEpoch::search_ann`] for a whole batch of nodes
    /// against this one frozen epoch: the caller acquires the epoch
    /// Arc once, and the batch goes through the index's cell-grouped
    /// scan — every probed posting list is streamed once for all the
    /// queries probing it instead of once per query. Results are
    /// positionally parallel to `nodes` (empty hits for unknown
    /// nodes); each entry is bit-exact with the single-node call on
    /// the same epoch.
    pub fn search_ann_batch(
        &self,
        nodes: &[glodyne_graph::NodeId],
        k: usize,
        nprobe: usize,
    ) -> Option<(Vec<Neighbours>, usize)> {
        let index = self.index.as_ref()?;
        let effective = index.effective_nprobe(nprobe);
        // Unknown nodes never reach the index: slot `i` remembers which
        // result position query `i` scatters back into.
        let mut slots = Vec::with_capacity(nodes.len());
        let mut queries = Vec::with_capacity(nodes.len());
        for (pos, &node) in nodes.iter().enumerate() {
            if let Some(query) = self.embedding.get(node) {
                slots.push(pos);
                queries.push(glodyne_ann::BatchQuery {
                    query,
                    exclude: Some(node),
                });
            }
        }
        let mut scratch = glodyne_ann::SearchScratch::new();
        let grouped =
            index.search_in_batch_with(&self.embedding, &queries, k, effective, &mut scratch);
        let mut results: Vec<Neighbours> = nodes.iter().map(|_| Vec::new()).collect();
        for (slot, hits) in slots.into_iter().zip(grouped) {
            results[slot] = hits;
        }
        Some((results, effective))
    }
}

/// Shared handle to the most recently published [`EmbeddingEpoch`].
///
/// Cloning the handle is cheap; all clones observe the same epoch
/// stream. The lock is held only for the pointer swap or clone, never
/// across a query or a training step.
#[derive(Debug, Clone)]
pub struct EpochHandle {
    current: Arc<RwLock<Arc<EmbeddingEpoch>>>,
    freshness: Arc<Freshness>,
}

/// Publish-to-first-read freshness tracking, armed only when a
/// telemetry histogram is attached. `pending` holds the nanoseconds
/// (since `base`, offset by +1 so 0 means "nothing pending") of the
/// last publish no reader has observed yet; the first `load` after a
/// publish consumes it and records the lag. Lock-free on both sides —
/// an un-instrumented handle pays one relaxed load per read.
#[derive(Debug)]
struct Freshness {
    base: Instant,
    pending: AtomicU64,
    histogram: OnceLock<Arc<Histogram>>,
}

impl Freshness {
    fn new() -> Self {
        Freshness {
            base: Instant::now(),
            pending: AtomicU64::new(0),
            histogram: OnceLock::new(),
        }
    }

    fn nanos_since_base(&self) -> u64 {
        self.base.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl EpochHandle {
    /// A handle starting at `initial`.
    pub fn new(initial: EmbeddingEpoch) -> Self {
        EpochHandle {
            current: Arc::new(RwLock::new(Arc::new(initial))),
            freshness: Arc::new(Freshness::new()),
        }
    }

    /// Attach a freshness histogram: from now on, the lag between each
    /// `publish` and the *first* `load` that observes it is recorded
    /// (micros). One-shot — later calls are ignored.
    pub fn set_freshness_histogram(&self, histogram: Arc<Histogram>) {
        let _ = self.freshness.histogram.set(histogram);
    }

    /// The current epoch. The returned `Arc` stays valid (and
    /// unchanged) for as long as the caller holds it, regardless of
    /// how many epochs are published after.
    pub fn load(&self) -> Arc<EmbeddingEpoch> {
        if self.freshness.pending.load(Ordering::Relaxed) != 0 {
            let stamped = self.freshness.pending.swap(0, Ordering::Relaxed);
            if stamped != 0 {
                if let Some(hist) = self.freshness.histogram.get() {
                    let lag_nanos = self
                        .freshness
                        .nanos_since_base()
                        .saturating_sub(stamped - 1);
                    hist.record(lag_nanos / 1_000);
                }
            }
        }
        // A trainer panic while publishing poisons the lock; the stored
        // Arc is still a complete epoch, so serve it rather than
        // cascading the panic into every reader thread.
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The current epoch *without* consuming the freshness-lag stamp —
    /// for background observers (the quality probe) whose reads must
    /// not masquerade as a client's first sight of the epoch.
    pub fn load_untracked(&self) -> Arc<EmbeddingEpoch> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Swap in a freshly trained epoch (trainer-side).
    pub fn publish(&self, epoch: EmbeddingEpoch) {
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(epoch);
        if self.freshness.histogram.get().is_some() {
            self.freshness
                .pending
                .store(self.freshness.nanos_since_base() + 1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne_graph::NodeId;

    #[test]
    fn readers_keep_their_epoch_across_publishes() {
        let handle = EpochHandle::new(EmbeddingEpoch::initial(2));
        let before = handle.load();
        assert_eq!(before.epoch, 0);
        assert!(before.embedding.is_empty());

        let mut emb = Embedding::new(2);
        emb.set(NodeId(1), &[1.0, 0.0]);
        handle.publish(EmbeddingEpoch {
            epoch: 1,
            embedding: emb,
            report: Some(StepReport::default()),
            index: None,
        });

        // The old Arc still answers from the old state...
        assert!(before.embedding.is_empty());
        // ...while new loads see the new epoch.
        let after = handle.load();
        assert_eq!(after.epoch, 1);
        assert_eq!(after.embedding.len(), 1);
        assert!(after.report.is_some());
    }

    #[test]
    fn freshness_lag_is_recorded_on_first_read_only() {
        let handle = EpochHandle::new(EmbeddingEpoch::initial(2));
        let hist = Arc::new(Histogram::new());
        handle.set_freshness_histogram(Arc::clone(&hist));

        // Loads before any publish record nothing.
        handle.load();
        assert_eq!(hist.count(), 0);

        handle.publish(EmbeddingEpoch::initial(2));
        std::thread::sleep(std::time::Duration::from_millis(2));
        // A background observer (the probe) reads without consuming
        // the pending stamp...
        handle.load_untracked();
        assert_eq!(hist.count(), 0, "untracked reads record nothing");
        // ...so the first *client* read still measures the real lag.
        handle.load();
        assert_eq!(hist.count(), 1, "first read after publish records lag");
        assert!(hist.sum() >= 2_000, "lag covers the 2ms gap (micros)");
        handle.load();
        handle.load();
        assert_eq!(hist.count(), 1, "later reads of the same epoch do not");

        handle.publish(EmbeddingEpoch::initial(2));
        handle.load();
        assert_eq!(hist.count(), 2, "each publish arms one measurement");
    }

    #[test]
    fn clones_share_the_stream() {
        let a = EpochHandle::new(EmbeddingEpoch::initial(4));
        let b = a.clone();
        a.publish(EmbeddingEpoch {
            epoch: 7,
            embedding: Embedding::new(4),
            report: None,
            index: None,
        });
        assert_eq!(b.load().epoch, 7);
    }
}
