//! [`ServingSession`]: an [`EmbedderSession`] split into a concurrent
//! read path and a back-pressured write path.
//!
//! `spawn` moves the session onto a dedicated trainer thread. From then
//! on:
//!
//! - reads ([`ServingSession::epoch`], [`query`](ServingSession::query),
//!   [`nearest`](ServingSession::nearest)) answer from the last
//!   *published* [`EmbeddingEpoch`] and never wait on training;
//! - writes ([`ingest`](ServingSession::ingest),
//!   [`flush`](ServingSession::flush)) go through the bounded
//!   [`IngestQueue`] and block only when the queue is full or when
//!   waiting for a requested commit.
//!
//! The trainer publishes a new epoch after every committed step —
//! whether the session's [`EpochPolicy`](glodyne::EpochPolicy) crossed
//! a boundary on its own or a flush forced one.

use crate::epoch::{EmbeddingEpoch, EpochHandle};
use crate::error::ServeError;
use crate::queue::{bounded_instrumented, FlushOutcome, IngestQueue, TrainerInbox, TrainerMsg};
use crate::telemetry::{ServeTelemetry, TelemetryStats, TrainerStages};
use glodyne::EmbedderSession;
use glodyne_ann::{IvfConfig, IvfIndex, StorageMode};
use glodyne_durable::{DurabilityCounters, DurableSession};
use glodyne_embed::traits::CheckpointEmbedder;
use glodyne_embed::{ConfigError, DynamicEmbedder, Embedding};
use glodyne_graph::state::GraphEvent;
use glodyne_graph::NodeId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Default bound on the ingest queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default `nprobe` for ANN `nearest` requests that don't name one.
pub const DEFAULT_NPROBE: usize = 8;

/// Approximate-search settings for a serving session: when present,
/// the trainer builds an [`IvfIndex`] after every committed step and
/// publishes it inside the epoch, so `nearest` requests in `"ann"`
/// mode are answered from the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnSettings {
    /// IVF build parameters (cells, k-means iterations, seed).
    pub config: IvfConfig,
    /// `nprobe` used when an ANN request doesn't specify one.
    pub default_nprobe: usize,
}

impl Default for AnnSettings {
    fn default() -> Self {
        AnnSettings {
            config: IvfConfig::default(),
            default_nprobe: DEFAULT_NPROBE,
        }
    }
}

impl AnnSettings {
    /// Validate the settings (fallible-config convention).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.config.validate()?;
        if self.default_nprobe < 1 {
            return Err(ConfigError::new("default_nprobe", "must be >= 1"));
        }
        Ok(())
    }
}

/// The published epoch's ANN telemetry, surfaced through `stats` so
/// operators can see what each epoch's index costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnStats {
    /// Effective coarse cells in the published index.
    pub cells: usize,
    /// Server-side default `nprobe`.
    pub default_nprobe: usize,
    /// Wall-clock time the published epoch's index build took.
    pub build: Duration,
    /// Posting-list storage of the published index (`f32` or `sq8`).
    pub storage: StorageMode,
    /// Resident bytes of the published index (summed across shards on
    /// sharded sessions) — the number `quantize` exists to shrink.
    pub index_bytes: usize,
    /// How the published index was produced: `"full"` (k-means from
    /// scratch) or `"incremental"` (warm-started from the previous
    /// epoch's index, dirty rows reassigned). Sharded sessions report
    /// `"incremental"` only when *every* shard's index was incremental.
    pub build_kind: &'static str,
    /// Rows the build actually reassigned (mutated, added, or removed
    /// since the previous index; summed across shards). A full build
    /// reports the churn that triggered it — 0 for a from-scratch
    /// build with no prior index.
    pub dirty_rows: usize,
}

/// Durability counters of a durable serving session, surfaced through
/// the `stats` op's `"durability"` object (`null` when serving
/// in-memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Live WAL segment files (summed across lineages when sharded).
    pub wal_segments: u64,
    /// Bytes across live WAL segments (summed when sharded).
    pub wal_bytes: u64,
    /// Committed epoch of the newest snapshot barrier, if any.
    pub last_snapshot_epoch: Option<u64>,
    /// Milliseconds since the last fsync completed; `None` before the
    /// first explicit sync.
    pub last_fsync_ms: Option<u64>,
    /// Recovery provenance of this boot (e.g. which snapshot was
    /// resumed, how many events replayed); `None` on a fresh lineage.
    pub recovered_from: Option<String>,
}

/// The live gauge behind [`DurabilityStats`]: the trainer thread owns
/// the [`DurableSession`] and pushes its counters here after every
/// message; `stats` reads take a snapshot. A mutex (not atomics)
/// because stats reads are rare and the update writes several fields
/// that must stay mutually consistent.
pub(crate) struct DurabilityShared {
    live: Mutex<DurabilityLive>,
}

struct DurabilityLive {
    counters: DurabilityCounters,
    recovered_from: Option<String>,
}

impl DurabilityShared {
    pub(crate) fn new(counters: DurabilityCounters, recovered_from: Option<String>) -> Self {
        DurabilityShared {
            live: Mutex::new(DurabilityLive {
                counters,
                recovered_from,
            }),
        }
    }

    pub(crate) fn update(&self, counters: DurabilityCounters) {
        self.live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counters = counters;
    }

    pub(crate) fn snapshot(&self) -> DurabilityStats {
        let live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        DurabilityStats {
            wal_segments: live.counters.wal_segments,
            wal_bytes: live.counters.wal_bytes,
            last_snapshot_epoch: live.counters.last_snapshot_epoch,
            last_fsync_ms: live
                .counters
                .last_fsync
                .map(|at| Instant::now().saturating_duration_since(at).as_millis() as u64),
            recovered_from: live.recovered_from.clone(),
        }
    }
}

/// How long the trainer may go without observable progress — while
/// work is pending — before the watchdog declares the server degraded.
pub const DEFAULT_STALL_AFTER: Duration = Duration::from_secs(5);

/// The watchdog's verdict on the trainer, surfaced through the `stats`
/// op's `"health"` object and the `glodyne_health_*` Prometheus gauges.
///
/// Degraded mode is explicit, not inferred: reads keep serving the
/// last published epoch (they never blocked on the trainer to begin
/// with), writes get structured errors, and operators see *why* —
/// a panicked trainer (`trainer_alive == false`) or a stalled one
/// (`stalled_ms` past the threshold with work pending).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthStats {
    /// `true` when the trainer has panicked or stalled with work
    /// pending. Reads still answer; writes are rejected with a
    /// structured `degraded` error at the wire.
    pub degraded: bool,
    /// `false` once the trainer thread has panicked (its WAL was
    /// sealed on the way down; recovery replays the committed prefix).
    pub trainer_alive: bool,
    /// Flush boundaries accepted but not yet committed by the trainer
    /// — how many epochs behind the served embedding is.
    pub stale_epochs: u64,
    /// Milliseconds since the trainer last made progress, reported
    /// only while work is pending (0 on an idle, healthy session).
    pub stalled_ms: u64,
}

/// The watchdog ledger shared between the trainer thread (heartbeats,
/// completions, the panic flag) and readers (lazy evaluation on every
/// `stats`/dispatch — no dedicated watchdog thread to schedule, no
/// polling interval to tune).
pub(crate) struct HealthState {
    base: Instant,
    /// Microseconds since `base` of the trainer's last progress beat.
    heartbeat_us: AtomicU64,
    panicked: AtomicBool,
    flushes_requested: AtomicU64,
    flushes_completed: AtomicU64,
    stall_after_us: AtomicU64,
}

impl HealthState {
    pub(crate) fn new(stall_after: Duration) -> Self {
        let state = HealthState {
            base: Instant::now(),
            heartbeat_us: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            flushes_requested: AtomicU64::new(0),
            flushes_completed: AtomicU64::new(0),
            stall_after_us: AtomicU64::new(stall_after.as_micros() as u64),
        };
        state.beat();
        state
    }

    fn now_us(&self) -> u64 {
        Instant::now()
            .saturating_duration_since(self.base)
            .as_micros() as u64
    }

    /// Trainer-side: record progress (called after every message).
    pub(crate) fn beat(&self) {
        self.heartbeat_us.store(self.now_us(), Ordering::Release);
    }

    /// Trainer-side: the loop unwound — the server is degraded until
    /// restart, no matter how fresh the last heartbeat was.
    pub(crate) fn mark_panicked(&self) {
        self.panicked.store(true, Ordering::Release);
    }

    pub(crate) fn flush_requested(&self) {
        self.flushes_requested.fetch_add(1, Ordering::AcqRel);
    }

    /// Undo a `flush_requested` whose message never reached the
    /// trainer (channel closed) — it will never complete, and must not
    /// count as a stale epoch forever.
    pub(crate) fn flush_unrequested(&self) {
        self.flushes_requested.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn flush_completed(&self) {
        self.flushes_completed.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn set_stall_after(&self, stall_after: Duration) {
        self.stall_after_us
            .store(stall_after.as_micros() as u64, Ordering::Relaxed);
    }

    /// Evaluate the verdict right now. `queue_depth` is the caller's
    /// view of pending ingest: a silent trainer is only *stalled* when
    /// there is work it should be making progress on.
    pub(crate) fn evaluate(&self, queue_depth: usize) -> HealthStats {
        let panicked = self.panicked.load(Ordering::Acquire);
        let stale_epochs = self
            .flushes_requested
            .load(Ordering::Acquire)
            .saturating_sub(self.flushes_completed.load(Ordering::Acquire));
        let age_us = self
            .now_us()
            .saturating_sub(self.heartbeat_us.load(Ordering::Acquire));
        let pending = queue_depth > 0 || stale_epochs > 0;
        let stalled = pending && age_us > self.stall_after_us.load(Ordering::Relaxed);
        HealthStats {
            degraded: panicked || stalled,
            trainer_alive: !panicked,
            stale_epochs,
            stalled_ms: if pending { age_us / 1000 } else { 0 },
        }
    }
}

/// Drift-rebalance throttling counters of a sharded session, surfaced
/// through the `stats` op's `"rebalance"` object (`null` when serving
/// unsharded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceStats {
    /// Flush boundaries that drained at least one queued migration.
    pub rebalance_batches: u64,
    /// Mirror events migrated across shards since spawn.
    pub migrated_nodes: u64,
    /// Migrations queued behind the per-flush budget right now.
    pub pending_migrations: usize,
}

/// A point-in-time view of the serving counters (the `stats` command).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Published epoch id (committed embedding steps). Sharded
    /// sessions report the maximum across shards.
    pub epoch: u64,
    /// Embedded nodes in the published epoch. Sharded sessions report
    /// the live (owned) node count of the router's global view.
    pub nodes: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Events waiting in the ingest queue (approximate; summed across
    /// shards when sharded).
    pub queue_depth: usize,
    /// The ingest queue's bound (per shard when sharded).
    pub queue_capacity: usize,
    /// The deepest the ingest queue has ever been (back-pressure
    /// high-water mark — the instantaneous `queue_depth` misses
    /// incidents that drained before the poll; this doesn't). Sharded
    /// sessions report the maximum across shards.
    pub queue_high_water: usize,
    /// Events accepted since the session was spawned (client events,
    /// not per-shard mirror copies).
    pub events_accepted: u64,
    /// ANN index parameters of the published epoch; `None` when ANN is
    /// disabled.
    pub ann: Option<AnnStats>,
    /// Per-shard break-down; `None` on unsharded sessions (the wire
    /// `stats` renders it as `"shards":null`, which pre-sharding
    /// clients never look at).
    pub shards: Option<Vec<crate::shard::ShardEpochStats>>,
    /// Durability counters; `None` when serving in-memory (rendered
    /// `"durability":null`, invisible to pre-durability clients).
    pub durability: Option<DurabilityStats>,
    /// Full telemetry snapshot; `None` when telemetry is disabled
    /// (rendered `"telemetry":null` on the wire, invisible to
    /// pre-telemetry clients).
    pub telemetry: Option<TelemetryStats>,
    /// Trainer watchdog verdict; always present on live sessions
    /// (sharded sessions aggregate: any degraded shard degrades the
    /// whole server, `stale_epochs` is the worst shard's).
    pub health: Option<HealthStats>,
    /// Rebalance throttling counters; `None` on unsharded sessions
    /// (rendered `"rebalance":null` on the wire).
    pub rebalance: Option<RebalanceStats>,
}

/// The concurrent wrapper around a moved-away `EmbedderSession`.
///
/// All methods take `&self`; the struct is shared across connection
/// threads behind an `Arc`.
pub struct ServingSession {
    queue: IngestQueue,
    epochs: EpochHandle,
    trainer: Mutex<Option<JoinHandle<()>>>,
    ann: Option<AnnSettings>,
    durability: Option<Arc<DurabilityShared>>,
    telemetry: Option<Arc<ServeTelemetry>>,
    health: Arc<HealthState>,
}

impl ServingSession {
    /// Move `session` onto a trainer thread and return the concurrent
    /// handle. The session's current state (anything already ingested
    /// and flushed before the move) becomes the initially served epoch.
    pub fn spawn<E>(session: EmbedderSession<E>, queue_capacity: usize) -> ServingSession
    where
        E: DynamicEmbedder + Send + 'static,
    {
        match ServingSession::spawn_with_ann(session, queue_capacity, None) {
            Ok(serving) => serving,
            // With no ANN settings there is nothing to validate.
            Err(_) => unreachable!("spawn without ANN settings cannot fail validation"),
        }
    }

    /// Like [`ServingSession::spawn`], additionally maintaining an IVF
    /// index per published epoch when `ann` is present. The index for
    /// an epoch is built *on the trainer thread* right after the step
    /// commits — readers keep answering from the previous epoch (and
    /// its index) meanwhile, the same ≤ 1-epoch-lag model as the
    /// embedding itself. Degenerate settings are rejected up front
    /// (the fallible-config convention), never silently repaired.
    pub fn spawn_with_ann<E>(
        session: EmbedderSession<E>,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
    ) -> Result<ServingSession, ConfigError>
    where
        E: DynamicEmbedder + Send + 'static,
    {
        ServingSession::spawn_instrumented(session, queue_capacity, ann, None)
    }

    /// Like [`ServingSession::spawn_with_ann`], additionally wiring
    /// every pipeline stage into `telemetry` when present: queue wait
    /// and depth, trainer step phases, index build time, and the
    /// epoch publish-to-first-read freshness lag. All recording is
    /// wait-free; a `None` telemetry spawns an identical un-instrumented
    /// session.
    pub fn spawn_instrumented<E>(
        mut session: EmbedderSession<E>,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
        telemetry: Option<Arc<ServeTelemetry>>,
    ) -> Result<ServingSession, ConfigError>
    where
        E: DynamicEmbedder + Send + 'static,
    {
        if let Some(settings) = &ann {
            settings.validate()?;
        }
        // The initial epoch's index is a full build (there is nothing
        // to warm-start from); drain any pre-spawn churn so the first
        // trainer build's dirty set starts from this index, not from
        // state it already covers.
        let _ = session.take_dirty();
        let epochs = EpochHandle::new(build_epoch(
            session.steps() as u64,
            session.embedding().clone(),
            session.reports().last().copied(),
            ann.as_ref(),
            None,
            &[],
        ));
        let (queue, inbox) = bounded_instrumented(
            queue_capacity,
            telemetry.as_ref().map(|t| Arc::clone(&t.queue_wait)),
        );
        if let Some(t) = &telemetry {
            epochs.set_freshness_histogram(Arc::clone(&t.freshness));
        }
        let stages = telemetry.as_ref().map(|t| t.trainer_stages());
        let publisher = epochs.clone();
        let health = Arc::new(HealthState::new(DEFAULT_STALL_AFTER));
        let pulse = Arc::clone(&health);
        let trainer = thread::Builder::new()
            .name("glodyne-trainer".into())
            .spawn(move || trainer_loop(session, inbox, publisher, ann, stages, pulse))
            .expect("spawn trainer thread");
        Ok(ServingSession {
            queue,
            epochs,
            trainer: Mutex::new(Some(trainer)),
            ann,
            durability: None,
            telemetry,
            health,
        })
    }

    /// Like [`ServingSession::spawn_with_ann`], but around a
    /// [`DurableSession`] (from [`DurableSession::create`] or
    /// [`DurableSession::recover`]): every ingested event is WAL-logged
    /// before application, committed epochs are periodically frozen
    /// into snapshots, and shutdown finalizes the lineage so a restart
    /// replays nothing. `recovered_from` is the recovery report's
    /// provenance string when this session was recovered, surfaced
    /// through `stats`.
    pub fn spawn_durable<E>(
        durable: DurableSession<E>,
        recovered_from: Option<String>,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
    ) -> Result<ServingSession, ConfigError>
    where
        E: CheckpointEmbedder + Send + 'static,
    {
        ServingSession::spawn_durable_instrumented(
            durable,
            recovered_from,
            queue_capacity,
            ann,
            None,
        )
    }

    /// [`ServingSession::spawn_durable`] with telemetry: everything
    /// [`ServingSession::spawn_instrumented`] wires, plus WAL
    /// append/fsync and snapshot write timings from the lineage.
    pub fn spawn_durable_instrumented<E>(
        mut durable: DurableSession<E>,
        recovered_from: Option<String>,
        queue_capacity: usize,
        ann: Option<AnnSettings>,
        telemetry: Option<Arc<ServeTelemetry>>,
    ) -> Result<ServingSession, ConfigError>
    where
        E: CheckpointEmbedder + Send + 'static,
    {
        if let Some(settings) = &ann {
            settings.validate()?;
        }
        if let Some(t) = &telemetry {
            durable.set_timing(t.durable_timing());
        }
        // Durable recovery has no previous in-memory index, so the
        // first build after a restart is always a full one.
        let _ = durable.session_mut().take_dirty();
        let session = durable.session();
        let epochs = EpochHandle::new(build_epoch(
            session.steps() as u64,
            session.embedding().clone(),
            session.reports().last().copied(),
            ann.as_ref(),
            None,
            &[],
        ));
        let shared = Arc::new(DurabilityShared::new(durable.counters(), recovered_from));
        let (queue, inbox) = bounded_instrumented(
            queue_capacity,
            telemetry.as_ref().map(|t| Arc::clone(&t.queue_wait)),
        );
        if let Some(t) = &telemetry {
            epochs.set_freshness_histogram(Arc::clone(&t.freshness));
        }
        let stages = telemetry.as_ref().map(|t| t.trainer_stages());
        let publisher = epochs.clone();
        let gauge = Arc::clone(&shared);
        let health = Arc::new(HealthState::new(DEFAULT_STALL_AFTER));
        let pulse = Arc::clone(&health);
        let trainer = thread::Builder::new()
            .name("glodyne-trainer".into())
            .spawn(move || {
                trainer_loop_durable(durable, inbox, publisher, ann, gauge, stages, pulse)
            })
            .expect("spawn trainer thread");
        Ok(ServingSession {
            queue,
            epochs,
            trainer: Mutex::new(Some(trainer)),
            ann,
            durability: Some(shared),
            telemetry,
            health,
        })
    }

    /// The session's ANN settings, when enabled.
    pub fn ann(&self) -> Option<AnnSettings> {
        self.ann
    }

    /// The session's telemetry hub, when instrumented.
    pub fn telemetry(&self) -> Option<&Arc<ServeTelemetry>> {
        self.telemetry.as_ref()
    }

    /// The currently served epoch (frozen; see [`EpochHandle::load`]).
    pub fn epoch(&self) -> Arc<EmbeddingEpoch> {
        self.epochs.load()
    }

    /// The served epoch for background observers: same `Arc`, but the
    /// freshness-lag stamp is left for the first *client* read.
    pub fn probe_epoch(&self) -> Arc<EmbeddingEpoch> {
        self.epochs.load_untracked()
    }

    /// The embedding vector of `node` in the served epoch, with the
    /// epoch id it came from.
    pub fn query(&self, node: NodeId) -> (u64, Option<Vec<f32>>) {
        let epoch = self.epoch();
        (epoch.epoch, epoch.embedding.get(node).map(<[f32]>::to_vec))
    }

    /// The `k` nearest neighbours of `node` in the served epoch, with
    /// the epoch id — the same contract as
    /// [`EmbedderSession::nearest`].
    pub fn nearest(&self, node: NodeId, k: usize) -> (u64, Vec<(NodeId, f32)>) {
        let epoch = self.epoch();
        (epoch.epoch, epoch.embedding.top_k(node, k))
    }

    /// The `k` approximately-nearest neighbours of `node` from the
    /// served epoch's IVF index, probing `nprobe` cells (the session's
    /// default when `None`). Returns `None` when ANN is disabled;
    /// empty results for an unknown node. One epoch load per call, so
    /// the reported epoch id, the embedding, and the index always
    /// agree.
    pub fn nearest_ann(
        &self,
        node: NodeId,
        k: usize,
        nprobe: Option<usize>,
    ) -> Option<(u64, Vec<(NodeId, f32)>)> {
        let settings = self.ann?;
        let epoch = self.epoch();
        let (hits, _) = epoch
            .search_ann(node, k, nprobe.unwrap_or(settings.default_nprobe))
            .unwrap_or_default();
        Some((epoch.epoch, hits))
    }

    /// [`ServingSession::nearest`] for a whole batch of nodes: the
    /// epoch `Arc` is acquired **once**, every stored row is streamed
    /// through the cache once for all queries, and the single epoch id
    /// applies to every answer. Results are positionally parallel to
    /// `nodes` (empty for unknown nodes) and bit-exact with per-node
    /// `nearest` calls against the same epoch.
    pub fn nearest_batch(&self, nodes: &[NodeId], k: usize) -> (u64, Vec<Vec<(NodeId, f32)>>) {
        let epoch = self.epoch();
        (epoch.epoch, epoch.embedding.top_k_batch(nodes, k))
    }

    /// [`ServingSession::nearest_ann`] for a whole batch: one epoch
    /// acquisition, one index, shared scan scratch. `None` when ANN is
    /// disabled; per-node results otherwise (empty for unknown nodes).
    pub fn nearest_batch_ann(
        &self,
        nodes: &[NodeId],
        k: usize,
        nprobe: Option<usize>,
    ) -> Option<(u64, Vec<crate::epoch::Neighbours>)> {
        let settings = self.ann?;
        let epoch = self.epoch();
        let (results, _) = epoch
            .search_ann_batch(nodes, k, nprobe.unwrap_or(settings.default_nprobe))
            .unwrap_or_else(|| (nodes.iter().map(|_| Vec::new()).collect(), 0));
        Some((epoch.epoch, results))
    }

    /// Enqueue events in order, blocking when the queue is full.
    /// Returns how many were accepted (all, unless the trainer exits
    /// mid-batch).
    pub fn ingest(&self, events: &[GraphEvent]) -> Result<usize, ServeError> {
        for (i, &event) in events.iter().enumerate() {
            if let Err(e) = self.queue.send_event(event) {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
        }
        Ok(events.len())
    }

    /// Enqueue events without ever blocking: the first event that
    /// finds the queue full sheds the remainder. A full queue on the
    /// *first* event is [`ServeError::Overloaded`]; mid-batch it is a
    /// partial accept (`Ok(i)` with `i < events.len()`), the same
    /// partial-success convention blocking ingest uses when the
    /// trainer exits mid-batch.
    pub fn ingest_fast_fail(&self, events: &[GraphEvent]) -> Result<usize, ServeError> {
        for (i, &event) in events.iter().enumerate() {
            if let Err(e) = self.queue.try_send_event(event) {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
        }
        Ok(events.len())
    }

    /// Enqueue events, blocking at most until `deadline`: a queue
    /// still full at the deadline yields [`ServeError::DeadlineExceeded`]
    /// (first event) or a partial accept (mid-batch).
    pub fn ingest_deadline(
        &self,
        events: &[GraphEvent],
        deadline: Instant,
    ) -> Result<usize, ServeError> {
        for (i, &event) in events.iter().enumerate() {
            if let Err(e) = self.queue.send_event_deadline(event, deadline) {
                return if i == 0 { Err(e) } else { Ok(i) };
            }
        }
        Ok(events.len())
    }

    /// Commit everything enqueued so far and wait for the step to
    /// finish. (The *next* read observes the new epoch; the call
    /// returning is the visibility barrier.)
    pub fn flush(&self) -> Result<FlushOutcome, ServeError> {
        self.health.flush_requested();
        match self.queue.request_flush() {
            // The request never reached the trainer: it will never
            // complete, so it must not count as a stale epoch.
            Err(e) => {
                self.health.flush_unrequested();
                Err(e)
            }
            ok => ok,
        }
    }

    /// [`ServingSession::flush`], waiting for the commit ack at most
    /// until `deadline`. On [`ServeError::DeadlineExceeded`] the flush
    /// *stays queued* — the trainer will still commit it (and the
    /// watchdog counts it as a stale epoch until it does); only the
    /// wait is abandoned.
    pub fn flush_deadline(&self, deadline: Instant) -> Result<FlushOutcome, ServeError> {
        self.health.flush_requested();
        match self.queue.request_flush_deadline(deadline) {
            Err(ServeError::Closed) => {
                self.health.flush_unrequested();
                Err(ServeError::Closed)
            }
            other => other,
        }
    }

    /// Evaluate the trainer watchdog right now (also syncs the
    /// `glodyne_health_*` Prometheus gauges when instrumented).
    pub fn health(&self) -> HealthStats {
        let stats = self.health.evaluate(self.queue.depth());
        if let Some(t) = &self.telemetry {
            t.sync_health_gauges(stats.degraded, stats.stale_epochs);
        }
        stats
    }

    /// Tune how long the trainer may go silent — with work pending —
    /// before [`ServingSession::health`] reports the session degraded.
    pub fn set_stall_after(&self, stall_after: Duration) {
        self.health.set_stall_after(stall_after);
    }

    /// Serving counters plus the served epoch's identity.
    pub fn stats(&self) -> ServeStats {
        let epoch = self.epoch();
        ServeStats {
            epoch: epoch.epoch,
            nodes: epoch.embedding.len(),
            dim: epoch.embedding.dim(),
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
            queue_high_water: self.queue.depth_high_water(),
            events_accepted: self.queue.accepted(),
            ann: self.ann.as_ref().and_then(|settings| {
                epoch.index.as_ref().map(|index| AnnStats {
                    cells: index.cells(),
                    default_nprobe: settings.default_nprobe,
                    build: index.build_time(),
                    storage: index.storage_mode(),
                    index_bytes: index.index_bytes(),
                    build_kind: index.build_kind().as_str(),
                    dirty_rows: index.dirty_rows(),
                })
            }),
            shards: None,
            durability: self.durability.as_ref().map(|d| d.snapshot()),
            telemetry: self
                .telemetry
                .as_ref()
                .map(|t| t.stats(self.queue.depth(), self.queue.depth_high_water())),
            health: Some(self.health()),
            rebalance: None,
        }
    }

    /// Stop the trainer and wait for it to exit. Idempotent; reads keep
    /// working off the last published epoch afterwards, writes return
    /// [`ServeError::Closed`].
    pub fn shutdown(&self) {
        self.queue.send_shutdown();
        let handle = self
            .trainer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(handle) = handle {
            // A trainer that panicked already published its last good
            // epoch; surfacing the panic here would take the server's
            // read path down with it.
            let _ = handle.join();
        }
    }
}

impl Drop for ServingSession {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The trainer thread: apply events, publish an epoch (embedding plus
/// its freshly built index, when ANN is on) after every committed
/// step, acknowledge flushes in queue order. Shared verbatim by the
/// sharded session (`crate::shard`), which runs one of these loops per
/// shard.
pub(crate) fn trainer_loop<E: DynamicEmbedder>(
    mut session: EmbedderSession<E>,
    inbox: TrainerInbox,
    epochs: EpochHandle,
    ann: Option<AnnSettings>,
    stages: Option<TrainerStages>,
    health: Arc<HealthState>,
) {
    // AssertUnwindSafe: on panic the session is dropped, never reused —
    // readers keep the last *published* epoch, which a half-applied
    // step can't have reached.
    let run = catch_unwind(AssertUnwindSafe(|| {
        run_trainer_loop(
            &mut session,
            &inbox,
            &epochs,
            ann.as_ref(),
            stages.as_ref(),
            &health,
        );
    }));
    if run.is_err() {
        health.mark_panicked();
        eprintln!(
            "glodyne-serve: trainer thread panicked; reads continue from the last published epoch"
        );
    }
}

fn run_trainer_loop<E: DynamicEmbedder>(
    session: &mut EmbedderSession<E>,
    inbox: &TrainerInbox,
    epochs: &EpochHandle,
    ann: Option<&AnnSettings>,
    stages: Option<&TrainerStages>,
    health: &HealthState,
) {
    while let Some(msg) = inbox.recv() {
        glodyne_chaos::slow(glodyne_chaos::sites::TRAINER_STEP);
        match msg {
            TrainerMsg::Event { event, .. } => {
                // The policy may commit on its own (timestamp / every-n
                // boundaries); publish whenever it does.
                if session.apply(event) {
                    publish(session, epochs, ann, stages);
                }
            }
            TrainerMsg::Flush(ack) => {
                let stepped = session.flush().is_some();
                if stepped {
                    publish(session, epochs, ann, stages);
                }
                health.flush_completed();
                let _ = ack.send(FlushOutcome {
                    stepped,
                    epoch: session.steps() as u64,
                });
            }
            // Barrier checkpoints only mean something durable; a
            // non-durable trainer just acks so mixed fleets drain.
            TrainerMsg::Checkpoint { ack, .. } => {
                let _ = ack.send(());
            }
            TrainerMsg::Shutdown => break,
        }
        health.beat();
    }
}

/// The durable trainer thread: every event is WAL-logged before it is
/// applied, flushes log a boundary marker and honour the fsync policy,
/// committed epochs periodically freeze into snapshots, and loop exit —
/// explicit shutdown *or* every producer handle dropping — finalizes
/// the lineage so a restart replays nothing. WAL/snapshot I/O errors
/// are logged and serving continues: losing durability must not take
/// the read path down.
pub(crate) fn trainer_loop_durable<E: CheckpointEmbedder>(
    mut durable: DurableSession<E>,
    inbox: TrainerInbox,
    epochs: EpochHandle,
    ann: Option<AnnSettings>,
    shared: Arc<DurabilityShared>,
    stages: Option<TrainerStages>,
    health: Arc<HealthState>,
) {
    // AssertUnwindSafe: on panic the in-memory session is untrusted
    // and never touched again — the outer arm only seals the WAL
    // (every *accepted* event is already logged) so recovery replays a
    // committed prefix bit-exactly through the normal apply path.
    let run = catch_unwind(AssertUnwindSafe(|| {
        run_trainer_loop_durable(
            &mut durable,
            &inbox,
            &epochs,
            ann.as_ref(),
            &shared,
            stages.as_ref(),
            &health,
        );
    }));
    match run {
        Ok(()) => {
            // Clean stop (or all producers gone): flush, fsync, final
            // snapshot.
            if let Err(e) = durable.finalize() {
                eprintln!("glodyne-serve: finalize failed: {e}");
            }
            publish(
                durable.session_mut(),
                &epochs,
                ann.as_ref(),
                stages.as_ref(),
            );
        }
        Err(_) => {
            health.mark_panicked();
            if let Err(e) = durable.seal() {
                eprintln!("glodyne-serve: wal seal after trainer panic failed: {e}");
            }
            eprintln!(
                "glodyne-serve: trainer thread panicked; WAL sealed, reads continue degraded \
                 from the last published epoch"
            );
        }
    }
    shared.update(durable.counters());
}

fn run_trainer_loop_durable<E: CheckpointEmbedder>(
    durable: &mut DurableSession<E>,
    inbox: &TrainerInbox,
    epochs: &EpochHandle,
    ann: Option<&AnnSettings>,
    shared: &DurabilityShared,
    stages: Option<&TrainerStages>,
    health: &HealthState,
) {
    while let Some(msg) = inbox.recv() {
        glodyne_chaos::slow(glodyne_chaos::sites::TRAINER_STEP);
        match msg {
            TrainerMsg::Event { seq, event, .. } => {
                // Unsharded ingest sends seq 0: the lineage assigns its
                // own. Sharded ingest stamps the router's client seq.
                let seq = if seq == 0 {
                    durable.last_seq() + 1
                } else {
                    seq
                };
                match durable.apply(seq, event) {
                    Ok(stepped) => {
                        if stepped {
                            publish(durable.session_mut(), epochs, ann, stages);
                            if let Err(e) = durable.maybe_snapshot() {
                                eprintln!("glodyne-serve: snapshot failed: {e}");
                            }
                        }
                    }
                    Err(e) => eprintln!("glodyne-serve: wal append failed: {e}"),
                }
            }
            TrainerMsg::Flush(ack) => {
                let stepped = match durable.flush() {
                    Ok(report) => report.is_some(),
                    Err(e) => {
                        eprintln!("glodyne-serve: wal flush failed: {e}");
                        false
                    }
                };
                if stepped {
                    publish(durable.session_mut(), epochs, ann, stages);
                    if let Err(e) = durable.maybe_snapshot() {
                        eprintln!("glodyne-serve: snapshot failed: {e}");
                    }
                }
                health.flush_completed();
                let _ = ack.send(FlushOutcome {
                    stepped,
                    epoch: durable.session().steps() as u64,
                });
            }
            TrainerMsg::Checkpoint { seq, ack } => {
                if let Err(e) = durable.snapshot_at(seq) {
                    eprintln!("glodyne-serve: barrier snapshot failed: {e}");
                }
                let _ = ack.send(());
            }
            TrainerMsg::Shutdown => break,
        }
        shared.update(durable.counters());
        health.beat();
    }
}

fn publish<E: DynamicEmbedder>(
    session: &mut EmbedderSession<E>,
    epochs: &EpochHandle,
    ann: Option<&AnnSettings>,
    stages: Option<&TrainerStages>,
) {
    // The previous epoch's index (loaded without consuming the
    // freshness stamp — this is a trainer-side read, not a client's
    // first sight of the epoch) warm-starts the incremental build;
    // the session's dirty set says which rows it must reassign.
    let dirty = if ann.is_some() {
        session.take_dirty()
    } else {
        Vec::new()
    };
    let prev = epochs.load_untracked();
    let epoch = build_epoch(
        session.steps() as u64,
        session.embedding().clone(),
        session.reports().last().copied(),
        ann,
        prev.index.as_ref(),
        &dirty,
    );
    // Stage attribution happens on the trainer thread, before the swap:
    // by the time readers can see the epoch its cost is already booked.
    if let Some(stages) = stages {
        stages.record(epoch.report.as_ref(), epoch.index.as_ref());
    }
    epochs.publish(epoch);
}

/// Assemble one publishable epoch; the IVF build (when ANN is on)
/// happens here, on the trainer thread, so it never blocks a reader.
/// With a previous index the build is incremental — frozen centroids,
/// only `dirty` rows reassigned — falling back to a full k-means
/// rebuild when the index's drift triggers fire. The first epoch after
/// spawn (and the first after a durable recovery, which has no
/// previous in-memory index) always takes the full path.
pub(crate) fn build_epoch(
    epoch: u64,
    embedding: Embedding,
    report: Option<glodyne::StepReport>,
    ann: Option<&AnnSettings>,
    prev_index: Option<&IvfIndex>,
    dirty: &[glodyne_graph::NodeId],
) -> EmbeddingEpoch {
    let index = ann.map(|settings| match prev_index {
        Some(prev) => IvfIndex::update_from(prev, &embedding, dirty, &settings.config),
        None => IvfIndex::build(&embedding, &settings.config),
    });
    EmbeddingEpoch {
        epoch,
        embedding,
        report,
        index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glodyne::{EpochPolicy, GloDyNE, GloDyNEConfig};
    use glodyne_embed::walks::WalkConfig;
    use glodyne_embed::SgnsConfig;
    use glodyne_graph::id::TimedEdge;

    fn tiny_model() -> GloDyNE {
        let cfg = GloDyNEConfig {
            alpha: 0.5,
            walk: WalkConfig {
                walks_per_node: 2,
                walk_length: 8,
                seed: 3,
            },
            sgns: SgnsConfig {
                dim: 8,
                window: 2,
                negatives: 2,
                epochs: 1,
                parallel: false,
                ..Default::default()
            },
            ..Default::default()
        };
        GloDyNE::new(cfg).unwrap()
    }

    fn tiny_session(policy: EpochPolicy) -> EmbedderSession<GloDyNE> {
        EmbedderSession::new(tiny_model(), policy).unwrap()
    }

    fn chain_events(n: u32, t: u64) -> Vec<GraphEvent> {
        (0..n)
            .map(|i| GraphEvent::add_edge(NodeId(i), NodeId(i + 1), t))
            .collect()
    }

    #[test]
    fn ingest_flush_query_round_trip() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::Manual), 64);
        assert_eq!(serving.epoch().epoch, 0);
        assert_eq!(serving.query(NodeId(0)).1, None);

        serving.ingest(&chain_events(6, 0)).unwrap();
        let outcome = serving.flush().unwrap();
        assert!(outcome.stepped);
        assert_eq!(outcome.epoch, 1);

        let (epoch, vector) = serving.query(NodeId(0));
        assert_eq!(epoch, 1);
        assert_eq!(vector.unwrap().len(), 8);
        let (_, near) = serving.nearest(NodeId(0), 3);
        assert!(!near.is_empty());
        assert!(near.iter().all(|&(id, _)| id != NodeId(0)));

        // Flushing with nothing pending is a no-step.
        let outcome = serving.flush().unwrap();
        assert!(!outcome.stepped);
        assert_eq!(outcome.epoch, 1);
        serving.shutdown();
    }

    #[test]
    fn nearest_matches_the_shared_reference_contract() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::Manual), 64);
        serving.ingest(&chain_events(8, 0)).unwrap();
        serving.flush().unwrap();
        let epoch = serving.epoch();
        let (_, fast) = serving.nearest(NodeId(3), 5);
        let spec = glodyne_embed::reference_top_k(&epoch.embedding, NodeId(3), 5);
        assert_eq!(fast.len(), spec.len());
        for (a, b) in fast.iter().zip(&spec) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn policy_boundaries_publish_without_explicit_flush() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::EveryNEvents(4)), 64);
        serving.ingest(&chain_events(4, 0)).unwrap();
        // The 4th event crosses the boundary inside the trainer; wait
        // for the publish via the flush barrier (no-op step).
        let outcome = serving.flush().unwrap();
        assert_eq!(outcome.epoch, 1);
        assert!(!outcome.stepped, "policy already committed the batch");
        assert_eq!(serving.epoch().epoch, 1);
    }

    #[test]
    fn shutdown_keeps_reads_and_fails_writes() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::Manual), 64);
        serving.ingest(&chain_events(5, 0)).unwrap();
        serving.flush().unwrap();
        serving.shutdown();
        serving.shutdown(); // idempotent

        assert_eq!(serving.epoch().epoch, 1, "reads survive shutdown");
        assert!(serving.query(NodeId(0)).1.is_some());
        assert!(matches!(
            serving.ingest(&chain_events(1, 9)),
            Err(ServeError::Closed)
        ));
        assert!(matches!(serving.flush(), Err(ServeError::Closed)));
    }

    #[test]
    fn spawn_serves_pretrained_state_as_initial_epoch() {
        let mut session = tiny_session(EpochPolicy::Manual);
        session.ingest(&[
            TimedEdge::new(NodeId(0), NodeId(1), 0),
            TimedEdge::new(NodeId(1), NodeId(2), 0),
            TimedEdge::new(NodeId(2), NodeId(3), 0),
        ]);
        session.flush().unwrap();
        let serving = ServingSession::spawn(session, 16);
        let epoch = serving.epoch();
        assert_eq!(epoch.epoch, 1);
        assert!(epoch.report.is_some());
        assert!(epoch.embedding.get(NodeId(1)).is_some());
    }

    #[test]
    fn stats_reflect_the_queue_and_epoch() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::Manual), 16);
        serving.ingest(&chain_events(5, 0)).unwrap();
        serving.flush().unwrap();
        let stats = serving.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.dim, 8);
        assert!(stats.nodes >= 6);
        assert_eq!(stats.queue_capacity, 16);
        assert_eq!(stats.events_accepted, 5);
        assert_eq!(stats.queue_depth, 0, "flush drained the queue");
        assert!(
            stats.queue_high_water >= 1,
            "the 5-event burst left a high-water mark"
        );
        assert_eq!(stats.ann, None, "ann disabled by default");
        assert_eq!(stats.durability, None, "in-memory session has no lineage");
        assert_eq!(stats.telemetry, None, "telemetry off by default");
    }

    #[test]
    fn instrumented_session_records_stages_queue_and_freshness() {
        let hub = Arc::new(ServeTelemetry::new(u64::MAX));
        let serving = ServingSession::spawn_instrumented(
            tiny_session(EpochPolicy::Manual),
            16,
            Some(AnnSettings {
                config: IvfConfig {
                    cells: 2,
                    ..Default::default()
                },
                default_nprobe: 2,
            }),
            Some(Arc::clone(&hub)),
        )
        .unwrap();
        serving.ingest(&chain_events(6, 0)).unwrap();
        serving.flush().unwrap();
        // First read after the publish books the freshness lag.
        let _ = serving.query(NodeId(0));

        let stats = serving.stats();
        let t = stats.telemetry.expect("instrumented session");
        assert!(t.queue_high_water >= 1);
        assert!(
            t.queue_wait.count >= 6,
            "every queued event recorded its wait"
        );
        for stage in ["select", "walks", "train", "index_build"] {
            let (_, h) = t.stages.iter().find(|(s, _)| *s == stage).unwrap();
            assert!(h.count >= 1, "stage {stage} recorded on the trainer step");
        }
        assert!(t.freshness.count >= 1, "first read measured the lag");
        assert_eq!(t.durability, None, "in-memory session");
        // And the same numbers are scrapeable as Prometheus text.
        let text = hub.render_prometheus();
        assert!(text.contains("glodyne_stage_us_count{stage=\"train\"} "));
        serving.shutdown();
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "glodyne-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_restart_resumes_epoch_and_stats_surface_durability() {
        use glodyne_durable::{DurableConfig, FsyncPolicy};
        let dir = durable_dir("restart");
        let cfg = DurableConfig {
            fsync: FsyncPolicy::Off,
            ..DurableConfig::default()
        };
        let durable = DurableSession::create(&dir, tiny_session(EpochPolicy::Manual), cfg).unwrap();
        let serving = ServingSession::spawn_durable(durable, None, 64, None).unwrap();
        serving.ingest(&chain_events(8, 0)).unwrap();
        assert!(serving.flush().unwrap().stepped);
        let stats = serving.stats();
        let dur = stats.durability.expect("durable session surfaces stats");
        assert!(dur.wal_segments >= 1);
        assert_eq!(dur.recovered_from, None, "fresh lineage, no recovery");
        let (epoch_before, row_before) = serving.query(NodeId(0));
        serving.shutdown(); // finalize(): a restart must replay nothing

        let (recovered, report) =
            DurableSession::recover(&dir, cfg, EpochPolicy::Manual, false, tiny_model).unwrap();
        assert_eq!(report.replayed_events, 0, "final snapshot covers the log");
        let serving2 =
            ServingSession::spawn_durable(recovered, Some(report.recovered_from.clone()), 64, None)
                .unwrap();
        let (epoch_after, row_after) = serving2.query(NodeId(0));
        assert_eq!(epoch_after, epoch_before);
        let (a, b) = (row_before.unwrap(), row_after.unwrap());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let dur = serving2.stats().durability.unwrap();
        assert_eq!(
            dur.recovered_from.as_deref(),
            Some(report.recovered_from.as_str())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_policy_epochs_snapshot_and_drop_without_shutdown_finalizes() {
        use glodyne_durable::{DurableConfig, FsyncPolicy};
        let dir = durable_dir("policy");
        let cfg = DurableConfig {
            fsync: FsyncPolicy::EveryNEvents(1),
            snapshot_every: 1,
            ..DurableConfig::default()
        };
        let durable =
            DurableSession::create(&dir, tiny_session(EpochPolicy::EveryNEvents(4)), cfg).unwrap();
        let serving = ServingSession::spawn_durable(durable, None, 16, None).unwrap();
        serving.ingest(&chain_events(8, 0)).unwrap();
        serving.flush().unwrap(); // barrier: both policy epochs committed
        assert_eq!(serving.epoch().epoch, 2);
        let dur = serving.stats().durability.unwrap();
        assert_eq!(
            dur.last_snapshot_epoch,
            Some(2),
            "snapshot_every=1 froze it"
        );
        assert!(dur.last_fsync_ms.is_some(), "per-event fsync recorded");
        drop(serving); // Drop -> shutdown -> trainer finalize
        let (recovered, report) =
            DurableSession::recover(&dir, cfg, EpochPolicy::EveryNEvents(4), false, tiny_model)
                .unwrap();
        assert_eq!(report.replayed_events, 0);
        assert_eq!(recovered.session().steps(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn ann_settings(cells: usize, nprobe: usize) -> AnnSettings {
        AnnSettings {
            config: IvfConfig {
                cells,
                ..Default::default()
            },
            default_nprobe: nprobe,
        }
    }

    #[test]
    fn ann_epochs_publish_an_index_and_full_probe_is_exact() {
        let serving = ServingSession::spawn_with_ann(
            tiny_session(EpochPolicy::Manual),
            64,
            Some(ann_settings(4, 2)),
        )
        .unwrap();
        assert_eq!(serving.ann(), Some(ann_settings(4, 2)));
        // The initial (empty) epoch already carries an (empty) index.
        let epoch = serving.epoch();
        assert!(epoch.index.as_ref().is_some_and(IvfIndex::is_empty));

        serving.ingest(&chain_events(9, 0)).unwrap();
        serving.flush().unwrap();
        let epoch = serving.epoch();
        let index = epoch.index.as_ref().expect("index published with epoch");
        assert_eq!(index.len(), epoch.embedding.len());
        assert_eq!(index.cells(), 4);

        // Full probe == the exact wire path, bit for bit.
        let (e1, ann) = serving
            .nearest_ann(NodeId(3), 5, Some(index.cells()))
            .unwrap();
        let (e2, exact) = serving.nearest(NodeId(3), 5);
        assert_eq!(e1, e2);
        assert_eq!(ann.len(), exact.len());
        for (a, b) in ann.iter().zip(&exact) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // Default nprobe (None) and unknown nodes are well-formed.
        let (_, some) = serving.nearest_ann(NodeId(3), 5, None).unwrap();
        assert!(some.len() <= 5);
        let (_, none) = serving.nearest_ann(NodeId(999), 5, None).unwrap();
        assert!(none.is_empty());

        let stats = serving.stats();
        let ann_stats = stats.ann.expect("ann stats surface the index");
        assert_eq!(ann_stats.cells, 4);
        assert_eq!(ann_stats.default_nprobe, 2);
    }

    #[test]
    fn nearest_batch_matches_per_query_on_a_quiesced_session() {
        for quantize in [false, true] {
            let mut settings = ann_settings(3, 2);
            settings.config.quantize = quantize;
            let serving = ServingSession::spawn_with_ann(
                tiny_session(EpochPolicy::Manual),
                64,
                Some(settings),
            )
            .unwrap();
            serving.ingest(&chain_events(9, 0)).unwrap();
            serving.flush().unwrap();
            // Trainer quiesced: single and batch reads see one epoch.
            let nodes = [NodeId(0), NodeId(4), NodeId(777), NodeId(2)];
            let (be, batch) = serving.nearest_batch(&nodes, 5);
            for (&n, got) in nodes.iter().zip(&batch) {
                let (se, single) = serving.nearest(n, 5);
                assert_eq!(be, se);
                assert_eq!(got.len(), single.len());
                for (a, b) in got.iter().zip(&single) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            for nprobe in [None, Some(1), Some(usize::MAX)] {
                let (be, batch) = serving.nearest_batch_ann(&nodes, 5, nprobe).unwrap();
                for (&n, got) in nodes.iter().zip(&batch) {
                    let (se, single) = serving.nearest_ann(n, 5, nprobe).unwrap();
                    assert_eq!(be, se);
                    assert_eq!(got.len(), single.len(), "quantize={quantize}");
                    for (a, b) in got.iter().zip(&single) {
                        assert_eq!(a.0, b.0);
                        assert_eq!(a.1.to_bits(), b.1.to_bits());
                    }
                }
            }
            // Stats surface the storage mode and the arena shrink.
            let ann_stats = serving.stats().ann.expect("ann stats present");
            let expected = if quantize {
                StorageMode::Sq8
            } else {
                StorageMode::F32
            };
            assert_eq!(ann_stats.storage, expected);
            assert!(ann_stats.index_bytes > 0);
        }
    }

    #[test]
    fn trainer_publishes_incremental_builds_after_the_first_full_one() {
        let mut settings = ann_settings(3, 3);
        // Retraining a tiny graph touches every row, so the default
        // stale threshold would always trip; disarm it to observe the
        // incremental path itself.
        settings.config.drift_stale_bp = 10_000;
        let serving =
            ServingSession::spawn_with_ann(tiny_session(EpochPolicy::Manual), 64, Some(settings))
                .unwrap();
        serving.ingest(&chain_events(8, 0)).unwrap();
        serving.flush().unwrap();
        let first = serving.stats().ann.expect("ann stats present");
        assert_eq!(
            first.build_kind, "full",
            "warm start from the empty initial index falls back to full"
        );

        // Skip-links are genuinely new edges (a repeat of the chain
        // would be a graph no-op: nothing pending, no second step).
        let churn: Vec<GraphEvent> = (0..4)
            .map(|i| GraphEvent::add_edge(NodeId(i), NodeId(i + 2), 1))
            .collect();
        serving.ingest(&churn).unwrap();
        let outcome = serving.flush().unwrap();
        assert!(outcome.stepped, "new edges must trigger a second step");
        let second = serving.stats().ann.expect("ann stats present");
        assert_eq!(
            second.build_kind, "incremental",
            "second publish warm-starts from the first epoch's index"
        );
        assert!(second.dirty_rows > 0, "the step's churn was counted");

        // The incremental index still answers the exact wire contract
        // at full probe, bit for bit.
        let (e1, ann) = serving.nearest_ann(NodeId(2), 4, Some(3)).unwrap();
        let (e2, exact) = serving.nearest(NodeId(2), 4);
        assert_eq!(e1, e2);
        assert_eq!(ann.len(), exact.len());
        for (a, b) in ann.iter().zip(&exact) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        serving.shutdown();
    }

    #[test]
    fn ann_disabled_session_returns_none() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::Manual), 8);
        serving.ingest(&chain_events(4, 0)).unwrap();
        serving.flush().unwrap();
        assert_eq!(serving.ann(), None);
        assert!(serving.nearest_ann(NodeId(0), 3, None).is_none());
        assert!(serving.epoch().index.is_none());
    }

    #[test]
    fn health_watchdog_verdicts() {
        // Zero tolerance, but no pending work: an idle trainer is not
        // a stalled trainer.
        let h = HealthState::new(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        let s = h.evaluate(0);
        assert!(!s.degraded);
        assert!(s.trainer_alive);
        assert_eq!(s.stale_epochs, 0);
        assert_eq!(s.stalled_ms, 0, "no pending work, no stall clock");

        // Pending ingest + a silent heartbeat past the threshold.
        let s = h.evaluate(3);
        assert!(s.degraded);
        assert!(s.trainer_alive, "stalled, not dead");
        assert!(s.stalled_ms >= 1);

        // A generous threshold clears the verdict without a beat.
        h.set_stall_after(Duration::from_secs(3600));
        assert!(!h.evaluate(3).degraded);

        // Requested-but-uncommitted flush boundaries are stale epochs.
        h.flush_requested();
        h.flush_requested();
        assert_eq!(h.evaluate(0).stale_epochs, 2);
        h.flush_completed();
        assert_eq!(h.evaluate(0).stale_epochs, 1);
        h.flush_unrequested();
        assert_eq!(h.evaluate(0).stale_epochs, 0);

        // The panic flag dominates any threshold.
        h.mark_panicked();
        let s = h.evaluate(0);
        assert!(s.degraded);
        assert!(!s.trainer_alive);
    }

    #[test]
    fn live_session_surfaces_healthy_watchdog_in_stats() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::Manual), 64);
        assert_eq!(
            serving.ingest_fast_fail(&chain_events(6, 0)).unwrap(),
            6,
            "fast-fail accepts everything while the queue has room"
        );
        assert!(serving.flush().unwrap().stepped);
        let health = serving.stats().health.expect("health always surfaced");
        assert!(!health.degraded);
        assert!(health.trainer_alive);
        assert_eq!(health.stale_epochs, 0, "the flush completion was counted");
        assert_eq!(serving.stats().rebalance, None, "unsharded session");
        serving.shutdown();
    }

    #[test]
    fn deadline_ingest_and_flush_succeed_with_headroom() {
        let serving = ServingSession::spawn(tiny_session(EpochPolicy::Manual), 64);
        let deadline = Instant::now() + Duration::from_secs(30);
        assert_eq!(
            serving
                .ingest_deadline(&chain_events(4, 0), deadline)
                .unwrap(),
            4
        );
        assert!(serving.flush_deadline(deadline).unwrap().stepped);
        serving.shutdown();
        // Past shutdown, the deadline paths fail like the blocking ones
        // — and the never-delivered flush is not counted stale forever.
        assert!(matches!(
            serving.ingest_fast_fail(&chain_events(1, 9)),
            Err(ServeError::Closed)
        ));
        assert!(matches!(
            serving.flush_deadline(Instant::now() + Duration::from_secs(1)),
            Err(ServeError::Closed)
        ));
        assert_eq!(serving.health().stale_epochs, 0);
    }

    #[test]
    fn ann_settings_validation() {
        assert!(AnnSettings::default().validate().is_ok());
        assert_eq!(ann_settings(0, 4).validate().unwrap_err().param(), "cells");
        assert_eq!(
            ann_settings(4, 0).validate().unwrap_err().param(),
            "default_nprobe"
        );
        // spawn_with_ann enforces the same validation — degenerate
        // settings never reach a running trainer.
        match ServingSession::spawn_with_ann(
            tiny_session(EpochPolicy::Manual),
            8,
            Some(ann_settings(4, 0)),
        ) {
            Err(err) => assert_eq!(err.param(), "default_nprobe"),
            Ok(_) => panic!("degenerate AnnSettings must be rejected at spawn"),
        }
    }
}
