//! `glodyne-serve`: a long-lived serving process around an
//! [`EmbedderSession`](glodyne::EmbedderSession).
//!
//! The session API is `&mut self` end to end: every `query`/`nearest`
//! caller queues behind a full embedding step. This crate splits the
//! two paths so reads never wait on training:
//!
//! - **Read path** — after every committed step the trainer publishes
//!   an immutable [`EmbeddingEpoch`] (frozen embedding + epoch id +
//!   step report + optional IVF index, see [`AnnSettings`]) behind an
//!   [`EpochHandle`]. Reader threads clone the `Arc` and answer from
//!   that frozen epoch while the next step trains; a read may
//!   therefore lag the write path by one epoch, and never by more.
//! - **Write path** — ingest goes through a bounded queue
//!   ([`IngestQueue`], a `sync_channel`) feeding a dedicated trainer
//!   thread that owns the `EmbedderSession`. When the queue is full, a
//!   slow embedding step back-pressures producers at `send` instead of
//!   stalling readers.
//!
//! [`ServingSession`] packages both paths; [`ShardedSession`] scales
//! them out to `S` partition-routed shards, each with its own trainer
//! thread, ingest queue, and epoch handle (`glodyne-shard` supplies
//! the router and the owner-filtered fan-out merge); [`Server`]
//! exposes either over TCP with a line-delimited JSON protocol
//! (`query`, `nearest`, `ingest`, `flush`, `stats`, `shutdown`) —
//! std-only, one thread per connection, no async runtime. See
//! [`protocol`] for the wire format.

pub mod epoch;
pub mod error;
pub mod json;
pub mod probe;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod session;
pub mod shard;
pub mod telemetry;

pub use epoch::{EmbeddingEpoch, EpochHandle};
pub use error::ServeError;
pub use probe::{probe_recall, ProbeSettings};
pub use protocol::{ErrorKind, NearestMode, ProtocolError, Request};
pub use queue::{FlushOutcome, IngestQueue};
pub use server::{Server, ServerConfig};
pub use session::{
    AnnSettings, AnnStats, DurabilityStats, HealthStats, RebalanceStats, ServeStats,
    ServingSession, DEFAULT_STALL_AFTER,
};
pub use shard::{ShardEpochStats, ShardedSession};
pub use telemetry::{
    DurabilityTelemetry, ProbeTelemetry, ServeTelemetry, SlowQuery, TelemetryStats,
};
