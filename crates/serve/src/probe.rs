//! The continuous quality probe: ANN recall measured on the live
//! serving state, without ever blocking the trainer.
//!
//! Each round samples a deterministic set of live nodes from the
//! *published* epoch `Arc`, runs both the exact scan and the ANN
//! search against that same frozen epoch, and reports mean recall@k.
//! Because the probe only clones the epoch handle's `Arc` — the same
//! read path every query takes — a probe mid-round holds its own
//! frozen epoch while the trainer keeps publishing; nothing in the
//! write path waits on it.
//!
//! [`probe_recall`] is the whole measurement; the background thread
//! (spawned by [`Server`](crate::Server) when telemetry and ANN are
//! both on) and offline verification call the *same* function, so the
//! exposed `glodyne_probe_recall_at_k` gauge is reproducible from a
//! pinned seed by construction.

use crate::epoch::EmbeddingEpoch;
use crate::telemetry::ServeTelemetry;
use glodyne_embed::ConfigError;
use std::sync::Arc;
use std::time::Instant;

/// Background quality-probe settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSettings {
    /// Milliseconds between probe rounds.
    pub period_ms: u64,
    /// Neighbours per query (`recall@k`).
    pub k: usize,
    /// Live nodes sampled per round.
    pub sample: usize,
    /// Sampling seed — pin it and the probed node set (hence the
    /// reported recall on a quiesced epoch) is reproducible.
    pub seed: u64,
}

impl Default for ProbeSettings {
    fn default() -> Self {
        ProbeSettings {
            period_ms: 1_000,
            k: 10,
            sample: 16,
            seed: 42,
        }
    }
}

impl ProbeSettings {
    /// Validate the settings (fallible-config convention).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.period_ms < 1 {
            return Err(ConfigError::new("period_ms", "must be >= 1"));
        }
        if self.k < 1 {
            return Err(ConfigError::new("k", "must be >= 1"));
        }
        if self.sample < 1 {
            return Err(ConfigError::new("sample", "must be >= 1"));
        }
        Ok(())
    }
}

/// SplitMix64 — the same tiny deterministic generator the benches use;
/// good enough to spread sampled indices, trivially reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mean ANN recall@`k` over `sample` deterministically chosen live
/// nodes of `epoch`, probing `nprobe` IVF cells: for each sampled node
/// the index's answer is compared against the exact top-`k` scan on
/// the *same* embedding. `None` when the epoch carries no index or no
/// sampled node has a non-empty exact answer (e.g. the empty initial
/// epoch).
///
/// The same `(epoch, k, sample, seed, nprobe)` always measures the
/// same thing — this function is the shared definition behind the live
/// `glodyne_probe_recall_at_k` gauge and any offline check of it.
pub fn probe_recall(
    epoch: &EmbeddingEpoch,
    k: usize,
    sample: usize,
    seed: u64,
    nprobe: usize,
) -> Option<f64> {
    epoch.index.as_ref()?;
    let ids = epoch.embedding.ids();
    if ids.is_empty() || k == 0 || sample == 0 {
        return None;
    }
    let mut state = seed;
    let mut picked = Vec::with_capacity(sample.min(ids.len()));
    while picked.len() < sample.min(ids.len()) {
        let idx = (splitmix64(&mut state) % ids.len() as u64) as usize;
        if !picked.contains(&idx) {
            picked.push(idx);
        }
    }
    let mut total = 0.0f64;
    let mut measured = 0usize;
    for idx in picked {
        let node = ids[idx];
        let exact = epoch.embedding.top_k(node, k);
        if exact.is_empty() {
            continue;
        }
        let (approx, _) = epoch.search_ann(node, k, nprobe)?;
        let hits = approx
            .iter()
            .filter(|(id, _)| exact.iter().any(|(e, _)| e == id))
            .count();
        total += hits as f64 / exact.len() as f64;
        measured += 1;
    }
    (measured > 0).then(|| total / measured as f64)
}

/// One probe round over every published epoch (one on unsharded
/// servers, one per shard otherwise): measure, update the rolling
/// recall gauge, book the round's latency. Epochs that cannot be
/// measured yet (empty, no index) leave the gauge untouched.
pub(crate) fn run_probe_round(
    epochs: &[Arc<EmbeddingEpoch>],
    settings: &ProbeSettings,
    nprobe: usize,
    telemetry: &ServeTelemetry,
) {
    let start = Instant::now();
    let mut total = 0.0f64;
    let mut measured = 0usize;
    for epoch in epochs {
        if let Some(recall) =
            probe_recall(epoch, settings.k, settings.sample, settings.seed, nprobe)
        {
            total += recall;
            measured += 1;
        }
    }
    if measured > 0 {
        telemetry.probe_recall.set(total / measured as f64);
        telemetry.probe_latency.record_duration(start.elapsed());
        telemetry.probes_run.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::build_epoch;
    use crate::AnnSettings;
    use glodyne_ann::IvfConfig;
    use glodyne_embed::Embedding;
    use glodyne_graph::NodeId;

    fn epoch_with_index(n: u32, dim: usize, cells: usize) -> EmbeddingEpoch {
        let mut emb = Embedding::new(dim);
        let mut state = 7u64;
        for i in 0..n {
            let row: Vec<f32> = (0..dim)
                .map(|_| (splitmix64(&mut state) % 1000) as f32 / 1000.0 - 0.5)
                .collect();
            emb.set(NodeId(i), &row);
        }
        let settings = AnnSettings {
            config: IvfConfig {
                cells,
                ..Default::default()
            },
            default_nprobe: cells,
        };
        build_epoch(1, emb, None, Some(&settings), None, &[])
    }

    #[test]
    fn full_probe_recall_is_perfect_and_deterministic() {
        let epoch = epoch_with_index(60, 8, 4);
        // Probing every cell makes ANN exhaustive: recall must be 1.
        let r = probe_recall(&epoch, 5, 10, 42, 4).expect("measurable");
        assert!((r - 1.0).abs() < 1e-9, "full probe recall {r} != 1.0");
        // Pinned seed => bit-identical repeat runs.
        let again = probe_recall(&epoch, 5, 10, 42, 4).unwrap();
        assert_eq!(r.to_bits(), again.to_bits());
        // A narrower probe can only lower recall, never exceed 1.
        let narrow = probe_recall(&epoch, 5, 10, 42, 1).unwrap();
        assert!((0.0..=1.0).contains(&narrow));
        assert!(narrow <= r + 1e-9);
    }

    #[test]
    fn unmeasurable_epochs_yield_none() {
        // No index at all.
        let bare = build_epoch(0, Embedding::new(4), None, None, None, &[]);
        assert_eq!(probe_recall(&bare, 5, 4, 1, 8), None);
        // Indexed but empty embedding.
        let empty = epoch_with_index(0, 4, 2);
        assert_eq!(probe_recall(&empty, 5, 4, 1, 8), None);
    }

    #[test]
    fn probe_round_drives_the_gauge_and_counters() {
        let telemetry = ServeTelemetry::new(u64::MAX);
        let settings = ProbeSettings {
            k: 5,
            sample: 8,
            ..Default::default()
        };
        // Unmeasurable round: gauge and counter stay untouched.
        let bare = Arc::new(build_epoch(0, Embedding::new(4), None, None, None, &[]));
        run_probe_round(&[bare], &settings, 4, &telemetry);
        assert_eq!(telemetry.probes_run.get(), 0);

        let epoch = Arc::new(epoch_with_index(40, 8, 4));
        run_probe_round(&[Arc::clone(&epoch)], &settings, 4, &telemetry);
        assert_eq!(telemetry.probes_run.get(), 1);
        assert_eq!(telemetry.probe_latency.count(), 1);
        // The acceptance contract: the live gauge equals the offline
        // computation from the same pinned seed on the same epoch.
        let offline = probe_recall(&epoch, settings.k, settings.sample, settings.seed, 4).unwrap();
        assert_eq!(telemetry.probe_recall.get().to_bits(), offline.to_bits());
    }

    #[test]
    fn probe_settings_validate() {
        assert!(ProbeSettings::default().validate().is_ok());
        let bad = ProbeSettings {
            k: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "k");
        let bad = ProbeSettings {
            sample: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "sample");
        let bad = ProbeSettings {
            period_ms: 0,
            ..Default::default()
        };
        assert_eq!(bad.validate().unwrap_err().param(), "period_ms");
    }
}
